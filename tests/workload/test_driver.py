"""Tests for the closed-loop client driver."""

import pytest

import helpers
from repro.common.errors import ReproError
from repro.verification.checker import CausalChecker
from repro.workload.driver import ClosedLoopClient
from repro.workload.generators import make_workload


def _driver(built, client_index=0, think_time_s=0.010, checker=None,
            kind="get_put"):
    from repro.common.config import WorkloadConfig
    client = built.clients[client_index]
    workload = make_workload(
        WorkloadConfig(kind=kind, gets_per_put=2, tx_partitions=2),
        built.pools, built.rng.stream("test-driver"),
    )
    return ClosedLoopClient(
        sim=built.sim, client=client, workload=workload,
        think_time_s=think_time_s, rng=built.rng.stream("test-driver-rng"),
        checker=checker,
    )


def test_closed_loop_pacing():
    built = helpers.make_cluster(protocol="pocc")
    driver = _driver(built, think_time_s=0.010)
    driver.start(stagger_s=0.0)
    built.sim.run(until=1.0)
    # Each cycle = response (~1ms) + think (10ms): roughly 90 ops/second.
    assert 60 <= driver.ops_issued <= 110
    assert driver.client.ops_completed >= driver.ops_issued - 1


def test_zero_think_time_saturates_loop():
    built = helpers.make_cluster(protocol="pocc")
    driver = _driver(built, think_time_s=0.0)
    driver.start(stagger_s=0.0)
    built.sim.run(until=0.5)
    assert driver.ops_issued > 200  # bounded only by response times


def test_stop_halts_after_inflight_op():
    built = helpers.make_cluster(protocol="pocc")
    driver = _driver(built)
    driver.start(stagger_s=0.0)
    built.sim.run(until=0.3)
    issued_at_stop = driver.ops_issued
    driver.stop()
    built.sim.run(until=1.0)
    assert driver.ops_issued <= issued_at_stop + 1


def test_double_start_rejected():
    built = helpers.make_cluster(protocol="pocc")
    driver = _driver(built)
    driver.start()
    with pytest.raises(ReproError):
        driver.start()


def test_checker_hooks_invoked_for_gets_and_puts():
    built = helpers.make_cluster(protocol="pocc")
    checker = CausalChecker()
    driver = _driver(built, checker=checker)
    driver.start(stagger_s=0.0)
    built.sim.run(until=0.5)
    assert checker.reads_checked > 10
    assert checker.writes_seen > 3
    assert checker.ok


def test_checker_hooks_invoked_for_transactions():
    built = helpers.make_cluster(protocol="pocc")
    checker = CausalChecker()
    driver = _driver(built, checker=checker, kind="ro_tx")
    driver.start(stagger_s=0.0)
    built.sim.run(until=0.5)
    assert checker.tx_reads_checked > 5
    assert checker.ok


def test_put_values_identify_writer():
    built = helpers.make_cluster(protocol="pocc")
    driver = _driver(built, think_time_s=0.001)
    driver.start(stagger_s=0.0)
    built.sim.run(until=0.3)
    server = built.servers[built.topology.server(0, 0)]
    tagged = [
        v for key in server.store.keys()
        for v in server.store.chain(key)
        if isinstance(v.value, tuple)
    ]
    assert tagged, "driver writes carry (client, seq) values"
    client_id, seq = tagged[0].value
    assert client_id.startswith("c[")
    assert seq >= 1


# ----------------------------------------------------------------------
# The open-loop (pipelined) driver — deterministic on the sim backend
# ----------------------------------------------------------------------
def _open_driver(built, rate_ops_s, client_index=0, checker=None,
                 kind="get_put"):
    from repro.common.config import WorkloadConfig
    from repro.workload.driver import OpenLoopClient
    client = built.clients[client_index]
    workload = make_workload(
        WorkloadConfig(kind=kind, gets_per_put=2, tx_partitions=2),
        built.pools, built.rng.stream("test-driver"),
    )
    return OpenLoopClient(
        sim=built.sim, client=client, workload=workload,
        rate_ops_s=rate_ops_s, rng=built.rng.stream("test-driver-rng"),
        checker=checker,
    )


def test_open_loop_holds_the_target_rate():
    built = helpers.make_cluster(protocol="pocc")
    driver = _open_driver(built, rate_ops_s=100.0)
    driver.start(stagger_s=0.0)
    built.sim.run(until=1.0)
    # Arrivals fire every 10ms regardless of the ~1ms service times; a
    # closed loop at the same service time would do ~900 ops instead.
    assert 90 <= driver.ops_issued <= 110
    assert driver.dropped_arrivals == 0
    stats = driver.latency["get"].summary()
    assert stats["count"] > 0


def test_open_loop_queues_and_charges_waiting_to_latency():
    """Offered load beyond service capacity must queue arrivals (the
    session is sequential) and show the wait in the latency histogram —
    not silently slow the generator down."""
    built = helpers.make_cluster(protocol="pocc")
    fast = _open_driver(built, rate_ops_s=50.0)
    fast.start(stagger_s=0.0)
    built.sim.run(until=1.0)
    low_lat = max(h.percentile(99) for h in fast.latency.values())

    built2 = helpers.make_cluster(protocol="pocc")
    hot = _open_driver(built2, rate_ops_s=5000.0)
    hot.start(stagger_s=0.0)
    built2.sim.run(until=1.0)
    # Service takes ~1ms, arrivals come every 0.2ms: the backlog grows
    # and p99 (measured from intended arrival) balloons past the
    # underloaded run's.
    assert hot.backlog > 100
    hot_lat = max(h.percentile(99) for h in hot.latency.values())
    assert hot_lat > low_lat * 10


def test_open_loop_stop_halts_without_draining_backlog():
    built = helpers.make_cluster(protocol="pocc")
    driver = _open_driver(built, rate_ops_s=2000.0)
    driver.start(stagger_s=0.0)
    built.sim.run(until=0.3)
    driver.stop()
    issued_at_stop = driver.ops_issued
    built.sim.run(until=1.0)
    assert driver.ops_issued <= issued_at_stop + 1
    assert not driver.client.has_pending


def test_open_loop_feeds_the_checker():
    built = helpers.make_cluster(protocol="pocc")
    checker = CausalChecker()
    driver = _open_driver(built, rate_ops_s=300.0, checker=checker)
    driver.start(stagger_s=0.0)
    built.sim.run(until=0.5)
    assert checker.reads_checked > 10
    assert checker.writes_seen > 3
    assert checker.ok


def test_open_loop_rejects_nonpositive_rate():
    built = helpers.make_cluster(protocol="pocc")
    with pytest.raises(ReproError):
        _open_driver(built, rate_ops_s=0.0)


class _FakeSim:
    """Hand-cranked `sim` stand-in: tests set `now`, ticks are recorded.

    The DES fires events exactly on schedule, so the stalled-loop shape
    (a tick observing ``now`` far past its intended instant — a live
    event loop wedged behind a long callback) can only be produced by
    driving the tick by hand.
    """

    def __init__(self):
        self.now = 0.0
        self.scheduled: list[tuple[float, object]] = []

    def schedule(self, delay, fn, *args):
        self.scheduled.append((delay, fn))


class _FakeSession:
    """A client whose operations never complete: stays busy forever."""

    address = "c[fake]"
    session_resets = 0

    def get(self, key, callback):
        pass


class _FakeWorkload:
    def next_op(self):
        from repro.workload.generators import OpSpec
        return OpSpec(kind="get", keys=("k",))


def _stall_driver(rate_ops_s=100.0, max_backlog=100_000):
    from repro.workload.driver import OpenLoopClient
    sim = _FakeSim()
    driver = OpenLoopClient(
        sim=sim, client=_FakeSession(), workload=_FakeWorkload(),
        rate_ops_s=rate_ops_s, rng=__import__("random").Random(1),
        max_backlog=max_backlog,
    )
    driver._running = True
    return sim, driver


def test_open_loop_stalled_tick_materializes_all_elapsed_arrivals():
    sim, driver = _stall_driver(rate_ops_s=100.0)  # 10ms interval
    driver._arrival_tick()  # t=0: issues the first op, session now busy
    assert driver.ops_issued == 1
    assert len(sim.scheduled) == 1

    # The loop wedges for ~10 intervals; the next tick fires late.
    sim.now = 0.105
    driver._arrival_tick()
    # Arrivals intended at 10ms..100ms all materialize in this ONE tick:
    assert driver.backlog == 10
    # ... and exactly one follow-up tick is scheduled, at a *positive*
    # delay to the next intended arrival — not a zero-delay cascade of
    # one-arrival ticks monopolizing the loop it should let recover.
    assert len(sim.scheduled) == 2
    delay, _ = sim.scheduled[-1]
    assert delay == pytest.approx(0.005, abs=1e-9)


def test_open_loop_catch_up_burst_is_bounded_by_the_backlog_cap():
    # rate 128/s: the interval (1/128 s) is a binary fraction, so the
    # accumulated arrival times are float-exact and the counts below
    # are deterministic.
    sim, driver = _stall_driver(rate_ops_s=128.0, max_backlog=5)
    driver._arrival_tick()  # t=0: busy from here on
    sim.now = 1.0  # a full second of stall = 128 missed arrivals
    driver._arrival_tick()
    assert driver.backlog == 5, "the burst must stop at the cap"
    assert driver.dropped_arrivals == 123, "overflow is counted, not queued"
    # The schedule recovered to the nominal cadence in one tick.
    delay, _ = sim.scheduled[-1]
    assert 0 < delay <= 1.0 / 128.0


def test_open_loop_on_time_ticks_admit_exactly_one_arrival():
    sim, driver = _stall_driver(rate_ops_s=100.0)
    driver._arrival_tick()
    for tick in range(1, 4):  # every tick fires exactly on schedule
        sim.now = tick * 0.01
        driver._arrival_tick()
        assert driver.backlog == tick  # one new arrival per tick
        assert sim.scheduled[-1][0] == pytest.approx(0.01)
    assert driver.dropped_arrivals == 0


def test_make_driver_selects_by_arrival_model():
    from repro.common.config import WorkloadConfig
    from repro.workload.driver import (
        ClosedLoopClient as Closed,
        OpenLoopClient as Open,
        make_driver,
    )
    built = helpers.make_cluster(protocol="pocc")
    workload = make_workload(
        WorkloadConfig(kind="get_put", gets_per_put=2),
        built.pools, built.rng.stream("test-driver"),
    )
    closed = make_driver(
        sim=built.sim, client=built.clients[0], workload=workload,
        workload_config=WorkloadConfig(),
        rng=built.rng.stream("rng-a"),
    )
    assert type(closed) is Closed
    open_driver = make_driver(
        sim=built.sim, client=built.clients[1], workload=workload,
        workload_config=WorkloadConfig(arrival="open", rate_ops_s=50.0),
        rng=built.rng.stream("rng-b"),
    )
    assert type(open_driver) is Open
