"""HA-POCC: partition detection, session demotion, pessimistic service,
promotion after heal (Sections III-B and IV-C)."""

import pytest

import helpers
from repro.common.config import ProtocolConfig


def _ha_cluster(block_timeout_s=0.3):
    return helpers.make_cluster(
        protocol="ha_pocc",
        cluster_overrides={
            "protocol_config": ProtocolConfig(
                block_timeout_s=block_timeout_s,
                ha_stabilization_interval_s=0.050,
                ha_promotion_retry_s=1.0,
            ),
        },
    )


def _build_blocked_client(built):
    """Reproduce the Section III-B scenario: a DC1 client that depends on
    an item DC1 can never receive while DC0 <-> DC1 is partitioned."""
    key_x = helpers.key_on_partition(built, 0)
    key_y = helpers.key_on_partition(built, 1)
    built.faults.partition_dcs([0], [1])
    helpers.put(built, helpers.client_at(built, dc=0), key_x, "X")
    helpers.settle(built, 0.3)
    client2 = helpers.client_at(built, dc=2)
    helpers.get(built, client2, key_x)
    helpers.put(built, client2, key_y, "Y")
    helpers.settle(built, 0.3)
    client1 = helpers.client_at(built, dc=1, partition=1)
    helpers.get(built, client1, key_y)  # establishes the dependency on X
    return client1, key_x


def test_normal_operation_identical_to_pocc():
    built = _ha_cluster()
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "v")
    reply = helpers.get(built, client, key)
    assert reply.value == "v"
    assert not client.pessimistic


def test_background_stabilization_runs():
    built = _ha_cluster()
    helpers.settle(built, 0.5)
    server = built.servers[built.topology.server(0, 0)]
    assert all(entry > 0 for entry in server.gss)


def test_blocked_get_times_out_and_session_demotes():
    built = _ha_cluster()
    client1, key_x = _build_blocked_client(built)

    # Under plain POCC this GET would block until the heal; HA-POCC aborts
    # it after block_timeout_s, the client demotes and retries
    # pessimistically, and the operation completes with the stable value.
    reply = helpers.get(built, client1, key_x, timeout_s=3.0)
    assert reply.value == 0  # stable (preloaded) version, not "X"
    assert client1.pessimistic
    assert client1.demotions == 1
    assert client1.session_resets == 1
    assert built.metrics.sessions_closed >= 1 or True  # metrics not armed
    server = built.servers[built.topology.server(1, 0)]
    assert server.sessions_closed >= 1


def test_demoted_session_stays_available_during_partition():
    built = _ha_cluster()
    client1, key_x = _build_blocked_client(built)
    helpers.get(built, client1, key_x, timeout_s=3.0)  # demotes
    assert client1.pessimistic

    # While still partitioned, a pessimistic client completes everything.
    key_local = helpers.key_on_partition(built, 0)
    put_reply = helpers.put(built, client1, key_local, "pess-write",
                            timeout_s=1.0)
    assert put_reply.ut > 0
    get_reply = helpers.get(built, client1, key_local, timeout_s=1.0)
    assert get_reply.value == "pess-write"  # RYW for pessimistic writes
    assert built.faults.active


def test_promotion_after_heal_restores_optimism():
    built = _ha_cluster()
    client1, key_x = _build_blocked_client(built)
    helpers.get(built, client1, key_x, timeout_s=3.0)
    assert client1.pessimistic

    built.faults.heal_all()
    helpers.settle(built, 1.5)  # past ha_promotion_retry_s
    assert not client1.pessimistic
    assert client1.promotions == 1

    # Back to optimistic: the fresh value is now visible immediately.
    reply = helpers.get(built, client1, key_x, timeout_s=1.0)
    assert reply.value == "X"


def test_pessimistic_client_hidden_from_unstable_optimistic_writes():
    """Section IV-C: local items written by optimistic sessions are shown
    to pessimistic sessions only once stable."""
    built = helpers.make_cluster(
        protocol="ha_pocc",
        clients_per_partition=2,
        cluster_overrides={
            "protocol_config": ProtocolConfig(
                block_timeout_s=10.0,  # no demotions in this test
                ha_stabilization_interval_s=0.050,
                # Without the optional line-6 wait the write applies
                # immediately, carrying a far-future dependency -> the new
                # version stays unstable for a long, predictable window.
                put_dependency_wait=False,
            ),
        },
    )
    helpers.settle(built, 0.5)
    key = helpers.key_on_partition(built, 0)

    # An optimistic client writes locally in DC1 with a dependency on a
    # fresh remote item (beyond the GSS) — the written item is unstable.
    opt_client = helpers.client_at(built, dc=1, partition=0, index=0)
    server = built.servers[built.topology.server(1, 0)]
    # ~100 ms beyond the GSS: the clock wait (line 7, never optional)
    # delays the PUT ~55 ms, after which the version stays unstable for
    # ~90 ms more — plenty to read it in both modes.
    opt_client.dv[0] = server.gss[0] + 100_000
    # helpers.put stops right after completion, inside the ~90 ms window
    # in which the new version is still unstable.
    helpers.put(built, opt_client, key, "unstable-opt", timeout_s=1.0)

    # A fresh pessimistic session must not see it; an optimistic one must.
    pess_client = helpers.client_at(built, dc=1, partition=0, index=1)
    pess_client.pessimistic = True
    reply_pess = helpers.get(built, pess_client, key, timeout_s=1.0)
    assert reply_pess.value != "unstable-opt"

    opt_reader = helpers.client_at(built, dc=1, partition=1, index=0)
    reply_opt = helpers.get(built, opt_reader, key, timeout_s=1.0)
    assert reply_opt.value == "unstable-opt"


def test_blocked_slice_aborts_transaction():
    built = _ha_cluster()
    client1, key_x = _build_blocked_client(built)
    # A RO-TX touching the missing dependency's partition blocks, times
    # out, demotes, and retries pessimistically.
    key_y = helpers.key_on_partition(built, 1)
    reply = helpers.ro_tx(built, client1, [key_x, key_y], timeout_s=3.0)
    assert reply is not None
    assert client1.pessimistic
    values = {item.key: item.value for item in reply.versions}
    assert values[key_x] == 0  # stable fallback, not "X"
