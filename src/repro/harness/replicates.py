"""Multi-seed experiment replication with confidence intervals.

A single simulated run is deterministic given its seed, so run-to-run
variance comes entirely from the seeded randomness (clock skew draws,
latency jitter, workload key choices).  To report a defensible number for
a configuration, run it across several seeds and aggregate:

>>> from repro.harness.replicates import run_replicates
>>> agg = run_replicates(config, num_seeds=5)
>>> agg.stat("throughput_ops_s").mean
>>> print(agg.summary_table())

The benches use this to assert on *means with error bars* instead of
single-seed point estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.common.config import ExperimentConfig
from repro.common.errors import ConfigError
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.parallel import run_seeded

#: Default headline metrics extracted from every run.
DEFAULT_METRICS: dict[str, Callable[[ExperimentResult], float]] = {
    "throughput_ops_s": lambda r: r.throughput_ops_s,
    "mean_response_time_s": lambda r: r.mean_response_time_s,
    "blocking_probability": lambda r: r.blocking_probability,
    "mean_block_time_s": lambda r: r.mean_block_time_s,
    "get_pct_old": lambda r: r.get_staleness["pct_old"],
    "get_pct_unmerged": lambda r: r.get_staleness["pct_unmerged"],
    "tx_pct_old": lambda r: r.tx_staleness["pct_old"],
    "visibility_lag_mean_s": lambda r: r.visibility_lag["mean"],
    "bytes_per_op": lambda r: r.bytes_per_op,
    "cpu_utilization_mean": lambda r: r.cpu_utilization_mean,
}


@dataclass(frozen=True, slots=True)
class AggregateStat:
    """Mean / spread of one metric across replicate runs."""

    name: str
    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1); 0 for fewer than 2 runs."""
        if self.n < 2:
            return 0.0
        mean = self.mean
        variance = sum((v - mean) ** 2 for v in self.values) / (self.n - 1)
        return math.sqrt(variance)

    @property
    def ci95_half_width(self) -> float:
        """Half-width of the 95% confidence interval on the mean
        (Student's t); 0 for fewer than 2 runs."""
        if self.n < 2:
            return 0.0
        from scipy import stats

        t = stats.t.ppf(0.975, self.n - 1)
        return t * self.std / math.sqrt(self.n)

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def describe(self) -> str:
        return (
            f"{self.name}: {self.mean:.6g} ± {self.ci95_half_width:.2g} "
            f"(n={self.n}, min={self.minimum:.6g}, max={self.maximum:.6g})"
        )


@dataclass(slots=True)
class ReplicatedResult:
    """All replicate runs of one configuration, plus their aggregates."""

    name: str
    protocol: str
    seeds: tuple[int, ...]
    results: list[ExperimentResult]
    stats: dict[str, AggregateStat] = field(default_factory=dict)

    def stat(self, metric: str) -> AggregateStat:
        try:
            return self.stats[metric]
        except KeyError:
            raise ConfigError(
                f"metric {metric!r} was not aggregated; "
                f"available: {sorted(self.stats)}"
            ) from None

    def mean(self, metric: str) -> float:
        return self.stat(metric).mean

    def summary_table(self) -> str:
        header = (f"{self.name or '(unnamed)'} [{self.protocol}] — "
                  f"{len(self.results)} replicates, seeds {list(self.seeds)}")
        lines = [header]
        width = max((len(name) for name in self.stats), default=0)
        for name in sorted(self.stats):
            stat = self.stats[name]
            lines.append(
                f"  {name:<{width}} : {stat.mean:>12.6g} "
                f"± {stat.ci95_half_width:<10.3g}"
                f" [{stat.minimum:.6g}, {stat.maximum:.6g}]"
            )
        return "\n".join(lines)


def run_replicates(
    config: ExperimentConfig,
    num_seeds: int = 5,
    seeds: Sequence[int] | None = None,
    metrics: dict[str, Callable[[ExperimentResult], float]] | None = None,
    parallelism: int | None = None,
) -> ReplicatedResult:
    """Run ``config`` once per seed and aggregate the headline metrics.

    Seeds default to ``config.seed, config.seed + 1, ...`` so two
    replicated runs of the same config are themselves reproducible.
    Custom ``metrics`` extractors replace (not extend) the default set.

    The per-seed runs are independent and fan out across worker processes;
    ``parallelism`` overrides ``config.parallelism`` (``None`` = all
    cores, ``1`` = the legacy serial loop).  Results are aggregated in
    seed order either way, so the output is identical.
    """
    if seeds is None:
        if num_seeds < 1:
            raise ConfigError("num_seeds must be >= 1")
        seeds = tuple(config.seed + i for i in range(num_seeds))
    else:
        seeds = tuple(seeds)
        if not seeds:
            raise ConfigError("need at least one seed")
    extractors = metrics if metrics is not None else DEFAULT_METRICS

    results = run_seeded(config, seeds, parallelism=parallelism)
    stats = {
        name: AggregateStat(
            name=name, values=tuple(extract(r) for r in results)
        )
        for name, extract in extractors.items()
    }
    return ReplicatedResult(
        name=config.name,
        protocol=config.cluster.protocol,
        seeds=seeds,
        results=results,
        stats=stats,
    )
