"""A per-node CPU: a two-class priority multi-core queueing station.

The paper's servers are c4.large instances with 2 virtual CPUs; contention
for them drives several measured effects (stabilization slowing under load,
response-time knees, blocked POCC operations *yielding* the CPU).  Every
message handler and background task on a node runs as a job with a service
time; jobs queue when all cores are busy.

Two priority classes model the threading structure of real stores: client-
facing request handling (priority ``FOREGROUND``) is served before the
background machinery — replication apply, heartbeats, stabilization, GC
(priority ``BACKGROUND``).  Each class is FIFO internally, so per-channel
delivery order is preserved.  Under saturation the background class starves,
which is exactly the paper's explanation for blocking and staleness growing
with load ("higher contention on physical resources slows down the
execution of the stabilization protocol", "delayed processing of updates
and heartbeats messages, yielding to very high blocking times").
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.common.errors import SimulationError
from repro.common.types import BACKGROUND, FOREGROUND  # noqa: F401
from repro.sim.engine import Simulator


class CpuScheduler:
    """Two FIFO priority classes in front of ``cores`` identical cores."""

    __slots__ = (
        "_sim", "_cores", "_busy", "_queues",
        "jobs_completed", "busy_time_s", "queue_wait_s", "_started_at",
    )

    def __init__(self, sim: Simulator, cores: int):
        if cores < 1:
            raise SimulationError("a node needs at least one core")
        self._sim = sim
        self._cores = cores
        self._busy = 0
        self._queues: tuple[deque, deque] = (deque(), deque())
        self.jobs_completed = 0
        self.busy_time_s = 0.0
        self.queue_wait_s = 0.0
        self._started_at = sim.now

    @property
    def cores(self) -> int:
        return self._cores

    @property
    def queue_length(self) -> int:
        return len(self._queues[FOREGROUND]) + len(self._queues[BACKGROUND])

    @property
    def background_queue_length(self) -> int:
        return len(self._queues[BACKGROUND])

    @property
    def busy_cores(self) -> int:
        return self._busy

    def submit(
        self,
        service_time_s: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = FOREGROUND,
    ) -> None:
        """Run ``fn(*args)`` after queueing + ``service_time_s`` of CPU.

        The callable executes at the simulated instant the job *completes*,
        so handler state changes appear only after their CPU cost was paid.
        Jobs are non-preemptible once started; a waiting FOREGROUND job is
        always dispatched before any waiting BACKGROUND job.
        """
        if service_time_s < 0:
            raise SimulationError("service time must be >= 0")
        if priority not in (FOREGROUND, BACKGROUND):
            raise SimulationError(f"unknown priority {priority}")
        if self._busy < self._cores:
            self._start(service_time_s, fn, args)
        else:
            self._queues[priority].append(
                (service_time_s, fn, args, self._sim.now)
            )

    def _start(self, service_time_s: float, fn: Callable, args: tuple) -> None:
        self._busy += 1
        self.busy_time_s += service_time_s
        self._sim.schedule(service_time_s, self._complete, fn, args)

    def _complete(self, fn: Callable, args: tuple) -> None:
        self._busy -= 1
        self.jobs_completed += 1
        queue = self._queues[FOREGROUND] or self._queues[BACKGROUND]
        if queue:
            service_time_s, next_fn, next_args, enqueued_at = queue.popleft()
            self.queue_wait_s += self._sim.now - enqueued_at
            self._start(service_time_s, next_fn, next_args)
        fn(*args)

    def utilization(self, elapsed_s: float | None = None) -> float:
        """Fraction of core-time spent busy since construction."""
        if elapsed_s is None:
            elapsed_s = self._sim.now - self._started_at
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.busy_time_s / (elapsed_s * self._cores))
