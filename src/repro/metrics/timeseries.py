"""Windowed time series over simulated time.

The aggregate metrics of :class:`~repro.metrics.collectors.MetricsRegistry`
summarize a whole measurement window; transient studies — a partition
episode hitting a running workload, warm-up behaviour, saturation onset —
need the *trajectory*.  :class:`WindowedSampler` polls any probe on a
fixed simulated-time cadence and exposes the sampled series;
:class:`RateSeries` turns a monotone counter (operations completed,
bytes sent, versions replicated) into per-window rates.

Typical use, around a scheduled fault::

    built = build_cluster(config)
    sampler = RateSeries(
        built.sim,
        probe=lambda: sum(c.ops_completed for c in built.clients),
        interval_s=0.25,
    )
    built.faults.schedule_partition(1.0, [0], [1, 2], heal_after=2.0)
    sampler.start()
    built.start_drivers()
    built.sim.run(until=5.0)
    print(sampler.table_text())          # throughput per 250 ms window
    trough = sampler.minimum_rate(after=1.0, before=3.0)
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.common.errors import ConfigError
from repro.sim.engine import Simulator


class WindowedSampler:
    """Samples ``probe()`` every ``interval_s`` of simulated time.

    Sampling starts when :meth:`start` is called (taking an immediate
    first sample) and stops at :meth:`stop`, after ``max_samples``, or
    with the simulation.  Samples are ``(sim_time, value)`` pairs.
    """

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        interval_s: float,
        max_samples: int | None = None,
    ):
        if interval_s <= 0:
            raise ConfigError("interval_s must be > 0")
        if max_samples is not None and max_samples < 1:
            raise ConfigError("max_samples must be >= 1 (or None)")
        self._sim = sim
        self._probe = probe
        self.interval_s = interval_s
        self._max_samples = max_samples
        self.samples: list[tuple[float, float]] = []
        self._running = False

    def start(self) -> None:
        """Take the first sample now and keep sampling every interval."""
        if self._running:
            raise ConfigError("sampler is already running")
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Stop after the current sample; safe to call more than once."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.samples.append((self._sim.now, float(self._probe())))
        if (
            self._max_samples is not None
            and len(self.samples) >= self._max_samples
        ):
            self._running = False
            return
        self._sim.schedule(self.interval_s, self._tick)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def times(self) -> list[float]:
        return [t for t, _ in self.samples]

    @property
    def values(self) -> list[float]:
        return [v for _, v in self.samples]

    def between(self, after: float, before: float) -> list[tuple[float, float]]:
        """Samples with ``after <= time <= before``."""
        return [(t, v) for t, v in self.samples if after <= t <= before]


class RateSeries(WindowedSampler):
    """A sampler over a *monotone counter*, exposing per-window rates.

    ``rates()[i]`` is the counter increase between samples ``i`` and
    ``i+1`` divided by the elapsed simulated time — e.g. ops/s per
    window when probing total completed operations.
    """

    def rates(self) -> list[tuple[float, float]]:
        """``(window_end_time, rate)`` per adjacent sample pair."""
        out = []
        for (t0, v0), (t1, v1) in zip(self.samples, self.samples[1:]):
            if t1 > t0:
                out.append((t1, (v1 - v0) / (t1 - t0)))
        return out

    def minimum_rate(
        self, after: float = 0.0, before: float = float("inf")
    ) -> float:
        """The trough rate among windows ending in ``(after, before]``."""
        window = [r for t, r in self.rates() if after < t <= before]
        if not window:
            raise ConfigError(
                f"no rate windows end inside ({after}, {before}]"
            )
        return min(window)

    def mean_rate(
        self, after: float = 0.0, before: float = float("inf")
    ) -> float:
        """Average of the window rates ending in ``(after, before]``."""
        window = [r for t, r in self.rates() if after < t <= before]
        if not window:
            raise ConfigError(
                f"no rate windows end inside ({after}, {before}]"
            )
        return sum(window) / len(window)

    def table_text(self, label: str = "rate") -> str:
        lines = [f"{'t(s)':>8} {label:>12}"]
        for t, rate in self.rates():
            lines.append(f"{t:>8.2f} {rate:>12.1f}")
        return "\n".join(lines)


def align_rates(
    series: Sequence[RateSeries],
) -> list[tuple[float, list[float]]]:
    """Zip the rate windows of several equally-cadenced series.

    Raises :class:`ConfigError` when the series disagree on window
    boundaries (different intervals or start times) — aligned comparison
    would silently lie otherwise.
    """
    if not series:
        return []
    rate_lists = [s.rates() for s in series]
    length = min(len(r) for r in rate_lists)
    out: list[tuple[float, list[float]]] = []
    for i in range(length):
        times = {round(r[i][0], 9) for r in rate_lists}
        if len(times) > 1:
            raise ConfigError(
                f"rate windows misaligned at index {i}: {sorted(times)}"
            )
        out.append((rate_lists[0][i][0], [r[i][1] for r in rate_lists]))
    return out
