"""Full DC failure and the lost-update discard recovery (Section III-B).

The canonical scenario from the paper: X and Y with X -> Y; Y reaches a
healthy DC while X is trapped behind the failed DC.  Recovery must
discard Y everywhere (even though Y originated at a *healthy* DC — the
paper's own caveat), converge the survivors, reset dependent sessions
and unblock stalled operations.
"""

import pytest

import helpers
from repro.protocols.recovery import (
    lost_update_exposure,
    recover_from_dc_failure,
)
from repro.verification.convergence import check_convergence_among


def _lost_update_scenario(protocol="pocc"):
    """Build the paper's scenario and return everything tests need.

    DC0 will fail.  X is written in DC0 and reaches DC2 but never DC1
    (the DC0<->DC1 link is cut first).  A DC2 client reads X and writes
    Y — so Y (healthy origin!) depends on X — and Y replicates to DC1.
    Then DC0 is isolated entirely (the "failure").
    """
    built = helpers.make_cluster(protocol=protocol)
    key_x = helpers.key_on_partition(built, 0)
    key_y = helpers.key_on_partition(built, 1)

    built.faults.partition_dcs([0], [1])
    writer0 = helpers.client_at(built, dc=0)
    x_reply = helpers.put(built, writer0, key_x, "X")
    helpers.settle(built, 0.3)

    client2 = helpers.client_at(built, dc=2)
    assert helpers.get(built, client2, key_x).value == "X"
    y_reply = helpers.put(built, client2, key_y, "Y")
    helpers.settle(built, 0.3)

    # The failure: DC0 is gone for good.
    built.faults.isolate_dc(0, range(3))
    return built, key_x, key_y, x_reply, y_reply, client2


def test_exposure_census_counts_unsurvivable_versions():
    built, key_x, *_ = _lost_update_scenario()
    exposure = lost_update_exposure(built.servers, built.topology,
                                    failed_dc=0)
    # DC2 holds X (which DC1 never received); DC1 holds nothing from DC0
    # beyond the cut.
    assert exposure[2] >= 1
    assert exposure[1] == 0


def test_recovery_discards_lost_update_and_dependents():
    built, key_x, key_y, x_reply, y_reply, client2 = _lost_update_scenario()
    report = recover_from_dc_failure(
        built.servers, built.topology, failed_dc=0,
        clients=built.clients,
    )

    # X (origin DC0) is discarded at DC2; Y (origin DC2 — a *healthy*
    # DC) is discarded at both DC1 and DC2: the paper's "also updates
    # from healthy DCs might get discarded".
    assert report.lost_updates_discarded >= 1
    assert report.dependents_discarded_by_origin.get(2, 0) >= 2
    assert report.total_discarded >= 3

    for dc in (1, 2):
        server_x = built.servers[built.topology.server(dc, 0)]
        server_y = built.servers[built.topology.server(dc, 1)]
        head_x = server_x.store.freshest(key_x)
        head_y = server_y.store.freshest(key_y)
        assert head_x is None or head_x.value != "X"
        assert head_y is None or head_y.value != "Y"


def test_recovery_restores_convergence_among_survivors():
    built, *_ = _lost_update_scenario()
    # Before recovery the survivors diverge (DC2 has X, DC1 does not).
    before = check_convergence_among(built.servers, [1, 2],
                                     built.topology.num_partitions)
    assert before, "scenario must create divergence to be meaningful"

    recover_from_dc_failure(built.servers, built.topology, failed_dc=0,
                            clients=built.clients)
    after = check_convergence_among(built.servers, [1, 2],
                                    built.topology.num_partitions)
    assert after == []


def test_recovery_resets_dependent_sessions():
    built, key_x, key_y, x_reply, y_reply, client2 = _lost_update_scenario()
    # Reading X raises DV_c[0] (Algorithm 1 line 6); RDV_c only tracks
    # dependencies *of* read items, so the session's exposure to the
    # doomed X shows in dv, which recovery also inspects.
    assert client2.dv[0] >= x_reply.ut
    report = recover_from_dc_failure(
        built.servers, built.topology, failed_dc=0, clients=built.clients,
    )
    assert report.clients_reset >= 1
    assert client2.rdv[0] == 0
    assert client2.dv[0] == 0


def test_recovery_unblocks_stalled_reads():
    """A DC1 reader that saw Y stalls on GET(x); recovery must abort the
    stalled operation instead of leaving it parked forever."""
    built, key_x, key_y, *_ = _lost_update_scenario(protocol="ha_pocc")
    reader1 = helpers.client_at(built, dc=1, partition=1)
    assert helpers.get(built, reader1, key_y).value == "Y"

    result = helpers.OpResult()
    reader1.get(key_x, result)
    built.sim.run(until=built.sim.now + 0.05)  # definitely parked now
    report = recover_from_dc_failure(
        built.servers, built.topology, failed_dc=0, clients=built.clients,
    )
    assert report.operations_aborted >= 1
    # The HA client demotes, retries, and the retried GET completes
    # against the recovered state (X was discarded; the preloaded
    # version wins).
    built.sim.run(until=built.sim.now + 1.0)
    assert result.done
    assert result.reply.value != "X"


def test_healthy_dcs_operate_after_recovery():
    built, key_x, key_y, *_ = _lost_update_scenario()
    recover_from_dc_failure(built.servers, built.topology, failed_dc=0,
                            clients=built.clients)
    # Survivor DCs keep serving and replicating to each other.
    client1 = helpers.client_at(built, dc=1)
    client2 = helpers.client_at(built, dc=2)
    helpers.put(built, client1, key_x, "X-after")
    helpers.settle(built, 0.5)
    assert helpers.get(built, client2, key_x).value == "X-after"
    assert check_convergence_among(
        built.servers, [1, 2], built.topology.num_partitions
    ) == []


def test_survivable_prefix_is_kept():
    """Failed-DC items that reached *every* healthy DC stay."""
    built = helpers.make_cluster(protocol="pocc")
    key = helpers.key_on_partition(built, 0)
    writer0 = helpers.client_at(built, dc=0)
    helpers.put(built, writer0, key, "survives")
    helpers.settle(built, 0.5)  # fully replicated before the failure

    built.faults.isolate_dc(0, range(3))
    report = recover_from_dc_failure(built.servers, built.topology,
                                     failed_dc=0, clients=built.clients)
    assert report.total_discarded == 0
    for dc in (1, 2):
        server = built.servers[built.topology.server(dc, 0)]
        assert server.store.freshest(key).value == "survives"


def test_recovery_rejects_bad_dc():
    built = helpers.make_cluster(protocol="pocc")
    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        recover_from_dc_failure(built.servers, built.topology, failed_dc=9)
