"""POCC read-only transactions (Algorithm 2 lines 29-47)."""

import pytest

import helpers
from repro.metrics.collectors import BLOCK_SLICE_VV


@pytest.fixture
def built():
    return helpers.make_cluster(protocol="pocc")


def test_tx_reads_all_requested_keys(built):
    client = helpers.client_at(built, dc=0)
    keys = [helpers.key_on_partition(built, 0),
            helpers.key_on_partition(built, 1)]
    reply = helpers.ro_tx(built, client, keys)
    assert sorted(item.key for item in reply.versions) == sorted(keys)


def test_tx_single_partition_served_locally(built):
    client = helpers.client_at(built, dc=0)
    keys = [helpers.key_on_partition(built, 0, rank=0),
            helpers.key_on_partition(built, 0, rank=1)]
    reply = helpers.ro_tx(built, client, keys)
    assert len(reply.versions) == 2


def test_tx_sees_own_writes(built):
    """Proposition 4: the snapshot is consistent with the client's history,
    which includes its own writes."""
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0)
    key_b = helpers.key_on_partition(built, 1)
    put_a = helpers.put(built, client, key_a, "mine-a")
    put_b = helpers.put(built, client, key_b, "mine-b")
    reply = helpers.ro_tx(built, client, [key_a, key_b])
    by_key = {item.key: item for item in reply.versions}
    assert by_key[key_a].ut == put_a.ut
    assert by_key[key_b].ut == put_b.ut


def test_tx_updates_client_vectors_like_gets(built):
    """Algorithm 1 lines 17-19."""
    writer = helpers.client_at(built, dc=0, partition=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, writer, key, 1)
    reader = helpers.client_at(built, dc=0, partition=1)
    reply = helpers.ro_tx(built, reader, [key])
    item = reply.versions[0]
    assert reader.dv[item.sr] >= item.ut


def test_tx_snapshot_is_causal_cut(built):
    """If the snapshot returns Y with X -> Y, its version of x is >= X."""
    client = helpers.client_at(built, dc=0)
    key_x = helpers.key_on_partition(built, 0)
    key_y = helpers.key_on_partition(built, 1)
    x = helpers.put(built, client, key_x, "X")
    helpers.put(built, client, key_y, "Y")  # Y depends on X

    reader = helpers.client_at(built, dc=0, partition=1)
    reply = helpers.ro_tx(built, reader, [key_x, key_y])
    by_key = {item.key: item for item in reply.versions}
    if by_key[key_y].value == "Y":
        assert by_key[key_x].ut >= x.ut


def test_remote_tx_after_replication(built):
    writer = helpers.client_at(built, dc=0)
    keys = [helpers.key_on_partition(built, 0),
            helpers.key_on_partition(built, 1)]
    for i, key in enumerate(keys):
        helpers.put(built, writer, key, f"v{i}")
    helpers.settle(built, 0.5)
    reader = helpers.client_at(built, dc=2)
    reply = helpers.ro_tx(built, reader, keys)
    values = {item.key: item.value for item in reply.versions}
    assert values == {keys[0]: "v0", keys[1]: "v1"}


def test_tx_slice_blocking_recorded(built):
    """Slices wait until VV covers the snapshot vector (line 40)."""
    built.metrics.arm(built.sim.now)
    client = helpers.client_at(built, dc=0)
    keys = [helpers.key_on_partition(built, 0),
            helpers.key_on_partition(built, 1)]
    helpers.ro_tx(built, client, keys)
    stats = built.metrics.blocking[BLOCK_SLICE_VV]
    assert stats.attempts == 2  # one wait check per contacted partition


def test_tx_visible_set_excludes_versions_beyond_snapshot(built):
    """Line 43: only versions with dv <= TV are candidates.

    A version whose dependency cut points beyond the snapshot (because the
    writer saw newer remote items) must not be returned."""
    client0 = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)

    # Build a version whose dv is far in the future of DC1's knowledge.
    server0 = built.servers[built.topology.server(0, 0)]
    client0.dv[2] = server0.vv[2] + 80_000  # pretend dep on future DC2 item
    built.config.cluster.protocol_config  # (documentation: dep wait is on)
    result = helpers.OpResult()
    client0.put(key, "future-dep", result)
    built.sim.run(until=built.sim.now + 0.5)  # put waits for DC2 to pass ts
    assert result.done

    # Immediately transact in DC0 with a snapshot that cannot cover that
    # future dependency (fresh client, empty RDV; TV = VV of coordinator).
    fresh = helpers.client_at(built, dc=0, partition=1)
    reply = helpers.ro_tx(built, fresh, [key])
    item = reply.versions[0]
    # Either the future-dep version became visible (VV advanced past its
    # dv) or the tx returned the older version -- never a violation, and
    # at this instant the dv check must have filtered it at least once.
    assert item.key == key
