"""Tests for the replica convergence checker."""

import helpers
from repro.verification.convergence import check_convergence


def test_quiesced_cluster_converges():
    built = helpers.make_cluster(protocol="pocc")
    key = helpers.key_on_partition(built, 0)
    for dc in range(3):
        helpers.put(built, helpers.client_at(built, dc=dc), key, f"dc{dc}")
    helpers.settle(built, 1.5)
    divergences = check_convergence(built.servers, 3, 2)
    assert divergences == []


def test_divergence_detected_mid_replication():
    built = helpers.make_cluster(protocol="pocc")
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, helpers.client_at(built, dc=0), key, "new")
    # No settle: the write has not replicated yet.
    divergences = check_convergence(built.servers, 3, 2)
    assert len(divergences) == 1
    assert divergences[0].key == key
    assert divergences[0].partition == 0
    text = divergences[0].describe()
    assert key in text and "dc0" in text


def test_divergence_detected_under_unhealed_partition():
    built = helpers.make_cluster(protocol="pocc")
    built.faults.partition_dcs([0], [1, 2])
    key = helpers.key_on_partition(built, 1)
    helpers.put(built, helpers.client_at(built, dc=0), key, "island")
    helpers.settle(built, 1.0)
    divergences = check_convergence(built.servers, 3, 2)
    assert any(d.key == key for d in divergences)
