"""POCC GET/PUT semantics (Algorithms 1 and 2), single- and multi-DC."""

import pytest

import helpers
from repro.clocks.vector import vec_leq


@pytest.fixture
def built():
    return helpers.make_cluster(protocol="pocc")


def test_preloaded_key_readable(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    reply = helpers.get(built, client, key)
    assert reply.ut == 0  # preloaded initial version


def test_put_then_get_returns_written_value(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    put_reply = helpers.put(built, client, key, "hello")
    assert put_reply.ut > 0
    get_reply = helpers.get(built, client, key)
    assert get_reply.value == "hello"
    assert get_reply.ut == put_reply.ut
    assert get_reply.sr == 0


def test_put_reply_updates_local_dv_entry(built):
    """Algorithm 1 line 12: DV_c[m] <- ut."""
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    reply = helpers.put(built, client, key, 1)
    assert client.dv[0] == reply.ut
    assert client.rdv == [0, 0, 0]  # writes do not touch RDV


def test_get_updates_rdv_and_dv(built):
    """Algorithm 1 lines 4-6."""
    writer = helpers.client_at(built, dc=0, partition=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, writer, key, 1)
    first_put_dv = list(writer.dv)

    key2 = helpers.key_on_partition(built, 1)
    helpers.put(built, writer, key2, 2)  # version depends on first put

    reader = helpers.client_at(built, dc=0, partition=1)
    reply = helpers.get(built, reader, key2)
    # RDV absorbs the returned item's dependency vector...
    assert reader.rdv == list(reply.dv)
    assert vec_leq(first_put_dv, reader.rdv) or first_put_dv[0] <= reader.rdv[0]
    # ...and DV additionally tracks the read item itself.
    assert reader.dv[reply.sr] >= reply.ut


def test_version_dependency_vector_is_writers_dv(built):
    """Algorithm 2 line 10: the new item stores DV_c."""
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0)
    key_b = helpers.key_on_partition(built, 1)
    put_a = helpers.put(built, client, key_a, "a")
    dv_after_a = list(client.dv)
    helpers.put(built, client, key_b, "b")
    server_b = built.servers[built.topology.server(0, 1)]
    version_b = server_b.store.freshest(key_b)
    assert list(version_b.dv) == dv_after_a
    assert version_b.dv[0] == put_a.ut


def test_update_timestamps_dominate_dependencies(built):
    """Proposition 2: X -> Y implies X.ut < Y.ut."""
    client = helpers.client_at(built, dc=0)
    uts = []
    for partition in (0, 1, 0, 1):
        key = helpers.key_on_partition(built, partition)
        uts.append(helpers.put(built, client, key, partition).ut)
    assert uts == sorted(uts)
    assert len(set(uts)) == len(uts)


def test_get_returns_freshest_version(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    for value in ("v1", "v2", "v3"):
        helpers.put(built, client, key, value)
    reply = helpers.get(built, client, key)
    assert reply.value == "v3"


def test_remote_write_becomes_visible_after_replication(built):
    writer = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, writer, key, "from-dc0")
    helpers.settle(built, 0.5)  # > one-way WAN latency
    reader = helpers.client_at(built, dc=2)
    reply = helpers.get(built, reader, key)
    assert reply.value == "from-dc0"
    assert reply.sr == 0


def test_optimistic_get_sees_unstable_remote_version(built):
    """The OCC core: a replicated version is visible immediately, without
    waiting for a stabilization protocol."""
    writer = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, writer, key, "fresh")
    # Settle barely beyond the DC0->DC1 one-way latency: long before any
    # stabilization-style horizon could cover it.
    helpers.settle(built, 0.040)
    reader = helpers.client_at(built, dc=1)
    reply = helpers.get(built, reader, key, timeout_s=0.5)
    assert reply.value == "fresh"


def test_lww_convergence_across_dcs(built):
    """Section II-B: replicas converge to the same LWW winner."""
    key = helpers.key_on_partition(built, 0)
    for dc in range(3):
        client = helpers.client_at(built, dc=dc)
        helpers.put(built, client, key, f"from-dc{dc}")
    helpers.settle(built, 1.0)
    heads = set()
    for dc in range(3):
        server = built.servers[built.topology.server(dc, 0)]
        heads.add(server.store.freshest(key).identity())
    assert len(heads) == 1


def test_version_vector_advances_via_replication(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    reply = helpers.put(built, client, key, 1)
    helpers.settle(built, 0.5)
    for dc in (1, 2):
        server = built.servers[built.topology.server(dc, 0)]
        assert server.vv[0] >= reply.ut


def test_heartbeats_advance_remote_vv_without_writes(built):
    """Algorithm 2 lines 19-28: idle partitions still advance their
    replicas' version vectors."""
    helpers.settle(built, 0.5)
    server = built.servers[built.topology.server(1, 0)]
    # Entries for the other DCs moved well past zero with zero writes.
    assert server.vv[0] > 100_000
    assert server.vv[2] > 100_000


def test_get_missing_key_returns_nil(built):
    client = helpers.client_at(built, dc=0)
    target_partition = built.topology.partition_of("never-written-key")
    client2 = helpers.client_at(built, dc=0, partition=0)
    reply = helpers.get(built, client2, "never-written-key")
    assert reply.value is None
    assert reply.ut == 0
    assert target_partition in range(built.topology.num_partitions)
