"""Tests for the FIFO lossless network."""

import random

import pytest

from repro.common.errors import SimulationError
from repro.common.types import server_address
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, UniformLatency
from repro.sim.network import Network


class Recorder:
    """A trivial endpoint that logs (time, message) pairs."""

    def __init__(self, sim: Simulator, address):
        self.sim = sim
        self._address = address
        self.received: list[tuple[float, object]] = []

    @property
    def address(self):
        return self._address

    def on_message(self, msg):
        self.received.append((self.sim.now, msg))


def _pair(latency_model):
    sim = Simulator()
    network = Network(sim, latency_model)
    a = Recorder(sim, server_address(0, 0))
    b = Recorder(sim, server_address(1, 0))
    network.register(a)
    network.register(b)
    return sim, network, a, b


def test_message_delivered_after_latency():
    sim, network, a, b = _pair(ConstantLatency(0.050))
    network.send(a.address, b.address, "hello")
    sim.run()
    assert b.received == [(0.050, "hello")]


def test_duplicate_registration_rejected():
    sim, network, a, b = _pair(ConstantLatency(0.01))
    with pytest.raises(SimulationError):
        network.register(Recorder(sim, a.address))


def test_send_to_unregistered_rejected():
    sim, network, a, b = _pair(ConstantLatency(0.01))
    with pytest.raises(SimulationError):
        network.send(a.address, server_address(2, 9), "x")


def test_fifo_order_preserved_under_jittery_latency():
    """Messages on one channel never reorder even with wild jitter."""
    sim, network, a, b = _pair(UniformLatency(0.001, 0.100,
                                              random.Random(11)))
    for i in range(200):
        network.send(a.address, b.address, i)
    sim.run()
    payloads = [msg for _, msg in b.received]
    assert payloads == list(range(200))


def test_fifo_across_interleaved_sends():
    sim, network, a, b = _pair(UniformLatency(0.001, 0.100,
                                              random.Random(5)))
    sent = []

    def send_batch(base):
        for i in range(5):
            network.send(a.address, b.address, base + i)
            sent.append(base + i)

    sim.schedule(0.0, send_batch, 0)
    sim.schedule(0.02, send_batch, 100)
    sim.schedule(0.04, send_batch, 200)
    sim.run()
    assert [msg for _, msg in b.received] == sent


def test_independent_channels_can_reorder():
    """FIFO holds per channel, not across channels (matches the paper)."""
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.010))
    a = Recorder(sim, server_address(0, 0))
    b = Recorder(sim, server_address(0, 1))
    c = Recorder(sim, server_address(1, 0))
    for endpoint in (a, b, c):
        network.register(endpoint)
    # a sends first but its channel keeps FIFO with an earlier slow message.
    slow = Network(sim, ConstantLatency(0.050))
    del slow  # channels are per network; just demonstrate timing below
    network.send(a.address, c.address, "from-a")
    sim.schedule(0.005, network.send, b.address, c.address, "from-b")
    sim.run()
    # a's message (sent t=0, +10ms) before b's (sent t=5ms, +10ms).
    assert [msg for _, msg in c.received] == ["from-a", "from-b"]


def test_byte_accounting_uses_size_bytes():
    class Sized:
        def size_bytes(self):
            return 123

    sim, network, a, b = _pair(ConstantLatency(0.01))
    network.send(a.address, b.address, Sized())
    assert network.stats.bytes_sent == 123
    assert network.stats.messages_sent == 1


def test_byte_accounting_fallback_size():
    sim, network, a, b = _pair(ConstantLatency(0.01))
    network.send(a.address, b.address, "plain")
    assert network.stats.bytes_sent == Network._FALLBACK_SIZE


def test_inter_dc_bytes_excludes_local_traffic():
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.01))
    a = Recorder(sim, server_address(0, 0))
    b = Recorder(sim, server_address(0, 1))
    c = Recorder(sim, server_address(1, 0))
    for endpoint in (a, b, c):
        network.register(endpoint)
    network.send(a.address, b.address, "local")
    network.send(a.address, c.address, "wan")
    assert network.stats.inter_dc_bytes() == Network._FALLBACK_SIZE
    assert network.stats.bytes_sent == 2 * Network._FALLBACK_SIZE


def test_blocked_pair_holds_messages_and_flushes_in_order():
    sim, network, a, b = _pair(ConstantLatency(0.010))
    network.block_dc_pair(0, 1)
    for i in range(5):
        network.send(a.address, b.address, i)
    sim.run()
    assert b.received == []
    assert network.held_message_count == 5
    network.unblock_dc_pair(0, 1)
    sim.run()
    assert [msg for _, msg in b.received] == [0, 1, 2, 3, 4]
    assert network.held_message_count == 0


def test_block_is_directional():
    sim, network, a, b = _pair(ConstantLatency(0.010))
    network.block_dc_pair(0, 1)
    network.send(b.address, a.address, "reverse")
    sim.run()
    assert [msg for _, msg in a.received] == ["reverse"]


def test_delivery_counts():
    sim, network, a, b = _pair(ConstantLatency(0.010))
    network.send(a.address, b.address, "x")
    network.send(b.address, a.address, "y")
    sim.run()
    assert network.stats.messages_sent == 2
    assert network.stats.messages_delivered == 2
