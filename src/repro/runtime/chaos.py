"""Chaos harnesses: kill/restart crash-recovery and the hostile-network
chaos matrix.

:func:`run_crash_experiment` is ``run_live_experiment`` with a fault
knob: one partition server (the *victim*) runs as a real OS subprocess
(``python -m repro.runtime.serve --dc D --partition P --data-dir …``)
while everything else — the other servers, the clients, the drivers and
the causal checker — runs in-process.  Mid-workload the victim is
**SIGKILLed**, left down for a configured window, restarted from its
data directory (WAL + snapshot recovery, then replication catch-up
against its peers), and finally SIGTERMed so its graceful-shutdown path
(flush the WAL before the transport, exit non-zero on failure) is
exercised too.

:func:`run_chaos_matrix` runs the named hostile-network scenarios
(asymmetric cuts, probabilistic loss, congested links, clock-skew
spikes, stalled disks, full-DC failover) across protocols, each cell
gated on **zero causal-checker violations and replica convergence** —
see the module-level ``SCENARIOS`` registry and ``docs/chaos.md``.

The verdict (:class:`CrashReport`) gates on exactly what the paper's
fault-tolerance story needs and nothing the crash legitimately breaks:

* the independent :class:`~repro.verification.checker.CausalChecker`
  reports **zero violations** over the whole run, crash included;
* **no acknowledged write is lost**: every PUT the victim acknowledged
  is present in (or dominated within) its recovered on-disk state;
* the victim **rejoins**: operations complete after the restart;
* the final SIGTERM shutdown exits 0 (WAL flushed cleanly).

Transport errors (dead senders, truncated streams) and stalled in-flight
operations are *expected* collateral of a SIGKILL and are reported, not
gated on.
"""

from __future__ import annotations

import asyncio
import os
import sys
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.common.config import (
    AntiEntropyConfig,
    ExperimentConfig,
    PersistenceConfig,
    WorkloadConfig,
    smoke_scale_cluster,
)
from repro.common.errors import ReproError
from repro.common.types import version_order_key
from repro.cluster.topology import Topology
from repro.harness.builders import BuiltCluster, build_cluster
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.runtime.cluster import LiveCluster, LiveReport
from repro.runtime.configfile import save_experiment_config
from repro.runtime.supervisor import subprocess_env
from repro.verification.convergence import check_convergence

# NOTE: repro.persistence imports are deferred into the functions below:
# persistence depends on the codec (hence on this package's __init__), so
# a module-level import here would be circular.

#: How long the harness waits for the victim subprocess to exit after
#: SIGTERM before declaring the graceful-shutdown gate failed.
TERM_TIMEOUT_S = 15.0


@dataclass(slots=True)
class CrashFault:
    """One SIGKILL + restart of a single partition server."""

    dc: int = 0
    partition: int = 0
    #: Seconds into the measurement window at which the victim dies.
    kill_after_s: float = 1.0
    #: How long the victim stays down before it is restarted.
    downtime_s: float = 1.0


@dataclass(slots=True)
class CrashReport:
    """Everything measured across one kill/restart run."""

    live: LiveReport
    kill_time_s: float
    restart_time_s: float
    #: Exit status of the victim's final (SIGTERM) shutdown.
    server_exit_code: int | None
    #: PUTs the victim acknowledged (observed by the driving process).
    acked_victim_writes: int
    #: Acknowledged victim writes absent from — and not dominated in —
    #: the recovered on-disk state.  Must be empty.
    lost_victim_writes: list[str] = field(default_factory=list)
    #: Operations that completed after the victim came back.
    ops_after_restart: int = 0
    recovered_versions: int = 0
    victim_dir: str = ""

    @property
    def passed(self) -> bool:
        return (not self.live.violations
                and not self.lost_victim_writes
                and self.ops_after_restart > 0
                and self.acked_victim_writes > 0
                and self.server_exit_code == 0)

    def summary_text(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"crash/restart [{self.live.protocol}] "
            f"victim dir {self.victim_dir}: {verdict}",
            f"  checker         : {len(self.live.violations)} violations "
            f"over {self.live.verification['reads_checked']} reads",
            f"  durability      : {self.acked_victim_writes} acked victim "
            f"writes, {len(self.lost_victim_writes)} lost "
            f"({self.recovered_versions} versions recovered on disk)",
            f"  rejoin          : {self.ops_after_restart} ops completed "
            f"after restart",
            f"  graceful stop   : exit code {self.server_exit_code}",
        ]
        for violation in self.live.violations[:5]:
            lines.append(f"    violation: {violation}")
        for lost in self.lost_victim_writes[:5]:
            lines.append(f"    lost: {lost}")
        return "\n".join(lines)


def _serve_command(config_path: Path, fault: CrashFault, host: str,
                   base_port: int) -> list[str]:
    return [
        sys.executable, "-m", "repro.runtime.serve",
        "--config", str(config_path),
        "--dc", str(fault.dc), "--partition", str(fault.partition),
        "--host", host, "--base-port", str(base_port),
    ]


def _supervise_command(config_path: Path, fault: CrashFault, host: str,
                       base_port: int) -> list[str]:
    """The victim behind a one-child ``repro-supervise`` tree: the
    SIGKILL lands on the supervisor, PDEATHSIG takes the serve child
    down with it, and the restart must still recover from disk."""
    return [
        sys.executable, "-m", "repro.runtime.supervisor",
        "--config", str(config_path),
        "--dc", str(fault.dc), "--partition", str(fault.partition),
        "--host", host, "--base-port", str(base_port),
        "--log-dir", str(config_path.parent / "supervise"),
    ]


def _subprocess_env() -> dict[str, str]:
    return subprocess_env()


async def _spawn_victim(command: list[str], log_path: Path):
    log = open(log_path, "ab")
    try:
        return await asyncio.create_subprocess_exec(
            *command, stdout=log, stderr=log, env=_subprocess_env(),
        )
    finally:
        log.close()  # the subprocess holds its own descriptor


def _victim_write_check(
    cluster: LiveCluster, fault: CrashFault, data_dir: Path
) -> tuple[int, list[str], int]:
    """Compare acknowledged victim writes against the recovered disk.

    A write is *lost* only if the recovered chain of its key holds
    nothing at or above it in the LWW order — garbage collection and
    overwrites legitimately drop superseded versions without losing
    anything a reader could miss.
    """
    from repro.persistence.manager import (
        partition_dirname,
        recover_directory,
    )
    victim_dir = data_dir / partition_dirname(
        cluster.topology.server(fault.dc, fault.partition)
    )
    recovered = recover_directory(victim_dir, truncate=False,
                                  delete_covered=False)
    best_by_key: dict[Any, tuple[int, int]] = {}
    for version in recovered.versions:
        order = version.order_key
        current = best_by_key.get(version.key)
        if current is None or order > current:
            best_by_key[version.key] = order

    acked = 0
    lost: list[str] = []
    for event in cluster.checker.history.writes():
        key, sr, ut = event.version
        if sr != fault.dc:
            continue
        if cluster.topology.partition_of(key) != fault.partition:
            continue
        acked += 1
        best = best_by_key.get(key)
        if best is None or best < version_order_key(ut, sr):
            lost.append(
                f"acked write {event.version} at t={event.time_s:.3f}s "
                f"not recovered (best on disk: {best})"
            )
    return acked, lost, len(recovered.versions)


async def _run(config: ExperimentConfig, fault: CrashFault, host: str,
               base_port: int, supervise: bool = False) -> CrashReport:
    persistence = config.persistence
    if not persistence.enabled or not persistence.data_dir:
        raise ReproError("crash experiments need persistence enabled "
                         "with a data_dir")
    if base_port <= 0:
        raise ReproError("crash experiments need a deterministic port "
                         "map (base_port > 0): two processes must agree")
    data_dir = Path(persistence.data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    config_path = data_dir / "cluster.json"
    save_experiment_config(config, str(config_path))

    # Host every server except the victim in-process; the victim is a
    # real OS process so a real SIGKILL can take it down.
    topology = Topology(config.cluster.num_dcs,
                        config.cluster.num_partitions)
    victim_address = topology.server(fault.dc, fault.partition)
    cluster = LiveCluster(
        config, host=host, base_port=base_port,
        serve_addresses=[address for address in topology.all_servers()
                         if address != victim_address],
        with_clients=True,
    )

    factory = _supervise_command if supervise else _serve_command
    command = factory(config_path, fault, host, base_port)
    log_path = data_dir / "victim.log"
    # The restart swaps the subprocess mid-run; the cleanup must see the
    # newest one, hence the one-slot holder.
    holder = {"proc": await _spawn_victim(command, log_path)}
    try:
        return await _drive(cluster, holder, config, fault, command,
                            log_path, data_dir, victim_address)
    finally:
        # Never leak a live repro-serve on its fixed port: a failure
        # anywhere above would otherwise poison every later run that
        # reuses the deterministic port map.
        victim = holder["proc"]
        if victim.returncode is None:
            victim.kill()
            await victim.wait()


async def _drive(cluster: LiveCluster, holder: dict,
                 config: ExperimentConfig, fault: CrashFault,
                 command: list[str], log_path: Path, data_dir: Path,
                 victim_address) -> CrashReport:
    from repro.persistence.manager import partition_dirname
    victim = holder["proc"]
    await cluster.start()
    stagger = min(config.workload.think_time_s or 0.01, 0.02)
    for driver in cluster.drivers:
        driver.start(stagger_s=stagger)
    await asyncio.sleep(config.warmup_s)
    cluster.metrics.arm(cluster.hub.now)

    await asyncio.sleep(fault.kill_after_s)
    kill_time = cluster.hub.now
    victim.kill()  # SIGKILL: no flush, no goodbye
    await victim.wait()

    await asyncio.sleep(fault.downtime_s)
    restart_time = cluster.hub.now
    victim = holder["proc"] = await _spawn_victim(command, log_path)

    remaining = config.duration_s - fault.kill_after_s - fault.downtime_s
    await asyncio.sleep(max(remaining, 1.0))
    cluster.metrics.disarm(cluster.hub.now)
    for driver in cluster.drivers:
        driver.stop()
    # Ops in flight at the kill instant died with their frames; a short
    # settle collects everything else without waiting on the casualties.
    await cluster._quiesce(timeout_s=3.0)
    cluster.flush_persistence()

    # Graceful stop *before* the report: the exit code is a gate (the
    # WAL-before-transport shutdown ordering must have flushed cleanly).
    victim.terminate()
    try:
        exit_code = await asyncio.wait_for(victim.wait(), TERM_TIMEOUT_S)
    except asyncio.TimeoutError:
        victim.kill()
        await victim.wait()
        exit_code = None

    report = cluster._report(cluster.hub.clean)
    await cluster.hub.close()
    cluster.close_persistence()

    acked, lost, recovered_count = _victim_write_check(cluster, fault,
                                                       data_dir)
    ops_after_restart = sum(
        1 for event in cluster.checker.history.events
        if event.time_s > restart_time
    )
    return CrashReport(
        live=report,
        kill_time_s=kill_time,
        restart_time_s=restart_time,
        server_exit_code=exit_code,
        acked_victim_writes=acked,
        lost_victim_writes=lost,
        ops_after_restart=ops_after_restart,
        recovered_versions=recovered_count,
        victim_dir=str(data_dir / partition_dirname(victim_address)),
    )


def run_crash_experiment(
    config: ExperimentConfig,
    fault: CrashFault,
    host: str = "127.0.0.1",
    base_port: int = 7500,
    supervise: bool = False,
) -> CrashReport:
    """SIGKILL one partition server mid-workload, restart it from disk,
    and verify causality plus acknowledged-write durability.

    ``config.verify`` must be on (the checker is the judge) and
    ``config.persistence`` must point at a data directory; the victim
    subprocess shares both through a config file written there.
    ``supervise`` runs the victim behind a one-child ``repro-supervise``
    tree instead of a bare ``repro-serve`` process: the SIGKILL hits the
    supervisor, its child dies with it (PDEATHSIG), and the restarted
    tree must recover the same data directory — the same gate, one
    process layer deeper.
    """
    if not config.verify:
        raise ReproError("crash experiments require config.verify=True")
    return asyncio.run(_run(config, fault, host, base_port,
                            supervise=supervise))


# ======================================================================
# The hostile-network chaos matrix
# ======================================================================
#
# Each scenario is one *class* of hostility, shaped so the fault is
# active for a sizable slice of the measurement window and fully cleared
# before the drain.  All sim cells share the timeline below; the
# stalled-disk cell runs on the live backend (disks only exist there).

#: Protocols every matrix run covers by default (the paper's subject,
#: its pessimistic baseline, and the hybrid-clock variant).
DEFAULT_MATRIX_PROTOCOLS = ("pocc", "cure", "okapi")

MATRIX_WARMUP_S = 0.3
MATRIX_DURATION_S = 2.5
#: When sim-cell faults start / must be gone (inside the window).
_FAULT_AT_S = 0.8
_FAULT_CLEAR_S = 2.4


@dataclass(slots=True)
class ChaosVerdict:
    """One (scenario, protocol) cell of the matrix."""

    scenario: str
    fault_class: str
    protocol: str
    backend: str
    violations: int
    reads_checked: int
    divergences: int
    total_ops: int
    #: Empty iff the cell passed; each entry is one human-readable gate
    #: failure (checker violations, divergent keys, fault never fired…).
    failures: list[str] = field(default_factory=list)
    #: Scenario-specific counters (drops, repairs, stalls, …).
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary_line(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        extras = ", ".join(f"{k}={v}" for k, v in self.details.items())
        line = (
            f"  [{verdict}] {self.scenario:>16} x {self.protocol:<6} "
            f"({self.backend}): {self.violations} violations / "
            f"{self.reads_checked} reads, {self.divergences} divergent, "
            f"{self.total_ops} ops"
        )
        if extras:
            line += f"  ({extras})"
        return line


@dataclass(slots=True)
class ChaosMatrixReport:
    """All cells of one matrix run."""

    seed: int
    verdicts: list[ChaosVerdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.verdicts) and all(v.passed for v in self.verdicts)

    def summary_text(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"chaos matrix (seed {self.seed}): {verdict} — "
            f"{sum(v.passed for v in self.verdicts)}/"
            f"{len(self.verdicts)} cells clean"
        ]
        for cell in self.verdicts:
            lines.append(cell.summary_line())
            for failure in cell.failures:
                lines.append(f"        gate: {failure}")
        return "\n".join(lines)


def _matrix_config(
    protocol: str, seed: int, name: str, anti_entropy: bool = False
) -> ExperimentConfig:
    """The shared sim-cell deployment: smoke scale, mixed workload,
    verification on.  Anti-entropy is enabled only where a scenario
    actually loses messages — everything else runs the stock protocol."""
    cluster = smoke_scale_cluster(protocol)
    if anti_entropy:
        cluster = replace(cluster,
                          anti_entropy=AntiEntropyConfig(enabled=True))
    return ExperimentConfig(
        cluster=cluster,
        workload=WorkloadConfig(
            kind="mixed",
            read_ratio=0.7,
            tx_ratio=0.15,
            tx_partitions=2,
            clients_per_partition=2,
            think_time_s=0.005,
        ),
        warmup_s=MATRIX_WARMUP_S,
        duration_s=MATRIX_DURATION_S,
        seed=seed,
        verify=True,
        name=f"chaos-{name}",
    )


def _sim_verdict(
    scenario: "ChaosScenario",
    protocol: str,
    built: BuiltCluster,
    result: ExperimentResult,
    extra_failures: list[str],
    details: dict[str, Any],
) -> ChaosVerdict:
    """The universal sim-cell gates plus the scenario's own."""
    failures = list(extra_failures)
    violations = result.verification["violations"]
    if violations:
        failures.append(f"{violations} causal violations")
    if result.divergences:
        failures.append(f"{result.divergences} divergent keys after drain")
    if built.faults.any_fault_active:
        failures.append("faults still active at end of run")
    return ChaosVerdict(
        scenario=scenario.name,
        fault_class=scenario.fault_class,
        protocol=protocol,
        backend="sim",
        violations=violations,
        reads_checked=result.verification["reads_checked"],
        divergences=result.divergences,
        total_ops=result.total_ops,
        failures=failures,
        details=details,
    )


def _cell_asym_partition(scenario, protocol: str, seed: int,
                         data_dir: str | None) -> ChaosVerdict:
    """Two overlapping one-direction cuts: a routing fault where A still
    hears B but B no longer hears A (and a second pair likewise)."""
    config = _matrix_config(protocol, seed, scenario.name)
    built = build_cluster(config)
    faults = built.faults
    faults.schedule_one_way_cut(_FAULT_AT_S, 0, 1, heal_after=0.6)
    faults.schedule_one_way_cut(_FAULT_AT_S + 0.2, 2, 0, heal_after=0.4)
    result = run_experiment(config, built=built)
    extra: list[str] = []
    if faults.one_way_cuts_started < 2:
        extra.append("one-way cuts never fired")
    if faults.one_way_cuts_healed < faults.one_way_cuts_started:
        extra.append("a one-way cut never healed")
    details = {
        "one_way_cuts": faults.one_way_cuts_started,
        "held_flushed": built.network.stats.messages_delivered,
    }
    return _sim_verdict(scenario, protocol, built, result, extra, details)


def _cell_lossy(scenario, protocol: str, seed: int,
                data_dir: str | None) -> ChaosVerdict:
    """1% indiscriminate loss on every inter-DC link, with anti-entropy
    backfill on: dropped replication must be repaired by the drain."""
    config = _matrix_config(protocol, seed, scenario.name,
                            anti_entropy=True)
    built = build_cluster(config)
    faults = built.faults
    num_dcs = config.cluster.num_dcs
    for src in range(num_dcs):
        for dst in range(num_dcs):
            if src != dst:
                faults.schedule_loss(0.5, src, dst, 0.01,
                                     stop_after=_FAULT_CLEAR_S - 0.5)
    result = run_experiment(config, built=built)
    stats = built.network.stats
    repairs = sum(s.ae_repairs_applied for s in built.servers.values())
    digests = sum(s.ae_digests_sent for s in built.servers.values())
    extra: list[str] = []
    if stats.messages_dropped == 0:
        extra.append("lossy links dropped nothing")
    if digests == 0:
        extra.append("anti-entropy never exchanged a digest")
    details = {
        "dropped": stats.messages_dropped,
        "ae_digests": digests,
        "ae_repairs": repairs,
    }
    return _sim_verdict(scenario, protocol, built, result, extra, details)


def _cell_slow_link(scenario, protocol: str, seed: int,
                    data_dir: str | None) -> ChaosVerdict:
    """One DC pair congested to 10x base latency in both directions."""
    config = _matrix_config(protocol, seed, scenario.name)
    built = build_cluster(config)
    faults = built.faults
    faults.schedule_slow_link(_FAULT_AT_S, 0, 1, 10.0, restore_after=1.0)
    faults.schedule_slow_link(_FAULT_AT_S, 1, 0, 10.0, restore_after=1.0)
    result = run_experiment(config, built=built)
    extra: list[str] = []
    if faults.slow_links_set < 2:
        extra.append("slow links never fired")
    details = {"slow_links": faults.slow_links_set}
    return _sim_verdict(scenario, protocol, built, result, extra, details)


def _cell_clock_spike(scenario, protocol: str, seed: int,
                      data_dir: str | None) -> ChaosVerdict:
    """NTP-style skew spikes: DC1's clocks step +5ms, later -5ms (the
    negative step is the hard one — pending clock waits must re-arm)."""
    config = _matrix_config(protocol, seed, scenario.name)
    built = build_cluster(config)
    faults = built.faults
    faults.schedule_clock_step(_FAULT_AT_S, 1, 5_000)
    faults.schedule_clock_step(_FAULT_AT_S + 0.8, 1, -5_000)
    result = run_experiment(config, built=built)
    extra: list[str] = []
    if faults.clock_steps < 2:
        extra.append("clock steps never fired")
    details = {"clock_steps": faults.clock_steps}
    return _sim_verdict(scenario, protocol, built, result, extra, details)


def _cell_dc_failover(scenario, protocol: str, seed: int,
                      data_dir: str | None) -> ChaosVerdict:
    """Full-DC blackout and recovery: every link to/from the victim DC
    drops at probability 1.0 (drops, not holds — the wire really loses
    what a dead DC never sent), then the links recover and every server
    runs the crash-recovery catch-up protocol to pull back the gap."""
    victim = 2
    config = _matrix_config(protocol, seed, scenario.name,
                            anti_entropy=True)
    built = build_cluster(config)
    faults = built.faults
    blackout_at = _FAULT_AT_S
    recover_at = _FAULT_AT_S + 1.0
    for other in range(config.cluster.num_dcs):
        if other == victim:
            continue
        faults.schedule_loss(blackout_at, victim, other, 1.0)
        faults.schedule_loss(blackout_at, other, victim, 1.0)

    def recover() -> None:
        # Order matters: catch-up snapshots each server's VV *before*
        # any post-recovery heartbeat can advance it past the blackout
        # gap (same race the crash-recovery docstring pins).
        faults.stop_all_loss()
        for server in built.servers.values():
            server.begin_catchup()

    built.sim.schedule_at(recover_at, recover)
    result = run_experiment(config, built=built)
    stats = built.network.stats
    extra: list[str] = []
    if stats.messages_dropped == 0:
        extra.append("blackout dropped nothing")
    details = {
        "dropped": stats.messages_dropped,
        "catchups": len(built.servers),
        "ae_repairs": sum(s.ae_repairs_applied
                          for s in built.servers.values()),
    }
    return _sim_verdict(scenario, protocol, built, result, extra, details)


async def _live_stalled_disk(
    config: ExperimentConfig, stall_s: float, window_s: float
) -> tuple[LiveReport, int, dict[str, Any]]:
    """A live run whose WAL fsyncs stall mid-measurement.

    The fault is installed on every hosted partition's WAL after the
    warmup and removed ``window_s`` later; acknowledgements ride on
    those fsyncs (group commit), so the stall back-pressures real
    client operations rather than a simulated proxy.
    """
    from repro.persistence.wal import DiskFault

    cluster = LiveCluster(config)
    await cluster.start()
    stagger = min(config.workload.think_time_s or 0.01, 0.02)
    for driver in cluster.drivers:
        driver.start(stagger_s=stagger)
    await asyncio.sleep(config.warmup_s)
    cluster.metrics.arm(cluster.hub.now)
    for driver in cluster.drivers:
        driver.reset_latency()

    await asyncio.sleep(0.3)
    disk_faults = []
    for durability in cluster.durability.values():
        if durability.wal is not None:
            fault = DiskFault(sync_delay_s=stall_s)
            durability.wal.disk_fault = fault
            disk_faults.append(fault)
    await asyncio.sleep(window_s)
    for durability in cluster.durability.values():
        if durability.wal is not None:
            durability.wal.disk_fault = None
    await asyncio.sleep(max(config.duration_s - 0.3 - window_s, 0.5))

    cluster.metrics.disarm(cluster.hub.now)
    for driver in cluster.drivers:
        driver.stop()
    clean = await cluster._quiesce()
    clean = cluster.flush_persistence() and clean
    await cluster.hub.drain()
    report = cluster._report(clean and cluster.hub.clean)
    divergences = len(check_convergence(
        cluster.servers,
        config.cluster.num_dcs,
        config.cluster.num_partitions,
    ))
    await cluster.stop_telemetry()
    await cluster.hub.close()
    cluster.close_persistence()
    stalls = sum(fault.stalls for fault in disk_faults)
    # report.faults carries the transport-side fault accounting directly
    # (satellite of PR 9) — cells assert on it without parsing logs.
    details: dict[str, Any] = {"disk_stalls": stalls}
    if report.faults:
        details["transport_faults"] = report.faults
    return report, divergences, details


def _cell_stalled_disk(scenario, protocol: str, seed: int,
                       data_dir: str | None) -> ChaosVerdict:
    """Live backend: every WAL's fsync stalls for a window while the
    cluster keeps serving; durability pressure must not break causality
    or convergence, and the shutdown flush must still succeed."""
    stack = tempfile.TemporaryDirectory(prefix="chaos-disk-")
    try:
        base = Path(data_dir) if data_dir else Path(stack.name)
        cell_dir = base / f"stalled-disk-{protocol}-{seed}"
        cell_dir.mkdir(parents=True, exist_ok=True)
        cluster = smoke_scale_cluster(protocol)
        config = ExperimentConfig(
            cluster=cluster,
            workload=WorkloadConfig(
                kind="mixed",
                read_ratio=0.7,
                tx_ratio=0.15,
                tx_partitions=2,
                clients_per_partition=2,
                think_time_s=0.005,
            ),
            warmup_s=MATRIX_WARMUP_S,
            duration_s=1.6,
            seed=seed,
            verify=True,
            name=f"chaos-{scenario.name}",
            persistence=PersistenceConfig(
                enabled=True,
                data_dir=str(cell_dir),
                fsync="interval",
                fsync_interval_s=0.02,
                snapshot_interval_s=0.0,
            ),
        )
        report, divergences, details = asyncio.run(
            _live_stalled_disk(config, stall_s=0.02, window_s=0.5)
        )
    finally:
        stack.cleanup()
    failures: list[str] = []
    if report.violations:
        failures.append(f"{len(report.violations)} causal violations")
    if divergences:
        failures.append(f"{divergences} divergent keys after drain")
    if report.total_ops == 0:
        failures.append("no operations completed")
    if not report.clean_shutdown:
        failures.append("shutdown not clean (WAL flush failed?)")
    if details["disk_stalls"] == 0:
        failures.append("disk fault never stalled an fsync")
    return ChaosVerdict(
        scenario=scenario.name,
        fault_class=scenario.fault_class,
        protocol=protocol,
        backend="live",
        violations=len(report.violations),
        reads_checked=report.verification["reads_checked"],
        divergences=divergences,
        total_ops=report.total_ops,
        failures=failures,
        details=details,
    )


# ======================================================================
# Online-resharding chaos: SIGKILL a participant mid view change
# ======================================================================
#
# The elastic-membership tentpole (docs/membership.md) promises that a
# view change — seal, stream, drain, commit — survives the crash of any
# participant.  Three cells pin the three distinct roles: the *donor*
# dies with chains half-streamed, the *joiner* dies with chunks half
# received, and the *bystander* (in the address space, on neither ring)
# dies holding nothing but still gating the commit round.  The driver
# retries every phase forever, so each cell must converge once the
# victim recovers from its WAL and catches up.

#: Victim ``(dc, partition)`` per scenario, against the shared shape
#: below: 2 DCs x 4 partitions, ring (0, 1) -> (0, 1, 2).
_RESHARD_VICTIMS: dict[str, tuple[int, int]] = {
    "reshard-kill-donor": (0, 0),
    "reshard-kill-joiner": (0, 2),
    "reshard-kill-bystander": (0, 3),
}
#: Disjoint deterministic port ranges so consecutive cells never trip
#: over each other's TIME_WAIT sockets.
_RESHARD_BASE_PORTS = {
    "reshard-kill-donor": 7620,
    "reshard-kill-joiner": 7660,
    "reshard-kill-bystander": 7700,
}
_RESHARD_INITIAL = (0, 1)
_RESHARD_TARGET = (0, 1, 2)
#: How long the cell waits for the retried view change to commit after
#: the victim restarts (covers recovery + catch-up + retry rounds).
_RESHARD_COMMIT_TIMEOUT_S = 30.0


def _reshard_config(protocol: str, seed: int, name: str,
                    cell_dir: Path) -> ExperimentConfig:
    from repro.common.config import ClusterConfig, MembershipConfig

    cluster = ClusterConfig(
        num_dcs=2,
        num_partitions=4,
        keys_per_partition=60,
        protocol=protocol,
        membership=MembershipConfig(
            enabled=True,
            initial_members=_RESHARD_INITIAL,
            gossip_interval_s=0.3,
            handoff_chunk_versions=16,
            commit_delay_s=0.3,
            retry_interval_s=0.4,
        ),
    )
    return ExperimentConfig(
        cluster=cluster,
        workload=WorkloadConfig(
            kind="mixed",
            read_ratio=0.7,
            # No RO-TXs here, deliberately.  These cells SIGKILL one
            # partition process, which freezes its counterparts' VV
            # entry for the whole downtime — and plain POCC's RO-TX
            # carries RDV_c (Algorithm 1), not DV_c, so a client that
            # optimistically read a fresh remote version and then wrote
            # can watch its own write fall outside the snapshot while
            # the VV is frozen.  That is the paper's documented price
            # of optimism under failures (the Cure*/HA variants close
            # it), not a resharding defect; these cells gate migration
            # safety.  TX-under-reshard (slice abort and regroup) is
            # covered by the sim resharding test, where nothing dies.
            tx_ratio=0.0,
            clients_per_partition=2,
            think_time_s=0.005,
        ),
        warmup_s=0.4,
        duration_s=4.0,
        seed=seed,
        verify=True,
        name=f"chaos-{name}",
        persistence=PersistenceConfig(
            enabled=True,
            data_dir=str(cell_dir),
            # Acked-means-durable is the gate; snapshots stay off so the
            # WAL keeps pre-purge versions and the union check below can
            # see what a donor held before the cutover purge.
            fsync="always",
            snapshot_interval_s=0.0,
        ),
    )


def _union_write_check(
    cluster: LiveCluster, config: ExperimentConfig, data_dir: Path
) -> tuple[int, list[str], int]:
    """Acked-write durability across a reshard: per-DC *union* check.

    A reshard legitimately moves a key's chains between partition
    directories (and the donor purges its copy after commit), so the
    single-directory check of :func:`_victim_write_check` would report
    false losses.  The invariant that actually holds is per data
    center: every write acked in DC *m* is present in — or dominated
    within — the union of what *all* of DC *m*'s partition directories
    recover.
    """
    from repro.persistence.manager import (
        partition_dirname,
        recover_directory,
    )
    num_dcs = config.cluster.num_dcs
    best: dict[int, dict[Any, tuple[int, int]]] = {}
    recovered_total = 0
    for dc in range(num_dcs):
        by_key = best.setdefault(dc, {})
        for partition in range(config.cluster.num_partitions):
            directory = data_dir / partition_dirname(
                cluster.topology.server(dc, partition))
            if not directory.exists():
                continue
            recovered = recover_directory(directory, truncate=False,
                                          delete_covered=False)
            recovered_total += len(recovered.versions)
            for version in recovered.versions:
                order = version.order_key
                current = by_key.get(version.key)
                if current is None or order > current:
                    by_key[version.key] = order

    acked = 0
    lost: list[str] = []
    for event in cluster.checker.history.writes():
        key, sr, ut = event.version
        acked += 1
        best_order = best.get(sr, {}).get(key)
        if best_order is None or best_order < version_order_key(ut, sr):
            lost.append(
                f"acked write {event.version} at t={event.time_s:.3f}s "
                f"not in DC {sr}'s recovered union (best: {best_order})"
            )
    return acked, lost, recovered_total


async def _run_reshard(
    config: ExperimentConfig, fault: CrashFault, host: str, base_port: int
) -> dict[str, Any]:
    from repro.cluster.reshard import attach_live_controller
    from repro.cluster.ring import ClusterView

    data_dir = Path(config.persistence.data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    config_path = data_dir / "cluster.json"
    save_experiment_config(config, str(config_path))

    topology = Topology(config.cluster.num_dcs,
                        config.cluster.num_partitions)
    victim_address = topology.server(fault.dc, fault.partition)
    cluster = LiveCluster(
        config, host=host, base_port=base_port,
        serve_addresses=[address for address in topology.all_servers()
                         if address != victim_address],
        with_clients=True,
    )
    membership = config.cluster.membership
    target = ClusterView(epoch=1, members=_RESHARD_TARGET,
                         vnodes=membership.vnodes)
    done = asyncio.Event()
    reshard_result: dict[str, Any] = {}

    def _on_done(result) -> None:
        reshard_result["result"] = result
        done.set()

    # Before cluster.start(): the controller endpoint's listener must
    # bind alongside the servers' so their acks can dial back.
    controller = attach_live_controller(
        cluster.hub, cluster.topology, target,
        commit_delay_s=membership.commit_delay_s,
        retry_interval_s=membership.retry_interval_s,
        on_done=_on_done,
    )

    command = _serve_command(config_path, fault, host, base_port)
    log_path = data_dir / "victim.log"
    holder = {"proc": await _spawn_victim(command, log_path)}
    try:
        return await _drive_reshard(cluster, holder, config, fault,
                                    command, log_path, data_dir,
                                    controller, done, reshard_result)
    finally:
        victim = holder["proc"]
        if victim.returncode is None:
            victim.kill()
            await victim.wait()


async def _drive_reshard(
    cluster: LiveCluster, holder: dict, config: ExperimentConfig,
    fault: CrashFault, command: list[str], log_path: Path,
    data_dir: Path, controller, done: asyncio.Event,
    reshard_result: dict[str, Any],
) -> dict[str, Any]:
    victim = holder["proc"]
    await cluster.start()
    stagger = min(config.workload.think_time_s or 0.01, 0.02)
    for driver in cluster.drivers:
        driver.start(stagger_s=stagger)
    await asyncio.sleep(config.warmup_s)
    cluster.metrics.arm(cluster.hub.now)

    # Let traffic build chains on the old ring, then start the view
    # change and kill the victim inside its seal/stream/drain window.
    await asyncio.sleep(0.6)
    controller.start()
    await asyncio.sleep(fault.kill_after_s)
    kill_time = cluster.hub.now
    kill_phase = controller.phase
    victim.kill()  # SIGKILL: no flush, no goodbye
    await victim.wait()

    await asyncio.sleep(fault.downtime_s)
    restart_time = cluster.hub.now
    victim = holder["proc"] = await _spawn_victim(command, log_path)

    try:
        await asyncio.wait_for(done.wait(), _RESHARD_COMMIT_TIMEOUT_S)
    except asyncio.TimeoutError:
        pass  # gated below: "view change never committed"
    # Run on against the committed ring: redirected retries, parked ops
    # answered, and fresh traffic for the rejoin gate.
    await asyncio.sleep(0.6)
    cluster.metrics.disarm(cluster.hub.now)
    for driver in cluster.drivers:
        driver.stop()
    await cluster._quiesce(timeout_s=3.0)
    cluster.flush_persistence()

    victim.terminate()
    try:
        exit_code = await asyncio.wait_for(victim.wait(), TERM_TIMEOUT_S)
    except asyncio.TimeoutError:
        victim.kill()
        await victim.wait()
        exit_code = None

    report = cluster._report(cluster.hub.clean)
    await cluster.hub.close()
    cluster.close_persistence()

    acked, lost, recovered_count = _union_write_check(cluster, config,
                                                      data_dir)
    ops_after_restart = sum(
        1 for event in cluster.checker.history.events
        if event.time_s > restart_time
    )
    servers = cluster.servers.values()
    return {
        "report": report,
        "result": reshard_result.get("result"),
        "exit_code": exit_code,
        "acked_writes": acked,
        "lost_writes": lost,
        "recovered_versions": recovered_count,
        "ops_after_restart": ops_after_restart,
        "kill_time": kill_time,
        "kill_phase": kill_phase,
        "restart_time": restart_time,
        "redirects": sum(s.not_owner_redirects for s in servers),
        "epochs": sorted({s.view_epoch for s in servers}),
    }


def _cell_reshard(scenario, protocol: str, seed: int,
                  data_dir: str | None) -> ChaosVerdict:
    """SIGKILL one view-change participant mid-reshard; the retried
    handoff must still commit with zero violations and zero acked-write
    loss, moving roughly K/S of the keyspace to the joiner."""
    fault_dc, fault_partition = _RESHARD_VICTIMS[scenario.name]
    stack = tempfile.TemporaryDirectory(prefix="chaos-reshard-")
    try:
        base = Path(data_dir) if data_dir else Path(stack.name)
        cell_dir = base / f"{scenario.name}-{protocol}-{seed}"
        cell_dir.mkdir(parents=True, exist_ok=True)
        config = _reshard_config(protocol, seed, scenario.name, cell_dir)
        fault = CrashFault(dc=fault_dc, partition=fault_partition,
                           kill_after_s=0.12, downtime_s=1.0)
        outcome = asyncio.run(_run_reshard(
            config, fault, host="127.0.0.1",
            base_port=_RESHARD_BASE_PORTS[scenario.name],
        ))
    finally:
        stack.cleanup()

    report: LiveReport = outcome["report"]
    result = outcome["result"]
    failures: list[str] = []
    if report.violations:
        failures.append(f"{len(report.violations)} causal violations")
    if result is None:
        failures.append(
            f"view change never committed (killed during "
            f"'{outcome['kill_phase']}' phase)"
        )
    if outcome["lost_writes"]:
        failures.append(
            f"{len(outcome['lost_writes'])} acked writes lost: "
            + "; ".join(outcome["lost_writes"][:3])
        )
    if outcome["ops_after_restart"] == 0:
        failures.append("no operations completed after the restart")
    if outcome["exit_code"] != 0:
        failures.append(
            f"victim's graceful stop exited {outcome['exit_code']}")
    cluster_cfg = config.cluster
    total_keys = cluster_cfg.keys_per_partition * cluster_cfg.num_partitions
    # The K/S bound: adding one member to an S-member ring moves ~K/S
    # keys per DC.  Only keys that accumulated chains move, so the floor
    # is loose; the ceiling catches a ring that reshuffles everything.
    expected = cluster_cfg.num_dcs * total_keys / len(_RESHARD_TARGET)
    if result is not None and not (
            0.2 * expected <= result.keys_moved <= 3.0 * expected):
        failures.append(
            f"{result.keys_moved} keys moved, outside "
            f"[{0.2 * expected:.0f}, {3.0 * expected:.0f}] "
            f"(~K/S = {expected:.0f})"
        )
    if result is not None and outcome["epochs"] != [1]:
        failures.append(
            f"servers left behind after commit: epochs {outcome['epochs']}")

    details: dict[str, Any] = {
        "kill_phase": outcome["kill_phase"],
        "keys_moved": result.keys_moved if result else 0,
        "bytes_moved": result.bytes_moved if result else 0,
        "driver_retries": result.retries if result else 0,
        "redirects": outcome["redirects"],
        "acked_writes": outcome["acked_writes"],
        "recovered_versions": outcome["recovered_versions"],
        "ops_after_restart": outcome["ops_after_restart"],
    }
    return ChaosVerdict(
        scenario=scenario.name,
        fault_class=scenario.fault_class,
        protocol=protocol,
        backend="live",
        violations=len(report.violations),
        reads_checked=report.verification["reads_checked"],
        divergences=0,  # not comparable mid-topology-change; see gates
        total_ops=report.total_ops,
        failures=failures,
        details=details,
    )


@dataclass(frozen=True)
class ChaosScenario:
    """One named scenario of the matrix: a fault class plus a runner."""

    name: str
    fault_class: str
    backend: str
    description: str
    runner: Callable[..., ChaosVerdict]
    #: Restrict the matrix to these protocols (None = every protocol).
    #: The reshard cells pin ``("pocc",)``: elastic membership is a
    #: deployment feature exercised once, not a per-protocol axis.
    protocols: tuple[str, ...] | None = None

    def run(self, protocol: str, seed: int,
            data_dir: str | None = None) -> ChaosVerdict:
        return self.runner(self, protocol, seed, data_dir)


#: The matrix rows, keyed by scenario name (CLI ``--scenarios`` values).
SCENARIOS: dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            "asym-partition", "partition", "sim",
            "overlapping one-direction cuts (routing faults)",
            _cell_asym_partition,
        ),
        ChaosScenario(
            "lossy-1pct", "loss", "sim",
            "1% loss on every inter-DC link, anti-entropy repairs",
            _cell_lossy,
        ),
        ChaosScenario(
            "slow-link-10x", "latency", "sim",
            "one DC pair congested to 10x base latency",
            _cell_slow_link,
        ),
        ChaosScenario(
            "clock-spike", "clock", "sim",
            "+5ms then -5ms NTP steps on one DC's clocks",
            _cell_clock_spike,
        ),
        ChaosScenario(
            "stalled-disk", "disk", "live",
            "every WAL fsync stalls for a window mid-run",
            _cell_stalled_disk,
        ),
        ChaosScenario(
            "dc-failover", "failover", "sim",
            "full-DC blackout (loss=1.0), then catch-up recovery",
            _cell_dc_failover,
        ),
        ChaosScenario(
            "reshard-kill-donor", "reshard", "live",
            "SIGKILL the donor mid-handoff (chains half-streamed)",
            _cell_reshard, protocols=("pocc",),
        ),
        ChaosScenario(
            "reshard-kill-joiner", "reshard", "live",
            "SIGKILL the joiner mid-handoff (chunks half-received)",
            _cell_reshard, protocols=("pocc",),
        ),
        ChaosScenario(
            "reshard-kill-bystander", "reshard", "live",
            "SIGKILL a non-member mid-reshard (still gates commit)",
            _cell_reshard, protocols=("pocc",),
        ),
    )
}


def run_chaos_matrix(
    protocols: Sequence[str] = DEFAULT_MATRIX_PROTOCOLS,
    scenarios: Sequence[str] | None = None,
    seed: int = 20177,
    data_dir: str | None = None,
) -> ChaosMatrixReport:
    """Run every (scenario, protocol) cell and gate each on the checker.

    ``scenarios`` selects by name (default: all of :data:`SCENARIOS`);
    ``data_dir`` hosts the live cells' WALs (default: a temp dir).
    Sim cells are deterministic per seed; the report is self-judging
    via :attr:`ChaosMatrixReport.passed`.
    """
    names = tuple(scenarios) if scenarios is not None else tuple(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise ReproError(
            f"unknown chaos scenarios {unknown}; "
            f"valid: {sorted(SCENARIOS)}"
        )
    report = ChaosMatrixReport(seed=seed)
    for name in names:
        scenario = SCENARIOS[name]
        for protocol in protocols:
            if (scenario.protocols is not None
                    and protocol not in scenario.protocols):
                continue
            report.verdicts.append(
                scenario.run(protocol, seed, data_dir=data_dir)
            )
    return report


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: ``repro-chaos-matrix [--protocols …] [--scenarios …]``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Run the hostile-network chaos matrix."
    )
    parser.add_argument("--protocols", default=",".join(
        DEFAULT_MATRIX_PROTOCOLS))
    parser.add_argument("--scenarios", default="",
                        help=f"comma-separated; default all "
                             f"({','.join(SCENARIOS)})")
    parser.add_argument("--seed", type=int, default=20177)
    parser.add_argument("--data-dir", default=None)
    args = parser.parse_args(argv)
    scenarios = ([s for s in args.scenarios.split(",") if s]
                 if args.scenarios else None)
    report = run_chaos_matrix(
        protocols=[p for p in args.protocols.split(",") if p],
        scenarios=scenarios,
        seed=args.seed,
        data_dir=args.data_dir,
    )
    print(report.summary_text())
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
