"""Per-node physical clocks: loosely synchronized, strictly monotonic.

Section IV: "each server is equipped with a physical clock, which provides
monotonically increasing timestamps [...] loosely synchronized by a time
synchronization protocol, such as NTP.  The correctness of our protocol does
not depend on the synchronization precision."

The model: a node's clock reads ``(1 + drift) * sim_time + offset`` in
microseconds, then clamps to strict monotonicity (two reads never return the
same value, mirroring timestamp-uniqueness per node).  The inverse mapping
:meth:`sim_time_when` lets a server compute exactly when its own clock will
pass a given timestamp — the paper's "wait until max{DV_c} < Clock"
(Algorithm 2 line 7) becomes a scheduled wake-up instead of busy polling.
"""

from __future__ import annotations

from repro.common.config import ClockConfig
from repro.common.errors import SimulationError
from repro.common.types import Micros
from repro.sim.engine import Simulator

_US_PER_S = 1_000_000


class PhysicalClock:
    """One node's skewed-but-monotonic physical clock."""

    __slots__ = ("_sim", "_offset_us", "_rate", "_last_read")

    def __init__(
        self,
        sim: Simulator,
        offset_us: int = 0,
        drift_ppm: float = 0.0,
    ):
        self._sim = sim
        self._offset_us = int(offset_us)
        self._rate = 1.0 + drift_ppm * 1e-6
        if self._rate <= 0:
            raise SimulationError("clock rate must be positive")
        self._last_read: Micros = 0

    @classmethod
    def sample(
        cls, sim: Simulator, config: ClockConfig, rng
    ) -> "PhysicalClock":
        """Draw a clock with offset/drift sampled per ``config``."""
        offset = rng.randint(-config.max_offset_us, config.max_offset_us)
        drift = rng.uniform(-config.max_drift_ppm, config.max_drift_ppm)
        return cls(sim, offset_us=offset, drift_ppm=drift)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def micros(self) -> Micros:
        """Current clock value; strictly greater than any previous read."""
        raw = int(self._sim.now * self._rate * _US_PER_S) + self._offset_us
        if raw <= self._last_read:
            raw = self._last_read + 1
        self._last_read = raw
        return raw

    def peek_micros(self) -> Micros:
        """Current clock value without bumping monotonicity state."""
        raw = int(self._sim.now * self._rate * _US_PER_S) + self._offset_us
        return max(raw, self._last_read)

    # ------------------------------------------------------------------
    # Inversion
    # ------------------------------------------------------------------
    def sim_time_when(self, target_us: Micros) -> float:
        """Earliest simulated time at which ``micros()`` can exceed
        ``target_us``.  Used to schedule clock-wait wake-ups exactly."""
        # Invert raw = sim_time * rate * 1e6 + offset  >  target.
        needed = (target_us + 1 - self._offset_us) / (_US_PER_S * self._rate)
        return max(needed, self._sim.now)

    @property
    def offset_us(self) -> int:
        return self._offset_us

    @property
    def drift_ppm(self) -> float:
        return (self._rate - 1.0) * 1e6
