#!/usr/bin/env python3
"""The classic causal-consistency motivation: the unfriend-then-post story.

Alice removes Boss from her photo ACL, then posts a photo.  The ACL update
and the photo land on *different partitions*, so under eventual consistency
a remote reader can see the new photo while still holding the old ACL —
exactly the anomaly causal consistency rules out.

The script replays the same interleaving against three protocols:

* ``eventual``  — Boss sees the photo with the stale ACL (the anomaly);
* ``pocc``      — Boss's ACL read *blocks* until the ACL update arrives
                  (freshest data, brief wait);
* ``cure``      — Boss never sees the photo until the ACL update is stable
                  (no anomaly, staler data).

A network partition delays the ACL's replication path to Boss's DC to make
the race wide enough to observe deterministically.

Run:  python examples/social_network.py
"""

from repro import ClusterConfig, ExperimentConfig, WorkloadConfig, build_cluster


def build(protocol: str):
    config = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=50, protocol=protocol),
        workload=WorkloadConfig(clients_per_partition=1),
        name=f"social-{protocol}",
    )
    return build_cluster(config)


def run_op(built, issue):
    """Issue one client operation and run until it completes (or 5s)."""
    done = {}
    issue(lambda reply: done.setdefault("reply", reply))
    deadline = built.sim.now + 5.0
    while "reply" not in done and built.sim.now < deadline:
        built.sim.run(until=built.sim.now + 0.01)
    return done.get("reply")


def scenario(protocol: str) -> None:
    print(f"--- {protocol} ---")
    built = build(protocol)
    acl_key = built.pools.key(0, 0)     # partition 0: Alice's ACL
    photo_key = built.pools.key(1, 0)   # partition 1: Alice's photos

    alice = next(c for c in built.clients
                 if c.address.dc == 0 and c.address.partition == 0)
    carol = next(c for c in built.clients
                 if c.address.dc == 2 and c.address.partition == 0)
    boss = next(c for c in built.clients
                if c.address.dc == 1 and c.address.partition == 1)

    # Initial state, fully replicated: Boss is allowed to see photos.
    run_op(built, lambda cb: alice.put(acl_key, "everyone", cb))
    built.sim.run(until=built.sim.now + 1.0)

    # The partition delays DC0 -> DC1 (the ACL's direct path to Boss).
    built.faults.partition_dcs([0], [1])

    # Alice: remove Boss from the ACL, THEN post the photo.
    run_op(built, lambda cb: alice.put(acl_key, "friends-only", cb))
    built.sim.run(until=built.sim.now + 0.3)

    # Carol (DC2, which still hears from DC0) reads the new ACL and posts a
    # comment referencing it — the comment lands on the photo partition and
    # reaches Boss's DC, carrying a causal dependency on the ACL update.
    run_op(built, lambda cb: carol.get(acl_key, cb))
    run_op(built, lambda cb: carol.put(photo_key, "party-photo+comment", cb))
    built.sim.run(until=built.sim.now + 0.3)

    # Boss (DC1): refresh the feed — read the photo, then check the ACL.
    photo = run_op(built, lambda cb: boss.get(photo_key, cb))
    print(f"  Boss sees photo   : {photo.value!r}")

    acl_result = {}
    boss.get(acl_key, lambda reply: acl_result.setdefault("reply", reply))
    built.sim.run(until=built.sim.now + 1.0)

    if "reply" not in acl_result:
        print("  Boss's ACL read   : BLOCKED (missing causal dependency)")
        built.faults.heal_all()
        built.sim.run(until=built.sim.now + 1.0)
        reply = acl_result.get("reply")
        print(f"  ...after heal     : {reply.value!r}")
        anomaly = photo.value != 0 and reply.value != "friends-only"
    else:
        reply = acl_result["reply"]
        print(f"  Boss's ACL read   : {reply.value!r}")
        anomaly = photo.value != 0 and reply.value == "everyone"
        built.faults.heal_all()
    print(f"  anomaly (photo visible under stale ACL): "
          f"{'YES' if anomaly else 'no'}")
    print()


def main() -> None:
    for protocol in ("eventual", "pocc", "cure"):
        scenario(protocol)


if __name__ == "__main__":
    main()
