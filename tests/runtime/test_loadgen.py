"""Multi-process load generation: shards drive one cluster, merge clean.

The worker shards partition the exact client set a single process would
host (same addresses, same seeds), each worker verifies its own slice
with the causal checker, and the parent folds raw histograms — so the
merged report's percentiles are exact and the pass/fail gate is the
conjunction of every worker's.
"""

import pytest

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.common.errors import ConfigError
from repro.runtime.loadgen import run_sharded_load

_PORT = 7910


def _config(seed: int = 7) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=2, num_partitions=2,
                              keys_per_partition=40, protocol="pocc"),
        workload=WorkloadConfig(kind="mixed", read_ratio=0.8, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.005),
        warmup_s=0.2,
        duration_s=1.0,
        seed=seed,
        verify=True,
        name="loadgen-sharded",
    )


def test_sharded_load_merges_worker_shards():
    result = run_sharded_load(_config(), base_port=_PORT, processes=2)
    report = result.report
    assert result.driver_processes == 2
    assert result.hosted_servers
    assert len(result.worker_reports) == 2

    # Every shard did real work against the shared servers.
    assert all(r.total_ops > 0 for r in result.worker_reports)
    assert report.total_ops == sum(r.total_ops
                                   for r in result.worker_reports)
    assert report.throughput_ops_s > 0
    # Merged latency comes from folded raw histograms: the counts add.
    assert report.latency["all"]["count"] > 0
    assert report.latency["all"]["count"] == sum(
        r.latency["all"]["count"] for r in result.worker_reports
    )
    # Each worker's checker verified its own slice, violation-free.
    assert report.violations == []
    assert report.verification["reads_checked"] > 0
    assert report.clean_shutdown, report.errors
    assert report.passed, report.errors


def test_sharded_load_rejects_ephemeral_ports():
    with pytest.raises(ConfigError, match="base-port"):
        run_sharded_load(_config(), base_port=0, processes=2)
    with pytest.raises(ConfigError, match="processes"):
        run_sharded_load(_config(), base_port=_PORT, processes=0)
