"""The plain-asyncio HTTP endpoint serving a :class:`Telemetry` registry.

No web framework, no dependency: an ``asyncio.start_server`` listener
speaking just enough HTTP/1.0 for ``curl``, Prometheus and
``repro-top`` — read one request line, route on the path, write one
``Connection: close`` response.  Runs on the same event loop as the
cluster it observes, so a scrape costs one loop tick and whatever the
gauge callbacks read.

Routes:

* ``/metrics``  — Prometheus text exposition v0.0.4;
* ``/vars.json`` — the registry's JSON snapshot plus process metadata;
* ``/healthz``  — ``ok`` (liveness for supervisors and smoke scripts).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable

from repro.obs.telemetry import Telemetry

#: Longest request head this endpoint will read (it only needs line 1).
MAX_REQUEST_BYTES = 8192


class MetricsServer:
    """One scrape endpoint over one :class:`Telemetry` registry.

    ``meta`` (a callable returning a dict, or a plain dict) is merged
    into every ``/vars.json`` document — the cluster boot passes the
    process identity (hosted servers, protocol, port map position) so
    ``repro-top`` can label rows without out-of-band configuration.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        host: str = "127.0.0.1",
        port: int = 0,
        meta: Callable[[], dict] | dict | None = None,
    ):
        self.telemetry = telemetry
        self.host = host
        self.port = port
        self._meta = meta
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> int:
        """Bind the listener; returns the bound port (resolves 0)."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _vars_document(self) -> dict[str, Any]:
        doc = self.telemetry.snapshot()
        meta = self._meta() if callable(self._meta) else self._meta
        if meta:
            doc.update(meta)
        return doc

    def _respond(self, path: str) -> tuple[int, str, str]:
        if path == "/metrics":
            return (200, "text/plain; version=0.0.4; charset=utf-8",
                    self.telemetry.render_prometheus())
        if path == "/vars.json":
            return (200, "application/json",
                    json.dumps(self._vars_document(), sort_keys=True) + "\n")
        if path == "/healthz":
            return 200, "text/plain", "ok\n"
        return 404, "text/plain", "not found\n"

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            if len(request_line) > MAX_REQUEST_BYTES:
                return
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) < 2 or parts[0] not in ("GET", "HEAD"):
                status, ctype, body = 400, "text/plain", "bad request\n"
            else:
                path = parts[1].split("?", 1)[0]
                status, ctype, body = self._respond(path)
            # Drain the rest of the head without waiting for a slow
            # client: the response does not depend on any header.
            payload = body.encode("utf-8")
            if parts and parts[0] == "HEAD":
                payload = b""
            reason = {200: "OK", 400: "Bad Request",
                      404: "Not Found"}.get(status, "OK")
            head = (
                f"HTTP/1.0 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass
