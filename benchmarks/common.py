"""Shared plumbing for the figure benchmarks.

Every benchmark regenerates one figure of the paper at the scale given by
``REPRO_BENCH_SCALE`` (default ``bench``; set ``smoke`` for a fast pass or
``paper`` for the full 32-partition deployment) and

* records the wall-clock cost through pytest-benchmark,
* asserts the figure's qualitative *shape* (who wins, directions, orders
  of magnitude) — never absolute numbers, which are simulator-scale,
* writes the data table to ``benchmarks/results/figure_<id>.txt`` so the
  series the paper plots can be inspected after the run.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.harness.figures import FIGURES, FigureData

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "bench")


def run_figure(benchmark, figure_id: str) -> FigureData:
    """Run one figure under pytest-benchmark and persist its table."""
    scale = bench_scale()
    figure_fn = FIGURES[figure_id]
    result: dict[str, FigureData] = {}

    def run() -> None:
        result["data"] = figure_fn(scale=scale)

    benchmark.pedantic(run, rounds=1, iterations=1)
    data = result["data"]
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"figure_{figure_id}.txt"
    path.write_text(data.table_text() + "\n", encoding="utf-8")
    return data


def relative_gap(a: float, b: float) -> float:
    """|a-b| relative to the larger magnitude (0 when both are 0)."""
    top = max(abs(a), abs(b))
    return abs(a - b) / top if top else 0.0
