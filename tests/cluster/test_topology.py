"""Tests for topology addressing and key placement."""

import pytest

from repro.common.errors import ConfigError
from repro.cluster.topology import KeyPools, Topology, key_partition


def test_all_servers_enumeration():
    topology = Topology(num_dcs=3, num_partitions=4)
    servers = list(topology.all_servers())
    assert len(servers) == 12
    assert len(set(servers)) == 12


def test_dc_servers():
    topology = Topology(num_dcs=3, num_partitions=4)
    servers = list(topology.dc_servers(1))
    assert len(servers) == 4
    assert all(s.dc == 1 for s in servers)


def test_replicas_of_skips_dc():
    topology = Topology(num_dcs=3, num_partitions=4)
    replicas = list(topology.replicas_of(2, except_dc=1))
    assert [r.dc for r in replicas] == [0, 2]
    assert all(r.partition == 2 for r in replicas)


def test_bounds_checked():
    topology = Topology(num_dcs=3, num_partitions=4)
    with pytest.raises(ConfigError):
        topology.server(3, 0)
    with pytest.raises(ConfigError):
        topology.server(0, 4)
    with pytest.raises(ConfigError):
        topology.client(-1, 0, 0)


def test_key_partition_stable_and_in_range():
    for key in ("a", "user:42", "k00000123"):
        p = key_partition(key, 8)
        assert 0 <= p < 8
        assert p == key_partition(key, 8)  # deterministic


def test_partition_of_matches_free_function():
    topology = Topology(num_dcs=3, num_partitions=8)
    assert topology.partition_of("abc") == key_partition("abc", 8)


def test_key_pools_sizes_and_placement():
    topology = Topology(num_dcs=3, num_partitions=4)
    pools = KeyPools(topology, keys_per_partition=25)
    assert pools.total_keys == 100
    for partition in range(4):
        pool = pools.pool(partition)
        assert len(pool) == 25
        assert len(set(pool)) == 25
        for key in pool:
            assert topology.partition_of(key) == partition


def test_key_pools_rank_lookup():
    topology = Topology(num_dcs=3, num_partitions=2)
    pools = KeyPools(topology, keys_per_partition=10)
    assert pools.key(0, 0) == pools.pool(0)[0]
    assert pools.key(1, 9) == pools.pool(1)[9]


def test_key_pools_deterministic():
    topology = Topology(num_dcs=3, num_partitions=4)
    a = KeyPools(topology, keys_per_partition=10)
    b = KeyPools(topology, keys_per_partition=10)
    assert list(a.all_keys()) == list(b.all_keys())


def test_all_keys_covers_every_pool():
    topology = Topology(num_dcs=3, num_partitions=3)
    pools = KeyPools(topology, keys_per_partition=5)
    assert len(list(pools.all_keys())) == 15
