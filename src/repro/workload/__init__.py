"""Workload generation: key popularity, operation mixes, closed-loop clients.

Section V-A/B: clients are collocated with servers and operate in a closed
loop with 25 ms think time; keys are chosen per-partition from a zipf(0.99)
distribution; the Get-Put workload issues N GETs on distinct partitions then
one PUT on a uniformly random partition; the transactional workload issues a
RO-TX spanning p distinct partitions then a random PUT.
"""

from repro.workload.driver import (
    ClosedLoopClient,
    OpenLoopClient,
    make_driver,
)
from repro.workload.generators import (
    GetPutWorkload,
    OpSpec,
    RoTxWorkload,
    make_workload,
)
from repro.workload.zipf import ZipfGenerator

__all__ = [
    "ClosedLoopClient",
    "GetPutWorkload",
    "OpSpec",
    "OpenLoopClient",
    "RoTxWorkload",
    "ZipfGenerator",
    "make_driver",
    "make_workload",
]
