"""Micro-benchmarks of the simulation substrate itself.

These justify the substrate substitution: the event engine must push
hundreds of thousands of events per second for paper-scale sweeps to be
tractable, and zipf sampling / vector ops are on the per-operation hot
path."""

import random

from repro.clocks.vector import vec_covers, vec_leq, vec_max
from repro.sim.engine import Simulator
from repro.workload.zipf import ZipfGenerator


def test_engine_event_throughput(benchmark):
    """Schedule-and-run cost of one million chained events."""

    def run() -> int:
        sim = Simulator()
        remaining = [200_000]

        def tick() -> None:
            if remaining[0] > 0:
                remaining[0] -= 1
                sim.schedule(0.001, tick)

        for _ in range(5):
            sim.schedule(0.0, tick)
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events >= 200_000


def test_zipf_sampling_throughput(benchmark):
    zipf = ZipfGenerator(10_000, 0.99, random.Random(1))

    def run() -> int:
        return sum(zipf.sample() for _ in range(50_000))

    total = benchmark(run)
    assert total > 0


def test_vector_ops_throughput(benchmark):
    a = [1_000_000, 2_000_000, 3_000_000]
    b = [2_000_000, 1_000_000, 3_000_001]

    def run() -> int:
        hits = 0
        for _ in range(100_000):
            if vec_leq(a, b):
                hits += 1
            if vec_covers(b, a, skip=1):
                hits += 1
            vec_max(a, b)
        return hits

    assert benchmark(run) >= 0
