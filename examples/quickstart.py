#!/usr/bin/env python3
"""Quickstart: run POCC on a small geo-replicated deployment.

Builds a 3-DC x 4-partition cluster, drives a closed-loop GET/PUT workload
through the experiment harness, and prints the measured throughput,
response times, blocking behaviour and (for comparison) what the same
workload looks like under the pessimistic Cure* baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
    run_experiment,
)


def main() -> None:
    base = ExperimentConfig(
        cluster=ClusterConfig(
            num_dcs=3,            # Oregon / Virginia / Ireland latencies
            num_partitions=4,
            keys_per_partition=500,
            protocol="pocc",
        ),
        workload=WorkloadConfig(
            kind="get_put",
            gets_per_put=4,       # a 4:1 read-heavy mix
            clients_per_partition=4,
            think_time_s=0.010,
        ),
        warmup_s=0.5,
        duration_s=2.0,
        verify=True,              # run the causal-consistency checker too
        name="quickstart",
    )

    print("=== POCC (optimistic causal consistency) ===")
    pocc = run_experiment(base)
    print(pocc.summary_text())

    print()
    print("=== Cure* (pessimistic baseline) on the same workload ===")
    import dataclasses
    cure = run_experiment(dataclasses.replace(
        base, cluster=base.cluster.with_protocol("cure"),
    ))
    print(cure.summary_text())

    print()
    print("Headline comparison:")
    print(f"  old GETs        : POCC {pocc.get_staleness['pct_old']:.2f}% "
          f"vs Cure* {cure.get_staleness['pct_old']:.2f}%")
    print(f"  mean resp. time : POCC {pocc.mean_response_time_s*1e3:.3f} ms "
          f"vs Cure* {cure.mean_response_time_s*1e3:.3f} ms")
    print(f"  msgs per op     : POCC "
          f"{pocc.network_messages / pocc.total_ops:.1f} vs Cure* "
          f"{cure.network_messages / cure.total_ops:.1f}")
    assert pocc.verification["violations"] == 0
    assert cure.verification["violations"] == 0
    print("  causal checker  : 0 violations for both protocols")


if __name__ == "__main__":
    main()
