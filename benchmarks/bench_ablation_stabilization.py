"""Ablation — Cure* stabilization period (Section V-B).

The paper: "these results correspond to running the stabilization protocol
every 5 milliseconds.  Higher values would allow the system to reach a
higher throughput, but would come at the cost of an increased data
staleness.  By contrast, POCC is immune to this trade-off."  Sweeping the
period must move Cure*'s staleness; POCC has no such knob in play."""

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    ProtocolConfig,
    WorkloadConfig,
)
from repro.harness.experiment import run_experiment

PERIODS_S = (0.002, 0.005, 0.025)


def _config(period_s: float) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(
            num_dcs=3,
            num_partitions=4,
            keys_per_partition=200,
            protocol="cure",
            protocol_config=ProtocolConfig(
                stabilization_interval_s=period_s
            ),
        ),
        workload=WorkloadConfig(kind="get_put", gets_per_put=4,
                                clients_per_partition=8,
                                think_time_s=0.010),
        warmup_s=0.4,
        duration_s=1.6,
        name=f"stab-{period_s}",
    )


def test_ablation_stabilization_period(benchmark):
    results = {}

    def run() -> None:
        for period in PERIODS_S:
            results[period] = run_experiment(_config(period))

    benchmark.pedantic(run, rounds=1, iterations=1)

    staleness = [results[p].get_staleness["pct_old"] for p in PERIODS_S]
    # Slower stabilization -> staler reads (monotone across the extremes).
    assert staleness[0] < staleness[-1], staleness

    # The mean GSS lag is dominated by the slowest WAN link (~70 ms one
    # way), so a 2 ms vs 25 ms period moves it only marginally; it must
    # not *shrink* materially as the period grows.
    lags = [results[p].gss_lag["mean"] for p in PERIODS_S]
    assert lags[-1] > lags[0] * 0.90, lags

    # Fewer stabilization rounds -> fewer messages on the wire.
    messages = [results[p].network_messages for p in PERIODS_S]
    assert messages[0] > messages[-1], messages
