"""Configuration dataclasses for clusters, protocols, workloads, experiments.

Every tunable in the reproduction lives here, with defaults chosen to mirror
the paper's testbed (Section V-A) where the value is protocol-level (heartbeat
interval, stabilization period, think time, zipf parameter, GET:PUT ratios)
and scaled-down laptop defaults where the value is testbed-level (number of
partitions, keys per partition, service times).  ``paper_scale()`` helpers
return the full-size settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.common.errors import ConfigError

#: Default one-way inter-DC latencies in seconds, indexed [src][dst], for the
#: paper's three regions in order: 0=Oregon (us-west-2), 1=Virginia
#: (us-east-1), 2=Ireland (eu-west-1).  Values approximate public AWS
#: inter-region RTT/2 measurements circa 2017.
DEFAULT_GEO_LATENCY_S: tuple[tuple[float, ...], ...] = (
    (0.0, 0.036, 0.070),
    (0.036, 0.0, 0.040),
    (0.070, 0.040, 0.0),
)

DEFAULT_REGION_NAMES: tuple[str, ...] = ("oregon", "virginia", "ireland")


@dataclass(frozen=True, slots=True)
class LatencyConfig:
    """Network latency model parameters.

    ``inter_dc_s[i][j]`` is the mean one-way latency between DC ``i`` and DC
    ``j``; ``intra_dc_s`` the mean one-way latency between nodes of the same
    DC; ``client_local_s`` the latency between a client and its collocated
    server (clients are collocated per Section V-A, so this is tiny).
    ``jitter_ratio`` scales a lognormal jitter term (0 disables jitter).
    """

    inter_dc_s: tuple[tuple[float, ...], ...] = DEFAULT_GEO_LATENCY_S
    intra_dc_s: float = 0.00025
    client_local_s: float = 0.00005
    jitter_ratio: float = 0.05

    def validate(self, num_dcs: int) -> None:
        if len(self.inter_dc_s) < num_dcs:
            raise ConfigError(
                f"latency matrix covers {len(self.inter_dc_s)} DCs, "
                f"cluster has {num_dcs}"
            )
        for row in self.inter_dc_s[:num_dcs]:
            if len(row) < num_dcs:
                raise ConfigError("latency matrix is not square")
        if self.intra_dc_s < 0 or self.client_local_s < 0:
            raise ConfigError("latencies must be non-negative")
        if self.jitter_ratio < 0:
            raise ConfigError("jitter_ratio must be non-negative")


@dataclass(frozen=True, slots=True)
class ClockConfig:
    """Loosely synchronized physical clocks (Section IV).

    Each node draws a constant offset uniformly from
    ``[-max_offset_us, +max_offset_us]`` and a drift rate uniformly from
    ``[-max_drift_ppm, +max_drift_ppm]`` parts per million.  POCC's
    correctness must not depend on these values (only its waiting times do),
    which the test suite verifies.
    """

    max_offset_us: int = 500
    max_drift_ppm: float = 20.0

    def validate(self) -> None:
        if self.max_offset_us < 0:
            raise ConfigError("max_offset_us must be >= 0")
        if self.max_drift_ppm < 0:
            raise ConfigError("max_drift_ppm must be >= 0")


@dataclass(frozen=True, slots=True)
class ServiceTimeConfig:
    """Per-operation CPU costs (seconds) on the 2-core server model.

    These set the saturation point of the simulated cluster.  They are not
    taken from the paper (which reports aggregate Mops/s on c4.large nodes)
    but chosen so a laptop-scale simulation saturates with a manageable
    number of closed-loop clients while preserving the relative costs the
    paper argues about: Cure* pays chain traversal + stabilization; POCC
    pays blocked-operation resumption.
    """

    get_s: float = 0.00070
    put_s: float = 0.00090
    replicate_s: float = 0.00025
    heartbeat_s: float = 0.00005
    stabilization_msg_s: float = 0.00008
    chain_scan_per_version_s: float = 0.00005
    tx_coordinator_s: float = 0.00050
    tx_coordinator_per_slice_s: float = 0.00015
    slice_base_s: float = 0.00060
    slice_per_key_s: float = 0.00010
    resume_s: float = 0.00010
    gc_msg_s: float = 0.00008
    #: Processing one dependency-check query/ack (COPS* baseline).
    dep_check_s: float = 0.00003

    def validate(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ConfigError(f"service time {name} must be >= 0")


@dataclass(frozen=True, slots=True)
class ProtocolConfig:
    """Protocol-level knobs shared by POCC and Cure*.

    Defaults mirror Section V-A: heartbeats after 1 ms of write idleness,
    Cure* stabilization every 5 ms, PUT dependency waiting enabled
    (Algorithm 2 line 6, enabled in the paper's evaluation).
    """

    #: The paper's ∆: a partition that serves no PUT for this long
    #: broadcasts its clock to its replicas (Algorithm 2 lines 19-26).
    heartbeat_interval_s: float = 0.001
    #: Cure* GSS stabilization period (Section V-A: 5 ms).
    stabilization_interval_s: float = 0.005
    #: Transaction-aware garbage collection period (Section IV-B).
    gc_interval_s: float = 0.250
    #: Enable the optional wait at Algorithm 2 line 6 (the paper enables it).
    put_dependency_wait: bool = True
    #: HA-POCC: how long a request may stay blocked before the server
    #: suspects a network partition and closes the session (Section III-B).
    block_timeout_s: float = 1.0
    #: HA-POCC: background stabilization period during normal (optimistic)
    #: operation — "much less frequently than Cure" (Section IV-C).
    ha_stabilization_interval_s: float = 0.500
    #: HA-POCC: how long a demoted client runs pessimistically before it
    #: attempts to promote itself back to the optimistic protocol.
    ha_promotion_retry_s: float = 2.0
    #: Okapi*: how often each DC aggregator gossips its data-center stable
    #: time to the other DCs (the WAN half of universal stabilization; the
    #: intra-DC half reuses ``stabilization_interval_s``).
    ust_gossip_interval_s: float = 0.005

    def validate(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ConfigError("heartbeat_interval_s must be > 0")
        if self.stabilization_interval_s <= 0:
            raise ConfigError("stabilization_interval_s must be > 0")
        if self.gc_interval_s <= 0:
            raise ConfigError("gc_interval_s must be > 0")
        if self.block_timeout_s <= 0:
            raise ConfigError("block_timeout_s must be > 0")
        if self.ha_stabilization_interval_s <= 0:
            raise ConfigError("ha_stabilization_interval_s must be > 0")
        if self.ha_promotion_retry_s <= 0:
            raise ConfigError("ha_promotion_retry_s must be > 0")
        if self.ust_gossip_interval_s <= 0:
            raise ConfigError("ust_gossip_interval_s must be > 0")


@dataclass(frozen=True, slots=True)
class ReplicationBatchConfig:
    """Protocol-level inter-DC replication batching (Okapi's amortization).

    When enabled, each partition server accumulates the versions it
    creates and ships them to its peer replicas as one
    :class:`~repro.protocols.messages.ReplicateBatch` per flush instead
    of one ``Replicate`` per write.  A flush happens when the buffer
    reaches ``max_versions`` or ``max_bytes``, or ``flush_ms`` after the
    first buffered version — whichever comes first.  Every batch carries
    the source's clock read at flush time, doubling as a heartbeat (the
    explicit heartbeat is suppressed while batches keep the remote
    ``VV`` entries fresh), and Okapi* aggregators additionally piggyback
    their data-center stable time on outgoing batches, amortizing the
    UST gossip the same way.

    Default **off**: with batching disabled the replication path is the
    per-write fan-out, bit-for-bit, so per-seed simulation reports stay
    byte-identical to the pre-batching engine.
    """

    enabled: bool = False
    #: Flush once this many versions are buffered.  ``1`` degenerates to
    #: one single-version batch per write (the equivalence tests' knob).
    max_versions: int = 64
    #: Flush once the buffered versions' modeled wire size reaches this.
    max_bytes: int = 65536
    #: Flush this long after the first buffered version (the visibility
    #: latency each batched write pays at most, on top of the WAN hop).
    flush_ms: float = 5.0

    def validate(self) -> None:
        if self.max_versions < 1:
            raise ConfigError("repl_batch.max_versions must be >= 1")
        if self.max_bytes < 1:
            raise ConfigError("repl_batch.max_bytes must be >= 1")
        if self.flush_ms <= 0:
            raise ConfigError("repl_batch.flush_ms must be > 0")


@dataclass(frozen=True, slots=True)
class AntiEntropyConfig:
    """Anti-entropy backfill between sibling replicas (off by default).

    Replication is fire-and-forget; the paper's lossless channels make
    that safe, injected message loss does not.  When enabled, every
    partition server periodically sends each peer replica a digest — its
    version vector plus the update times it actually received from that
    peer inside ``window_s`` below the watermark — and the peer re-ships
    exactly the missing versions.  Disabled, no timer is ever scheduled
    and per-seed simulation reports stay byte-identical.
    """

    enabled: bool = False
    #: Digest period.  Repair latency for a dropped update is roughly
    #: one period + one WAN round trip.
    interval_s: float = 0.05
    #: How far below the per-source watermark the digest enumerates
    #: received update times.  Must comfortably exceed ``interval_s``
    #: plus the WAN round trip so a hole stays inside the window across
    #: several digest rounds (a repair can itself be lost).
    window_s: float = 0.5
    #: Versions per AeRepair message.
    chunk: int = 256

    def validate(self) -> None:
        if self.interval_s <= 0:
            raise ConfigError("anti_entropy.interval_s must be > 0")
        if self.window_s <= self.interval_s:
            raise ConfigError(
                "anti_entropy.window_s must exceed interval_s"
            )
        if self.chunk < 1:
            raise ConfigError("anti_entropy.chunk must be >= 1")


@dataclass(frozen=True, slots=True)
class TransportTuningConfig:
    """Socket and event-loop tuning of the *live* backend.

    The simulation backend never consults this block (like
    ``ExperimentConfig.persistence`` it is live-only), so per-seed sim
    reports are independent of it.

    * ``tcp_nodelay`` — ``True`` (default) disables Nagle on every
      connection, matching asyncio's own default for TCP streams.
      ``False`` re-enables Nagle so its interplay with the transport's
      application-level write batching can be measured: with batching
      already coalescing frames, Nagle mostly adds delayed-ACK latency.
    * ``sndbuf_bytes`` / ``rcvbuf_bytes`` — ``SO_SNDBUF`` / ``SO_RCVBUF``
      on both dialed and accepted sockets; ``0`` keeps the OS default.
    * ``event_loop`` — ``"auto"`` selects uvloop when importable and
      falls back to asyncio; ``"uvloop"`` requires it; ``"asyncio"``
      forces the stdlib loop.  The selection actually running is
      recorded in ``LiveReport.event_loop`` and the BENCH snapshots.
    """

    tcp_nodelay: bool = True
    sndbuf_bytes: int = 0
    rcvbuf_bytes: int = 0
    event_loop: str = "auto"

    def validate(self) -> None:
        if self.event_loop not in ("auto", "uvloop", "asyncio"):
            raise ConfigError(
                f"event_loop must be 'auto', 'uvloop' or 'asyncio', "
                f"not {self.event_loop!r}"
            )
        if self.sndbuf_bytes < 0:
            raise ConfigError("sndbuf_bytes must be >= 0 (0 = OS default)")
        if self.rcvbuf_bytes < 0:
            raise ConfigError("rcvbuf_bytes must be >= 0 (0 = OS default)")


@dataclass(frozen=True, slots=True)
class TelemetryConfig:
    """Live observability: metrics endpoint and causal event tracing.

    Like :class:`TransportTuningConfig` this block is live-only — the
    simulation backend never consults it, so per-seed sim reports are
    independent of every field here.  Both halves default **off**; a
    disabled block costs one ``None`` check on the hot paths and adds
    no bytes to any wire frame (trace ids reuse the version identity
    ``(sr, ut)`` that replication already carries).

    * ``enabled`` — maintain the :class:`repro.obs.telemetry.Telemetry`
      registry and serve ``/metrics`` + ``/vars.json`` over HTTP.
    * ``metrics_base_port`` — first port of the deterministic metrics
      port map (one endpoint per hosted server, assigned in
      ``Topology.all_servers()`` order, mirroring ``AddressBook``).
      ``0`` binds an ephemeral port (single-process runs only).
    * ``loop_probe_interval_s`` — period of the event-loop lag probe
      (armed only while telemetry is enabled).
    * ``trace`` — emit sampled causal-lifecycle spans
      (``put → wal_synced → replicate_sent → installed → visible``)
      as JSONL under ``trace_dir``.
    * ``trace_sample_every`` — sample a write iff its update time
      satisfies ``ut % trace_sample_every == 0``: deterministic and
      coordination-free, so origin and remote processes sample the
      same writes without exchanging any state.
    """

    enabled: bool = False
    metrics_base_port: int = 0
    loop_probe_interval_s: float = 0.25
    trace: bool = False
    trace_dir: str = ""
    trace_sample_every: int = 64

    def validate(self) -> None:
        if self.metrics_base_port < 0 or self.metrics_base_port > 65535:
            raise ConfigError(
                "telemetry.metrics_base_port must be in [0, 65535]"
            )
        if self.loop_probe_interval_s <= 0:
            raise ConfigError(
                "telemetry.loop_probe_interval_s must be > 0"
            )
        if self.trace and not self.trace_dir:
            raise ConfigError("telemetry.trace requires a trace_dir")
        if self.trace_sample_every < 1:
            raise ConfigError("telemetry.trace_sample_every must be >= 1")


@dataclass(frozen=True, slots=True)
class MembershipConfig:
    """Elastic membership: epoch-versioned views over a consistent-hash
    ring (see docs/membership.md).

    Off by default, and off means *off*: with ``enabled=False`` no view
    is built, no gossip timer is armed, key placement stays the seed's
    ``crc32 % num_partitions``, and per-seed sim reports are
    byte-identical to a build that never heard of this block (pinned by
    ``tests/cluster/test_membership_off.py``).

    * ``initial_members`` — partition ids on the epoch-0 ring; ``None``
      puts every partition of the address space on it.  A subset leaves
      the rest booted but empty, ready to join via ``repro-reshard``.
    * ``vnodes`` — virtual nodes per member (placement determinism and
      the ≈K/S movement bound both ride on this; see cluster/ring.py).
    * ``gossip_interval_s`` — period of the view gossip that lets a
      server which missed a commit (crashed bystander) adopt the
      current epoch.
    * ``handoff_chunk_versions`` — versions per ``MigrateChunk`` frame.
    * ``commit_delay_s`` — drain window between the last donor's
      ``MigrateDone`` and the ``ViewCommit`` broadcast, covering
      replication frames still in flight toward a donor.
    * ``retry_interval_s`` — reshard-driver re-send period; crashed
      participants are re-driven idempotently until they answer.
    * ``redirect_backoff_s`` — base client backoff before retrying an
      op answered with ``NotOwner`` (jittered deterministically from
      the op id).
    """

    enabled: bool = False
    initial_members: tuple[int, ...] | None = None
    vnodes: int = 64
    gossip_interval_s: float = 0.5
    handoff_chunk_versions: int = 128
    commit_delay_s: float = 0.25
    retry_interval_s: float = 0.5
    redirect_backoff_s: float = 0.05

    def validate(self) -> None:
        if self.vnodes < 1:
            raise ConfigError("membership.vnodes must be >= 1")
        if self.gossip_interval_s <= 0:
            raise ConfigError("membership.gossip_interval_s must be > 0")
        if self.handoff_chunk_versions < 1:
            raise ConfigError(
                "membership.handoff_chunk_versions must be >= 1"
            )
        if self.commit_delay_s < 0:
            raise ConfigError("membership.commit_delay_s must be >= 0")
        if self.retry_interval_s <= 0:
            raise ConfigError("membership.retry_interval_s must be > 0")
        if self.redirect_backoff_s < 0:
            raise ConfigError(
                "membership.redirect_backoff_s must be >= 0"
            )
        if self.initial_members is not None and not self.initial_members:
            raise ConfigError(
                "membership.initial_members must be None or non-empty"
            )


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Shape and physical parameters of one simulated deployment."""

    num_dcs: int = 3
    num_partitions: int = 4
    cores_per_node: int = 2
    keys_per_partition: int = 1000
    #: Nominal sizes used only for message byte accounting (Section V-A uses
    #: 8-byte keys and values).
    key_size_bytes: int = 8
    value_size_bytes: int = 8
    protocol: str = "pocc"
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    clocks: ClockConfig = field(default_factory=ClockConfig)
    service: ServiceTimeConfig = field(default_factory=ServiceTimeConfig)
    protocol_config: ProtocolConfig = field(default_factory=ProtocolConfig)
    repl_batch: ReplicationBatchConfig = field(
        default_factory=ReplicationBatchConfig
    )
    anti_entropy: AntiEntropyConfig = field(
        default_factory=AntiEntropyConfig
    )
    #: Live-backend socket/event-loop tuning; ignored by the simulation.
    transport: TransportTuningConfig = field(
        default_factory=TransportTuningConfig
    )
    #: Live observability (metrics endpoint + tracing); ignored by the
    #: simulation.
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    #: Elastic membership (consistent-hash ring + online resharding);
    #: off by default on both backends.
    membership: MembershipConfig = field(default_factory=MembershipConfig)

    def validate(self) -> None:
        if self.num_dcs < 2:
            raise ConfigError("need at least 2 DCs for geo-replication")
        if self.num_partitions < 1:
            raise ConfigError("need at least 1 partition")
        if self.cores_per_node < 1:
            raise ConfigError("need at least 1 core per node")
        if self.keys_per_partition < 1:
            raise ConfigError("need at least 1 key per partition")
        self.latency.validate(self.num_dcs)
        self.clocks.validate()
        self.service.validate()
        self.protocol_config.validate()
        self.repl_batch.validate()
        self.anti_entropy.validate()
        self.transport.validate()
        self.telemetry.validate()
        self.membership.validate()
        if self.membership.initial_members is not None:
            for partition in self.membership.initial_members:
                if not 0 <= partition < self.num_partitions:
                    raise ConfigError(
                        f"membership.initial_members: partition "
                        f"{partition} outside [0, {self.num_partitions})"
                    )

    @property
    def num_nodes(self) -> int:
        return self.num_dcs * self.num_partitions

    def with_protocol(self, protocol: str) -> "ClusterConfig":
        """A copy of this config running a different protocol."""
        return replace(self, protocol=protocol)


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """Workload parameters (Sections V-B and V-C).

    ``arrival`` selects the driver model:

    * ``"closed"`` — the paper's closed loop: each session issues, waits
      for the reply, thinks ``think_time_s``, repeats.  Throughput is
      capped at ``sessions / think_time``.
    * ``"open"`` — the pipelined load generator: each session *schedules*
      arrivals at ``rate_ops_s`` regardless of completions.  The session
      itself stays sequential (causal session guarantees are per-session,
      so at most one operation is in flight per session); arrivals that
      find it busy queue, and latency is measured from the **intended**
      arrival time — queueing delay counts, so overload shows up in the
      tail percentiles instead of being coordinated-omitted away.
      Client concurrency is ``clients_per_partition`` (each client is an
      independent session endpoint).

    ``kind`` is one of:

    * ``"get_put"`` — N GETs on distinct partitions, then one PUT on a
      uniformly random partition (the paper's Section V-B family);
    * ``"ro_tx"`` — one RO-TX spanning ``tx_partitions`` distinct
      partitions, then one PUT (Section V-C);
    * ``"mixed"`` — each operation drawn independently: a RO-TX with
      probability ``tx_ratio``, else a GET with probability
      ``read_ratio / (1 - tx_ratio)``, else a PUT.  Models production
      mixes (YCSB A/B/C, Facebook-like read-heavy traffic; see
      :mod:`repro.workload.presets`).
    """

    kind: str = "get_put"
    #: GETs per PUT for the get_put workload (the paper's N:1 ratio).
    gets_per_put: int = 8
    #: Partitions contacted by each RO-TX for the ro_tx workload.
    tx_partitions: int = 2
    clients_per_partition: int = 4
    #: Section V-A: 25 ms think time between operations.
    think_time_s: float = 0.025
    #: Zipf parameter for key choice within a partition (Section V-A: 0.99).
    zipf_theta: float = 0.99
    #: mixed only: fraction of *all* operations that are GETs.
    read_ratio: float = 0.95
    #: mixed only: fraction of all operations that are RO-TXs.
    tx_ratio: float = 0.0
    #: mixed only: probability that a GET re-reads the client's most
    #: recent write (read-own-writes locality; stresses the session
    #: guarantees without changing the op mix).
    rmw_locality: float = 0.0
    #: Key popularity shape: "zipf" (paper default), "uniform", "hotspot".
    key_distribution: str = "zipf"
    #: hotspot only: fraction of operations aimed at the hot set.
    hotspot_ops: float = 0.9
    #: hotspot only: fraction of each partition's keys forming the hot set.
    hotspot_keys: float = 0.1
    #: Driver model: "closed" (think-time loop) or "open" (target-rate
    #: arrivals with queueing; see class docstring).
    arrival: str = "closed"
    #: open only: target arrivals per second *per session*.  The offered
    #: load is ``rate_ops_s * clients_per_partition * partitions * dcs``.
    rate_ops_s: float = 0.0

    def validate(self, cluster: ClusterConfig) -> None:
        if self.kind not in ("get_put", "ro_tx", "mixed"):
            raise ConfigError(f"unknown workload kind {self.kind!r}")
        if self.arrival not in ("closed", "open"):
            raise ConfigError(f"unknown arrival model {self.arrival!r}")
        if self.arrival == "open" and self.rate_ops_s <= 0:
            raise ConfigError("open-loop arrivals need rate_ops_s > 0")
        if self.rate_ops_s < 0:
            raise ConfigError("rate_ops_s must be >= 0")
        if self.kind == "get_put" and self.gets_per_put < 0:
            raise ConfigError("gets_per_put must be >= 0")
        if self.kind in ("ro_tx", "mixed") and not (
            1 <= self.tx_partitions <= cluster.num_partitions
        ):
            raise ConfigError(
                f"tx_partitions must be in [1, {cluster.num_partitions}]"
            )
        if self.kind == "mixed":
            if not 0.0 <= self.read_ratio <= 1.0:
                raise ConfigError("read_ratio must be in [0, 1]")
            if not 0.0 <= self.tx_ratio <= 1.0:
                raise ConfigError("tx_ratio must be in [0, 1]")
            if self.read_ratio + self.tx_ratio > 1.0:
                raise ConfigError("read_ratio + tx_ratio must be <= 1")
            if not 0.0 <= self.rmw_locality <= 1.0:
                raise ConfigError("rmw_locality must be in [0, 1]")
        if self.key_distribution not in ("zipf", "uniform", "hotspot"):
            raise ConfigError(
                f"unknown key_distribution {self.key_distribution!r}"
            )
        if self.key_distribution == "hotspot":
            if not 0.0 < self.hotspot_ops <= 1.0:
                raise ConfigError("hotspot_ops must be in (0, 1]")
            if not 0.0 < self.hotspot_keys <= 1.0:
                raise ConfigError("hotspot_keys must be in (0, 1]")
        if self.clients_per_partition < 1:
            raise ConfigError("clients_per_partition must be >= 1")
        if self.think_time_s < 0:
            raise ConfigError("think_time_s must be >= 0")
        if self.zipf_theta < 0:
            raise ConfigError("zipf_theta must be >= 0")


@dataclass(frozen=True, slots=True)
class PersistenceConfig:
    """Durability of the *live* backend (ignored by the simulation).

    When enabled, every partition server hosted by a live process keeps a
    per-partition write-ahead log plus periodic snapshots under
    ``data_dir`` (:mod:`repro.persistence`), and a restarted process
    recovers its version chains and clock state from them.

    ``fsync`` trades acknowledgement durability against throughput:

    * ``"always"`` — fsync before every acknowledgement; an acknowledged
      write survives SIGKILL (what the crash-recovery chaos test pins);
    * ``"interval"`` — write-through to the OS on every append, fsync at
      most every ``fsync_interval_s``; a crash can lose the last interval;
    * ``"off"`` — buffered writes, fsync only on clean shutdown.
    """

    enabled: bool = False
    data_dir: str = ""
    fsync: str = "interval"
    fsync_interval_s: float = 0.05
    #: Seconds between version-chain snapshots (with WAL truncation).
    #: ``0`` disables periodic snapshots (the WAL then grows until a
    #: clean shutdown or an explicit ``repro-recover`` inspection).
    snapshot_interval_s: float = 30.0

    def validate(self) -> None:
        if self.fsync not in ("always", "interval", "off"):
            raise ConfigError(
                f"fsync must be 'always', 'interval' or 'off', "
                f"not {self.fsync!r}"
            )
        if self.enabled and not self.data_dir:
            raise ConfigError("persistence.enabled requires a data_dir")
        if self.fsync_interval_s <= 0:
            raise ConfigError("fsync_interval_s must be > 0")
        if self.snapshot_interval_s < 0:
            raise ConfigError("snapshot_interval_s must be >= 0")


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """One runnable experiment: a cluster, a workload and a schedule."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    warmup_s: float = 0.5
    duration_s: float = 2.0
    seed: int = 42
    #: Record full operation histories and run the independent causal
    #: consistency checker after the run (slower; used by tests/examples).
    verify: bool = False
    name: str = ""
    #: Worker processes used when this config fans out into multiple
    #: independent runs (replicates, sweeps, figures).  ``None`` means
    #: ``os.cpu_count()``; ``1`` forces the exact legacy serial path.
    #: Excluded from :meth:`describe` so reports are independent of it.
    parallelism: int | None = None
    #: Live-backend durability (WAL + snapshots).  The simulation ignores
    #: this block entirely; like ``parallelism`` it is excluded from
    #: :meth:`describe` so simulated reports stay byte-identical.
    persistence: PersistenceConfig = field(default_factory=PersistenceConfig)

    def validate(self) -> None:
        self.cluster.validate()
        self.workload.validate(self.cluster)
        self.persistence.validate()
        if self.warmup_s < 0:
            raise ConfigError("warmup_s must be >= 0")
        if self.duration_s <= 0:
            raise ConfigError("duration_s must be > 0")
        if self.parallelism is not None and self.parallelism < 1:
            raise ConfigError("parallelism must be >= 1 (or None for auto)")

    def describe(self) -> dict[str, Any]:
        """A flat summary used in reports and log lines."""
        return {
            "name": self.name,
            "protocol": self.cluster.protocol,
            "dcs": self.cluster.num_dcs,
            "partitions": self.cluster.num_partitions,
            "workload": self.workload.kind,
            "gets_per_put": self.workload.gets_per_put,
            "tx_partitions": self.workload.tx_partitions,
            "clients_per_partition": self.workload.clients_per_partition,
            "think_time_s": self.workload.think_time_s,
            "warmup_s": self.warmup_s,
            "duration_s": self.duration_s,
            "seed": self.seed,
        }


def paper_scale_cluster(protocol: str = "pocc") -> ClusterConfig:
    """The paper's deployment shape: 3 DCs x 32 partitions (Section V-A).

    Keys per partition stays below the paper's 1 M (memory), which is a
    documented substitution: with zipf(0.99) the head of the key ranking
    dominates traffic either way.
    """
    return ClusterConfig(
        num_dcs=3,
        num_partitions=32,
        keys_per_partition=10_000,
        protocol=protocol,
    )


def smoke_scale_cluster(protocol: str = "pocc") -> ClusterConfig:
    """A tiny deployment for unit/integration tests."""
    return ClusterConfig(
        num_dcs=3,
        num_partitions=2,
        keys_per_partition=100,
        protocol=protocol,
    )
