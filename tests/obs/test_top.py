"""``repro-top`` plumbing: row building, aggregation, and endpoint
discovery — everything except the actual network polls."""

import json

import pytest

from repro.obs import top


def _doc(ops=100, vis_p99=0.02, vis_count=10, lag=0.004):
    return {
        "uptime_seconds": 12.5,
        "protocol": "pocc",
        "servers": ["dc0-p0", "dc0-p1"],
        "metrics": {
            "repro_client_ops_total": {'{kind="get"}': ops * 0.8,
                                       '{kind="put"}': ops * 0.2,
                                       '{kind="tx"}': 0},
            "repro_messages_total": {'{kind="GetReq"}': ops},
            "repro_visibility_lag_seconds": {
                "_": {"count": vis_count, "mean": 0.01, "p50": 0.008,
                      "p95": 0.015, "p99": vis_p99, "max": 0.05},
            },
            "repro_wal_fsync_seconds": {
                '{dc="0",partition="0"}': {"count": 4, "mean": 0.001,
                                           "p50": 0.001, "p95": 0.002,
                                           "p99": 0.002, "max": 0.002},
                '{dc="0",partition="1"}': {"count": 6, "mean": 0.003,
                                           "p50": 0.002, "p95": 0.004,
                                           "p99": 0.004, "max": 0.004},
            },
            "repro_stable_lag_seconds": {
                '{dc="0",partition="0"}': lag,
                '{dc="0",partition="1"}': lag / 2,
            },
            "repro_wait_queue_depth": {'{dc="0",partition="0"}': 3,
                                       '{dc="0",partition="1"}': 2},
            "repro_repl_batch_occupancy": {'{dc="0",partition="0"}': 7},
            "repro_event_loop_lag_seconds": {"_": 0.0015},
            "repro_link_fault_drops_total": {},
        },
    }


def test_endpoint_row_reads_every_family():
    row = top.endpoint_row("dc0-p0", _doc(), prev=None)
    assert row["ops_total"] == 100
    assert row["ops_s"] is None  # rates need two polls
    assert row["visibility_p99_s"] == 0.02
    assert row["visibility_samples"] == 10
    assert row["stable_lag_s"] == 0.004
    assert row["wait_queue_depth"] == 5
    assert row["repl_batch_depth"] == 7
    assert row["loop_lag_s"] == 0.0015
    # Summary merge: count-weighted fold, p99 as the conservative max.
    assert row["wal_fsync_p99_s"] == 0.004
    assert row["wal_fsyncs"] == 10
    assert row["servers"] == ["dc0-p0", "dc0-p1"]
    assert row["protocol"] == "pocc"


def test_endpoint_row_rate_from_counter_delta():
    first = top.endpoint_row("dc0-p0", _doc(ops=100), prev=None)
    poll_t, poll_ops = first["_poll"]
    assert poll_ops == 100
    second = top.endpoint_row("dc0-p0", _doc(ops=400),
                              prev=(poll_t - 2.0, poll_ops))
    assert second["ops_s"] == pytest.approx(150.0, rel=0.1)


def test_summary_merge_skips_non_dict_cells():
    doc = {"metrics": {"repro_wal_fsync_seconds": {"_": 3}}}
    merged = top._summary_merge(doc, "repro_wal_fsync_seconds")
    assert merged["count"] == 0


def test_aggregate_rows_sums_and_maxes():
    rows = [
        top.endpoint_row("dc0-p0", _doc(ops=100, vis_p99=0.02), None),
        top.endpoint_row("dc1-p0", _doc(ops=50, vis_p99=0.08), None),
        {"endpoint": "dc1-p1", "down": True},
    ]
    agg = top.aggregate_rows(rows)
    assert agg["endpoints"] == 3
    assert agg["reachable"] == 2
    assert agg["ops_total"] == 150
    assert agg["ops_s"] is None
    assert agg["visibility_p99_s"] == 0.08  # max across endpoints
    assert agg["visibility_samples"] == 20
    assert agg["wait_queue_depth"] == 10


def test_render_table_marks_down_endpoints():
    rows = [top.endpoint_row("dc0-p0", _doc(), None),
            {"endpoint": "dc1-p0", "down": True}]
    table = top.render_table(rows)
    assert "dc0-p0" in table
    assert "DOWN" in table
    assert "endpoint" in table.splitlines()[0]


def test_children_discovery_reads_metrics_ports(tmp_path):
    path = tmp_path / "children.json"
    path.write_text(json.dumps([
        {"dc": 0, "partition": 0, "pid": 10, "metrics_port": 7990},
        {"dc": 0, "partition": 1, "pid": 11, "metrics_port": 7991},
        {"dc": 1, "partition": 0, "pid": 12},  # no endpoint: skipped
    ]))
    endpoints = top._endpoints_from_children(str(path))
    assert endpoints == [("dc0-p0", "127.0.0.1", 7990),
                        ("dc0-p1", "127.0.0.1", 7991)]


def test_children_discovery_fails_loudly_without_ports(tmp_path):
    path = tmp_path / "children.json"
    path.write_text(json.dumps([{"dc": 0, "partition": 0, "pid": 10}]))
    with pytest.raises(SystemExit, match="metrics_port"):
        top._endpoints_from_children(str(path))


def test_config_discovery_derives_the_port_map(tmp_path):
    from repro.cluster.topology import Topology
    from repro.runtime.transport import metrics_port_map

    config = {"cluster": {"num_dcs": 2, "num_partitions": 2,
                          "protocol": "pocc",
                          "telemetry": {"enabled": True,
                                        "metrics_base_port": 7990}}}
    path = tmp_path / "cluster.json"
    path.write_text(json.dumps(config))
    endpoints = top._endpoints_from_config(str(path), "127.0.0.1", None)
    expected = metrics_port_map(Topology(2, 2), 7990, host="127.0.0.1")
    assert len(endpoints) == 4
    assert {(host, port) for _, host, port in endpoints} == \
        set(expected.values())
    labels = [label for label, _, _ in endpoints]
    assert "dc0-p0" in labels and "dc1-p1" in labels


def test_config_discovery_requires_a_base_port(tmp_path):
    path = tmp_path / "cluster.json"
    path.write_text(json.dumps({"cluster": {"num_dcs": 2,
                                            "num_partitions": 2,
                                            "protocol": "pocc"}}))
    with pytest.raises(SystemExit, match="metrics_base_port"):
        top._endpoints_from_config(str(path), "127.0.0.1", None)
    # An explicit override substitutes for the config block.
    endpoints = top._endpoints_from_config(str(path), "127.0.0.1", 8100)
    assert endpoints[0][2] == 8100


def test_explicit_endpoint_specs():
    endpoints = top._endpoints_explicit("127.0.0.1:7990, :8000,")
    assert endpoints == [("127.0.0.1:7990", "127.0.0.1", 7990),
                        (":8000", "127.0.0.1", 8000)]
