"""Live-backend smoke: the same protocol cores over real TCP.

The acceptance test of the core/adapter split's second half: a localhost
cluster running POCC *and* a non-optimistic protocol serves a seeded
workload over actual asyncio TCP sockets, and the independent causal
checker passes over the recorded history.  Short windows keep this
inside tier-1 budgets; the CI ``live-smoke`` job runs the 10-second
version through ``repro-bench-live``.
"""

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.common.types import server_address
from repro.cluster.topology import Topology
from repro.runtime.cluster import run_live_experiment
from repro.runtime.transport import AddressBook


def _config(protocol: str, think_time_s: float = 0.008) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=2, num_partitions=2,
                              keys_per_partition=40, protocol=protocol),
        workload=WorkloadConfig(kind="mixed", read_ratio=0.8,
                                tx_ratio=0.0 if protocol == "cops" else 0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=think_time_s),
        warmup_s=0.2,
        duration_s=1.2,
        seed=23,
        verify=True,
        name=f"live-smoke-{protocol}",
    )


@pytest.mark.parametrize("protocol", ("pocc", "cure"))
def test_live_cluster_serves_and_passes_causal_checker(protocol):
    report = run_live_experiment(_config(protocol))
    assert report.total_ops > 0, "the live cluster served no operations"
    assert report.violations == [], "\n".join(report.violations)
    assert report.clean_shutdown, report.errors
    assert report.passed
    # The checker verified a *recorded* history, not a vacuous one.
    assert report.history_events > 0
    assert report.verification["reads_checked"] > 0
    assert report.messages_delivered > 0


def test_live_report_summary_mentions_verdict():
    report = run_live_experiment(_config("okapi"))
    text = report.summary_text()
    assert "PASS" in text or "FAIL" in text
    assert report.protocol == "okapi"
    assert report.passed, text


@pytest.mark.parametrize("protocol",
                         ("gentlerain", "occ_scalar", "ha_pocc", "cops",
                          "eventual"))
def test_every_registered_protocol_boots_on_the_live_backend(protocol):
    """The registry hands out cores, and every core must come along to
    the live backend — not just the two headline protocols."""
    config = _config(protocol)
    config = ExperimentConfig(
        cluster=config.cluster, workload=config.workload,
        warmup_s=0.1, duration_s=0.6, seed=config.seed,
        verify=True, name=config.name,
    )
    report = run_live_experiment(config)
    assert report.total_ops > 0, f"{protocol} served nothing live"
    assert report.clean_shutdown, report.errors
    if protocol != "eventual":  # the unsafe strawman may (rightly) violate
        assert report.violations == [], "\n".join(report.violations)


def test_open_loop_live_cluster_reports_latency_percentiles():
    """The pipelined load generator end to end: a target-rate open-loop
    run passes the checker, coalesces frames on the wire, and reports
    driver-side p50/p90/p99 measured from intended arrivals."""
    config = _config("pocc")
    config = ExperimentConfig(
        cluster=config.cluster,
        workload=WorkloadConfig(kind="mixed", read_ratio=0.8, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.0, arrival="open",
                                rate_ops_s=120.0),
        warmup_s=0.2, duration_s=1.2, seed=23, verify=True,
        name="live-smoke-openloop",
    )
    report = run_live_experiment(config)
    assert report.passed, report.summary_text()
    assert report.arrival == "open"
    assert report.total_ops > 0
    # 8 sessions x 120/s offered for ~1.4s measured-plus-warmup: the
    # backend must actually have run at open-loop pace, not think-time
    # pace (2 clients closed-loop at 0.008s would cap far lower).
    assert report.throughput_ops_s > 300
    for kind in ("all", "get"):
        stats = report.latency[kind]
        assert stats["count"] > 0
        assert 0 <= stats["p50"] <= stats["p90"] <= stats["p99"] \
            <= stats["max"]
    # Transport batching was live: some frames shared a socket write.
    assert report.batches_sent > 0
    assert report.batches_sent <= report.messages_sent
    assert "p50" in report.summary_text() or "latency" in \
        report.summary_text()


def test_address_book_port_map_is_deterministic():
    """Independently started processes must agree on the map, so it has
    to be a pure function of (topology, clients, host, base port)."""
    topology = Topology(2, 3)
    a = AddressBook.for_topology(topology, clients_per_partition=2,
                                 base_port=9000)
    b = AddressBook.for_topology(topology, clients_per_partition=2,
                                 base_port=9000)
    seen = set()
    for address in topology.all_servers():
        assert a.lookup(address) == b.lookup(address)
        seen.add(a.lookup(address))
    for dc in range(2):
        for partition in range(3):
            for index in range(2):
                client = topology.client(dc, partition, index)
                assert a.lookup(client) == b.lookup(client)
                seen.add(a.lookup(client))
    assert len(seen) == 6 + 12  # every endpoint gets a distinct port
    assert a.lookup(server_address(0, 0)) == ("127.0.0.1", 9000)
