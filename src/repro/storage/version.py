"""The item-version record: the paper's tuple ⟨k, v, sr, ut, dv⟩."""

from __future__ import annotations

from typing import Any, Sequence

from repro.common.types import Micros, ReplicaId, version_order_key


class Version:
    """One immutable version of a key (Section IV-A, "Item").

    Attributes map one-to-one onto the paper's metadata:

    * ``key`` — the key this is a version of;
    * ``value`` — the stored value (opaque to the protocol);
    * ``sr`` — source replica: the DC where the version was created;
    * ``ut`` — update time: physical timestamp at the source replica;
    * ``dv`` — dependency vector: ``dv[i]`` is the update time of the
      newest item from DC *i* this version potentially depends on.

    ``optimistic`` is HA-POCC bookkeeping (Section IV-C): versions written
    by optimistic sessions may depend on items that are not yet stable, so
    pessimistic sessions may only see them once stable.  Plain POCC/Cure*
    ignore the flag.
    """

    __slots__ = ("key", "value", "sr", "ut", "dv", "optimistic")

    def __init__(
        self,
        key: Any,
        value: Any,
        sr: ReplicaId,
        ut: Micros,
        dv: Sequence[Micros],
        optimistic: bool = True,
    ):
        self.key = key
        self.value = value
        self.sr = sr
        self.ut = ut
        self.dv = tuple(dv)
        self.optimistic = optimistic

    @property
    def order_key(self) -> tuple[int, int]:
        """Position in the last-writer-wins total order (greater = later)."""
        return version_order_key(self.ut, self.sr)

    def commit_vector(self) -> list[Micros]:
        """The vector that must be covered for this version to be *stable*.

        Entry ``sr`` carries the version's own update time, the remaining
        entries carry its dependency cut.  A DC that has received everything
        up to this vector has received the version *and* all its (potential)
        dependencies — the visibility test used by the pessimistic protocol.
        """
        vec = list(self.dv)
        if vec[self.sr] < self.ut:
            vec[self.sr] = self.ut
        return vec

    def identity(self) -> tuple[Any, ReplicaId, Micros]:
        """A globally unique id: (key, source replica, update time).

        Unique because update times are strictly monotonic per node and a
        key lives on a single partition of each DC.
        """
        return (self.key, self.sr, self.ut)

    def __repr__(self) -> str:
        return (
            f"Version(key={self.key!r}, value={self.value!r}, sr={self.sr}, "
            f"ut={self.ut}, dv={list(self.dv)})"
        )
