"""Unit tests pinning the sender's write-coalescing byte cap.

The regression these exist for: the sender used to check ``size <
MAX_BATCH_BYTES`` *before* popping the next frame and append it
unconditionally, so every batch could overshoot the cap by one whole
frame — a frame just under the cap could double the joined allocation.
The fixed loop pops, then checks: an over-the-cap frame is carried into
the next batch instead (and a frame bigger than the cap on its own still
goes out, alone).
"""

import asyncio

import pytest

from repro.common.types import server_address
from repro.runtime import transport
from repro.runtime.transport import AddressBook, LiveHub


class FakeWriter:
    """Records each write/writelines batch; drain() yields to the loop
    once.  Mirrors the StreamWriter surface the sender touches."""

    def __init__(self):
        self.writes: list[bytes] = []
        self.closed = False

    def write(self, data: bytes) -> None:
        self.writes.append(bytes(data))

    def writelines(self, parts) -> None:
        # One writelines call is one socket write; record it as such so
        # the byte-cap assertions cover the batched path.
        self.writes.append(b"".join(bytes(part) for part in parts))

    def get_extra_info(self, name, default=None):
        return default  # no real socket behind the fake

    async def drain(self) -> None:
        await asyncio.sleep(0)

    def close(self) -> None:
        self.closed = True


def _run_sender(frames: list[bytes], cap: int,
                monkeypatch) -> tuple[FakeWriter, LiveHub]:
    """Feed ``frames`` through one sender against a fake socket."""
    dst = server_address(0, 0)
    book = AddressBook()
    book.set(dst, "127.0.0.1", 1)
    hub = LiveHub(book)
    writer = FakeWriter()

    async def fake_open_connection(host, port):
        return None, writer

    monkeypatch.setattr(transport, "MAX_BATCH_BYTES", cap)
    monkeypatch.setattr(transport.asyncio, "open_connection",
                        fake_open_connection)

    async def run() -> None:
        queue: asyncio.Queue = asyncio.Queue()
        for frame in frames:
            queue.put_nowait(frame)
        task = asyncio.get_running_loop().create_task(
            hub._sender(dst, queue)
        )
        await asyncio.wait_for(queue.join(), timeout=5.0)
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    asyncio.run(run())
    return writer, hub


def test_batches_never_exceed_the_byte_cap(monkeypatch):
    cap = 100
    frames = [bytes([i]) * 40 for i in range(6)]  # 40B each, cap fits 2
    writer, hub = _run_sender(frames, cap, monkeypatch)
    for write in writer.writes:
        assert len(write) <= cap, (
            f"write of {len(write)}B overshot the {cap}B cap"
        )
    # Nothing lost, nothing reordered: the concatenation is unchanged.
    assert b"".join(writer.writes) == b"".join(frames)
    assert hub.stats.max_batch_frames == 2
    assert hub.stats.messages_dropped == 0


def test_over_cap_frame_is_carried_into_the_next_batch(monkeypatch):
    cap = 100
    # 70 + 70 > cap: the second frame must open the next batch, and the
    # 30B tail then rides with it (70 + 30 = cap, allowed).
    frames = [b"a" * 70, b"b" * 70, b"c" * 30]
    writer, hub = _run_sender(frames, cap, monkeypatch)
    assert [len(w) for w in writer.writes] == [70, 100]
    assert b"".join(writer.writes) == b"".join(frames)


def test_single_oversized_frame_still_goes_out_alone(monkeypatch):
    cap = 100
    frames = [b"x" * 250, b"y" * 10, b"z" * 10]
    writer, hub = _run_sender(frames, cap, monkeypatch)
    # The oversized frame is a batch of its own; the rest coalesce.
    assert [len(w) for w in writer.writes] == [250, 20]
    assert b"".join(writer.writes) == b"".join(frames)
    assert hub.stats.messages_dropped == 0


def test_boundary_frame_exactly_filling_the_cap_rides_along(monkeypatch):
    cap = 100
    frames = [b"a" * 60, b"b" * 40]  # 60 + 40 == cap: not an overshoot
    writer, _ = _run_sender(frames, cap, monkeypatch)
    assert [len(w) for w in writer.writes] == [100]


def test_dead_sender_accounts_for_its_carried_frame(monkeypatch):
    """drain()'s queue.join() must not hang on a popped-but-unwritten
    carry when the sender dies: the cleanup releases it as dropped."""
    cap = 100
    dst = server_address(0, 0)
    book = AddressBook()
    book.set(dst, "127.0.0.1", 1)
    hub = LiveHub(book)

    class ExplodingWriter(FakeWriter):
        async def drain(self) -> None:
            raise ConnectionResetError("peer went away")

    writer = ExplodingWriter()

    async def fake_open_connection(host, port):
        return None, writer

    monkeypatch.setattr(transport, "MAX_BATCH_BYTES", cap)
    monkeypatch.setattr(transport.asyncio, "open_connection",
                        fake_open_connection)

    async def run() -> None:
        queue: asyncio.Queue = asyncio.Queue()
        # First batch fills past the cap, so a carry is pending when the
        # write of the first batch blows up.
        for frame in (b"a" * 70, b"b" * 70):
            queue.put_nowait(frame)
        task = asyncio.get_running_loop().create_task(
            hub._sender(dst, queue)
        )
        await task  # the sender records the failure and returns
        await asyncio.wait_for(queue.join(), timeout=5.0)

    asyncio.run(run())
    assert hub.stats.messages_dropped == 2  # written-batch frame + carry
    assert hub.errors, "the sender failure must be recorded"
