"""Core value types shared across the whole library.

The paper's system model (Section II-C): the data set is split into *N*
partitions, each replicated at *M* data centers.  A server is therefore
addressed by the pair ``(replica, partition)`` — the paper writes it
``p^m_n`` for partition *n* in data center *m*.  Clients are additional
endpoints collocated with a server.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

# The id of a data center (the paper's "replica" superscript, 0 <= m < M).
ReplicaId = int

# The id of a data partition (the paper's subscript, 0 <= n < N).
PartitionId = int

# Physical-clock timestamps are integer microseconds of (simulated) time as
# read from a node's local, loosely synchronized clock.
Micros = int

# CPU priority classes for a node's local work: client-facing request
# handling runs ahead of the background machinery (replication apply,
# heartbeats, stabilization, GC).  Canonical home of the two constants —
# the CPU scheduler and the protocol-core layer both re-export them.
FOREGROUND = 0
BACKGROUND = 1


class NodeKind(enum.Enum):
    """What kind of endpoint an :class:`Address` names."""

    SERVER = "server"
    CLIENT = "client"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeKind.{self.name}"


class OpType(enum.Enum):
    """Client-visible operation types (Section II-C)."""

    GET = "get"
    PUT = "put"
    RO_TX = "ro_tx"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpType.{self.name}"


@dataclass(frozen=True, slots=True)
class Address:
    """A unique endpoint identifier inside one simulated deployment.

    ``dc`` is the data center (replica) index; ``partition`` the data
    partition index; ``index`` disambiguates multiple clients collocated
    with the same server (always 0 for servers).
    """

    dc: ReplicaId
    partition: PartitionId
    kind: NodeKind = NodeKind.SERVER
    index: int = 0

    def __str__(self) -> str:
        if self.kind is NodeKind.SERVER:
            return f"s[{self.dc}.{self.partition}]"
        return f"c[{self.dc}.{self.partition}.{self.index}]"

    @property
    def is_server(self) -> bool:
        return self.kind is NodeKind.SERVER

    @property
    def is_client(self) -> bool:
        return self.kind is NodeKind.CLIENT


def server_address(dc: ReplicaId, partition: PartitionId) -> Address:
    """The address of server ``p^dc_partition``."""
    return Address(dc=dc, partition=partition, kind=NodeKind.SERVER)


def client_address(dc: ReplicaId, partition: PartitionId, index: int) -> Address:
    """The address of the ``index``-th client collocated with a server."""
    return Address(dc=dc, partition=partition, kind=NodeKind.CLIENT, index=index)


#: Client index reserved for the reshard driver's endpoint — far above
#: any real ``clients_per_partition`` so the address can never collide.
RESHARD_CONTROLLER_INDEX = 1 << 20


def reshard_controller_address() -> Address:
    """The well-known endpoint of the view-change (reshard) driver.

    One per deployment; both backends register/dial it like any other
    client endpoint, and :class:`~repro.runtime.transport.AddressBook`
    assigns it the deterministic port right after the clients."""
    return Address(dc=0, partition=0, kind=NodeKind.CLIENT,
                   index=RESHARD_CONTROLLER_INDEX)


def version_order_key(update_time: Micros, source_replica: ReplicaId) -> tuple[int, int]:
    """Total order on versions used by the last-writer-wins rule.

    Section IV-B: the "last" version is the one with the highest update
    timestamp; ties are broken by the source replica id, *lowest wins*.
    Comparing the returned tuples with ``<`` / ``>`` yields that order
    (greater tuple == later / winning version).
    """
    return (update_time, -source_replica)
