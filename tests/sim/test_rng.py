"""Tests for deterministic named RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_name_same_stream_object():
    registry = RngRegistry(1)
    assert registry.stream("a") is registry.stream("a")


def test_streams_reproducible_across_registries():
    a = RngRegistry(42).stream("workload")
    b = RngRegistry(42).stream("workload")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    registry = RngRegistry(42)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_stream_isolation_from_creation_order():
    """Creating extra streams must not perturb existing ones."""
    r1 = RngRegistry(42)
    seq_direct = [r1.stream("target").random() for _ in range(5)]

    r2 = RngRegistry(42)
    r2.stream("noise1").random()
    r2.stream("noise2").random()
    seq_after_noise = [r2.stream("target").random() for _ in range(5)]
    assert seq_direct == seq_after_noise


def test_numpy_streams_reproducible():
    a = RngRegistry(7).numpy_stream("np").standard_normal(4)
    b = RngRegistry(7).numpy_stream("np").standard_normal(4)
    assert (a == b).all()


def test_numpy_and_py_streams_coexist():
    registry = RngRegistry(7)
    assert registry.stream("s").random() is not None
    assert registry.numpy_stream("s").random() is not None


def test_fork_is_independent_of_parent():
    parent = RngRegistry(42)
    child = parent.fork("child")
    assert child.root_seed != parent.root_seed
    assert (
        parent.stream("x").random() != child.stream("x").random()
    )


def test_fork_reproducible():
    a = RngRegistry(42).fork("w").stream("x").random()
    b = RngRegistry(42).fork("w").stream("x").random()
    assert a == b
