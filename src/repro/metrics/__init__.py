"""Measurement infrastructure: histograms, counters, staleness, blocking.

Everything the paper's evaluation section measures is recorded here:
operation response times (Figures 1b, 3b), blocking probability and duration
(Figures 2a, 3c), data staleness as % old / % unmerged plus version counts
(Figures 2b, 3d), throughput, CPU utilization, and network byte accounting
(the communication-overhead argument of Section III-A).
"""

from repro.metrics.collectors import BlockingStats, MetricsRegistry, OpStats
from repro.metrics.histogram import LogHistogram
from repro.metrics.staleness import StalenessAggregate

__all__ = [
    "BlockingStats",
    "LogHistogram",
    "MetricsRegistry",
    "OpStats",
    "StalenessAggregate",
]
