"""Property tests for the generalized GC retention rule."""

from hypothesis import given
from hypothesis import strategies as st

from repro.storage.chain import VersionChain
from repro.storage.gc import collect_chain, collect_chain_by
from repro.storage.store import PartitionStore
from repro.storage.version import Version


def _chain(entries):
    chain = VersionChain()
    for ut, dep in entries:
        chain.insert(Version(key="k", value=ut, sr=0, ut=ut,
                             dv=(dep, 0, 0)))
    return chain


entries_strategy = st.lists(
    st.tuples(st.integers(min_value=1, max_value=10**6),
              st.integers(min_value=0, max_value=10**6)),
    min_size=1, max_size=30,
    unique_by=lambda e: e[0],
)


@given(entries_strategy, st.integers(min_value=0, max_value=10**6))
def test_head_always_survives(entries, horizon):
    chain = _chain(entries)
    head_before = chain.head().identity()
    collect_chain_by(chain, lambda v: v.ut <= horizon)
    assert chain.head().identity() == head_before


@given(entries_strategy, st.integers(min_value=0, max_value=10**6))
def test_first_covered_version_survives(entries, horizon):
    chain = _chain(entries)
    covered = [v.identity() for v in chain if v.ut <= horizon]
    first_covered = covered[0] if covered else None
    collect_chain_by(chain, lambda v: v.ut <= horizon)
    remaining = [v.identity() for v in chain]
    if first_covered is not None:
        assert first_covered in remaining
        # ...and it is the oldest survivor.
        assert remaining[-1] == first_covered
    # Nothing fresher than the first covered version was removed.
    assert remaining[0] == max(remaining, key=lambda i: (i[2], -i[1]))


@given(entries_strategy)
def test_never_empties_chain(entries):
    chain = _chain(entries)
    collect_chain_by(chain, lambda v: False)
    assert len(chain) == len(entries)
    collect_chain_by(chain, lambda v: True)
    assert len(chain) == 1


@given(entries_strategy, st.integers(min_value=0, max_value=10**6))
def test_vector_rule_is_special_case_of_predicate(entries, horizon):
    a = _chain(entries)
    b = _chain(entries)
    gv = [horizon, 10**7, 10**7]
    removed_a = collect_chain(a, gv)
    from repro.clocks.vector import vec_leq
    removed_b = collect_chain_by(b, lambda v: vec_leq(v.dv, gv))
    assert removed_a == removed_b
    assert [v.identity() for v in a] == [v.identity() for v in b]


def test_store_collect_by_records_horizon():
    store = PartitionStore()
    for ut in (10, 20, 30):
        store.insert(Version(key="k", value=ut, sr=0, ut=ut, dv=(0, 0, 0)))
    removed = store.collect_by(lambda v: v.ut <= 25, horizon=[25])
    assert removed == 1  # keeps 30 (head), 20 (first covered); drops 10
    assert store.gc_stats.last_gv == [25]
