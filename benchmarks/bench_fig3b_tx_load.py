"""Figure 3b — throughput and RO-TX response time vs clients/partition.

Paper claim: both systems reach a similar maximum throughput; past the
peak POCC's throughput drops (blocking under overload) while Cure*'s
plateaus, and RO-TX response times climb steeply with the client count."""

from benchmarks.common import run_figure


def test_fig3b_tx_load(benchmark):
    data = run_figure(benchmark, "3b")
    pocc_thr = data.ys("POCC throughput")
    cure_thr = data.ys("Cure* throughput")
    pocc_resp = data.ys("POCC RO-TX resp (ms)")
    cure_resp = data.ys("Cure* RO-TX resp (ms)")

    # Similar maxima (paper: "reaching the same maximum throughput").
    assert max(pocc_thr) > 0 and max(cure_thr) > 0
    assert max(pocc_thr) / max(cure_thr) > 0.70
    assert max(cure_thr) / max(pocc_thr) > 0.70

    # Response times grow with the client count for both systems.
    assert pocc_resp[-1] > pocc_resp[0]
    assert cure_resp[-1] > cure_resp[0]

    # Throughput is increasing at the start of the sweep (below the knee).
    assert pocc_thr[1] > pocc_thr[0]
    assert cure_thr[1] > cure_thr[0]
