"""Key-popularity distributions: shape properties of each chooser."""

import random
from collections import Counter

import pytest

from repro.common.errors import ConfigError
from repro.workload.keydist import (
    HotspotRanks,
    UniformRanks,
    ZipfRanks,
    make_rank_chooser,
)


def _samples(chooser, n=20_000):
    return [chooser.sample() for _ in range(n)]


def test_uniform_covers_range_evenly():
    chooser = UniformRanks(10, random.Random(1))
    counts = Counter(_samples(chooser))
    assert set(counts) == set(range(10))
    for count in counts.values():
        assert count == pytest.approx(2_000, rel=0.15)


def test_zipf_head_dominates():
    chooser = ZipfRanks(1000, 0.99, random.Random(2))
    samples = _samples(chooser)
    head_share = sum(1 for s in samples if s < 10) / len(samples)
    tail_share = sum(1 for s in samples if s >= 500) / len(samples)
    # zipf(0.99): the top 1% of 1000 ranks carries ~39% of the mass,
    # the bottom half under ~10%.
    assert head_share > 0.3
    assert tail_share < 0.15


def test_hotspot_hits_hot_set_at_configured_rate():
    chooser = HotspotRanks(1000, hot_ops=0.9, hot_keys=0.1,
                           rng=random.Random(3))
    samples = _samples(chooser)
    hot_share = sum(1 for s in samples if s < 100) / len(samples)
    assert hot_share == pytest.approx(0.9, abs=0.02)


def test_hotspot_within_classes_is_uniform():
    chooser = HotspotRanks(100, hot_ops=0.5, hot_keys=0.1,
                           rng=random.Random(4))
    hot = Counter(s for s in _samples(chooser, 40_000) if s < 10)
    shares = [hot[i] / sum(hot.values()) for i in range(10)]
    for share in shares:
        assert share == pytest.approx(0.1, abs=0.03)


def test_hotspot_degenerate_full_hot_set():
    chooser = HotspotRanks(5, hot_ops=0.9, hot_keys=1.0,
                           rng=random.Random(5))
    assert set(_samples(chooser, 2_000)) == set(range(5))


def test_hotspot_tiny_keyspace_has_at_least_one_hot_key():
    chooser = HotspotRanks(3, hot_ops=1.0, hot_keys=0.01,
                           rng=random.Random(6))
    assert set(_samples(chooser, 500)) == {0}


def test_rank_bounds():
    for chooser in (
        ZipfRanks(7, 0.99, random.Random(7)),
        UniformRanks(7, random.Random(7)),
        HotspotRanks(7, 0.9, 0.3, random.Random(7)),
    ):
        assert all(0 <= s < 7 for s in _samples(chooser, 2_000))


def test_factory_dispatch():
    rng = random.Random(8)
    assert isinstance(make_rank_chooser("zipf", 10, rng), ZipfRanks)
    assert isinstance(make_rank_chooser("uniform", 10, rng), UniformRanks)
    assert isinstance(make_rank_chooser("hotspot", 10, rng), HotspotRanks)
    with pytest.raises(ConfigError):
        make_rank_chooser("pareto", 10, rng)


def test_invalid_parameters_rejected():
    rng = random.Random(9)
    with pytest.raises(ConfigError):
        UniformRanks(0, rng)
    with pytest.raises(ConfigError):
        HotspotRanks(10, hot_ops=0.0, hot_keys=0.5, rng=rng)
    with pytest.raises(ConfigError):
        HotspotRanks(10, hot_ops=0.5, hot_keys=1.5, rng=rng)
