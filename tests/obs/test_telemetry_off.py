"""The off-state pin: telemetry must be invisible when not enabled.

Three claims, each load-bearing for the observability design
(`src/repro/obs/__init__.py` points here):

1. **Zero wire bytes** — trace ids reuse the version identity
   ``(sr, ut)`` already in every replication frame, so no message
   grows a trace field and frame encodings are byte-identical whether
   or not tracing machinery exists in the process.
2. **The simulation is untouched** — the sim adapter defines neither
   ``telemetry`` nor ``trace``, so cores cache ``None`` hooks and a
   seeded sim run produces a byte-identical report even when the
   config *enables* telemetry (it is a live-only block).
3. **Config compatibility** — a config carrying an explicit default
   ``telemetry`` block is the same experiment as one without it.
"""

import dataclasses
import json

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    TelemetryConfig,
    WorkloadConfig,
)
from repro.harness.builders import build_cluster
from repro.harness.experiment import run_experiment
from repro.protocols import messages as m
from repro.runtime import codec
from repro.storage.version import Version


def _config(telemetry: TelemetryConfig) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=2, num_partitions=2,
                              keys_per_partition=40, protocol="pocc",
                              telemetry=telemetry),
        workload=WorkloadConfig(kind="mixed", read_ratio=0.8, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.004),
        warmup_s=0.1,
        duration_s=0.6,
        seed=41,
        verify=True,
        name="telemetry-off-pin",
    )


def _measured_bytes(telemetry: TelemetryConfig) -> bytes:
    result = run_experiment(_config(telemetry))
    payload = dataclasses.asdict(result)
    # The recorded config block legitimately carries the telemetry
    # settings; everything *measured* must be identical.
    payload.pop("config")
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _version() -> Version:
    return Version(key="pin", value=("c0", 7), sr=1, ut=4_096_000,
                   dv=(3, 4_096_000), optimistic=True)


def test_no_message_carries_a_trace_field():
    """Trace propagation is the version identity itself — adding a
    dedicated field to any wire message would break the zero-byte
    claim."""
    for cls in (m.Replicate, m.ReplicateBatch, m.PutReq, m.PutReply,
                m.GetReq, m.GetReply):
        names = {f.name for f in dataclasses.fields(cls)}
        assert not any("trace" in name or "span" in name
                       for name in names), \
            f"{cls.__name__} grew an observability field: {names}"


def test_frames_identical_with_tracing_machinery_active(tmp_path):
    """Encoding the same message with a live TraceLog in the process
    (spans being emitted and all) produces the same bytes."""
    before_repl = codec.encode_frame(m.Replicate(version=_version()))
    before_batch = codec.encode_frame(
        m.ReplicateBatch(versions=[_version()], src_dc=1,
                         clock_ts=4_096_001))

    from repro.obs.tracing import TraceLog
    trace = TraceLog(str(tmp_path / "t.jsonl"), 1, now_fn=lambda: 1.0)
    version = _version()
    assert trace.sampled(version.ut)
    trace.span("put", version.sr, version.ut, node="dc1-p0",
               key=version.key)
    trace.span("replicate_sent", version.sr, version.ut, node="dc1-p0")
    trace.close()

    assert codec.encode_frame(m.Replicate(version=version)) == before_repl
    assert codec.encode_frame(
        m.ReplicateBatch(versions=[version], src_dc=1,
                         clock_ts=4_096_001)) == before_batch


def test_sim_cores_cache_no_observability_hooks():
    """The sim adapter defines neither ``telemetry`` nor ``trace``, so a
    core built on it holds None hooks even under an *enabled* config —
    the mechanism behind the byte-identity guarantee."""
    enabled = TelemetryConfig(enabled=True, trace=True, trace_dir="/tmp",
                              trace_sample_every=1)
    built = build_cluster(_config(enabled))
    assert built.servers, "no servers built"
    for server in built.servers.values():
        assert server._obs is None
        assert server._trace is None


def test_sim_report_byte_identical_with_and_without_telemetry_config():
    baseline = _measured_bytes(TelemetryConfig())
    explicit_off = _measured_bytes(TelemetryConfig(enabled=False))
    enabled = _measured_bytes(
        TelemetryConfig(enabled=True, trace=True, trace_dir="/tmp",
                        trace_sample_every=1))
    assert baseline == explicit_off
    assert baseline == enabled
