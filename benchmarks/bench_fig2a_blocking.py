"""Figure 2a — POCC blocking probability and blocking time vs throughput.

Paper claim: blocking probability stays below 1e-3 until the system nears
its maximum throughput (so the 99.999th percentile is unaffected); blocking
time is sub-millisecond at moderate load."""

from benchmarks.common import run_figure


def test_fig2a_blocking(benchmark):
    data = run_figure(benchmark, "2a")
    probabilities = data.series["blocking probability"]
    times = data.series["blocking time (ms)"]

    # Blocking is rare through most of the load range.
    low_load = probabilities[: max(1, len(probabilities) // 2)]
    assert all(p < 1e-2 for _, p in low_load), low_load

    # Blocking stays the exception even at saturation (blocked operations
    # never become the common case).
    assert all(p < 0.25 for _, p in probabilities)

    # Blocked operations stall for milliseconds, not seconds.
    assert all(t < 250.0 for _, t in times)
