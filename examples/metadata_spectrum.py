#!/usr/bin/env python3
"""The dependency-metadata spectrum on one workload (Section III-A).

The paper notes that OCC "can be implemented with any dependency tracking
mechanism" — dependency lists, scalar clocks, vector clocks.  This example
runs the same GET:PUT workload through six protocols spanning that space
and prints how each one pays for causal consistency:

* pocc        — optimistic + O(M) vectors (the paper's system)
* occ_scalar  — optimistic + O(1) scalars
* cure        — pessimistic + O(M) vectors (the paper's baseline)
* gentlerain  — pessimistic + O(1) scalar GST
* okapi       — pessimistic + O(1) hybrid-clock scalars + *universal*
                stabilization (the authors' follow-up system)
* cops        — pessimistic + explicit dependency lists + dep-check traffic

Run:  python examples/metadata_spectrum.py
"""

from repro import (
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
    run_experiment,
)

SPECTRUM = ("pocc", "occ_scalar", "cure", "gentlerain", "okapi", "cops")


def main() -> None:
    results = {}
    for protocol in SPECTRUM:
        config = ExperimentConfig(
            cluster=ClusterConfig(num_dcs=3, num_partitions=4,
                                  keys_per_partition=200,
                                  protocol=protocol),
            workload=WorkloadConfig(kind="get_put", gets_per_put=4,
                                    clients_per_partition=4,
                                    think_time_s=0.010),
            warmup_s=0.5,
            duration_s=2.0,
            name=f"spectrum-{protocol}",
        )
        results[protocol] = run_experiment(config)

    header = (f"{'protocol':<12} {'thr ops/s':>10} {'msgs/op':>8} "
              f"{'B/op':>6} | {'old %':>6} {'block p':>9} "
              f"{'vis lag ms':>11}")
    print(header)
    print("-" * len(header))
    for protocol in SPECTRUM:
        r = results[protocol]
        print(f"{protocol:<12} {r.throughput_ops_s:>10,.0f} "
              f"{r.network_messages / r.total_ops:>8.2f} "
              f"{r.bytes_per_op:>6.0f} | "
              f"{r.get_staleness['pct_old']:>6.2f} "
              f"{r.blocking_probability:>9.2e} "
              f"{r.visibility_lag['mean'] * 1000:>11.2f}")

    print()
    print("How to read this:")
    print(" * optimistic protocols (pocc, occ_scalar) never return old")
    print("   GETs and expose remote updates one WAN delay after creation;")
    print("   they pay with (rare) blocking.")
    print(" * pessimistic protocols never block GETs on fresh versions but")
    print("   return stale data and delay visibility by their stability")
    print("   horizon (GSS < GST) — and cops pays dependency-check traffic.")
    print(" * scalar metadata is cheaper on the wire, coarser in what it")
    print("   can express: more false blocking (occ_scalar) or more")
    print("   staleness (gentlerain).")
    print(" * okapi pushes pessimism to the limit: remote updates wait for")
    print("   *every* DC (stalest reads, highest visibility lag) in")
    print("   exchange for the smallest metadata and zero blocking —")
    print("   writes never even wait on clocks (hybrid logical clocks).")


if __name__ == "__main__":
    main()
