"""The perf trajectory: one JSON snapshot of repo performance per PR.

Runs the engine/network/storage/experiment micro-bench suite (the same
workloads as ``bench_engine.py``), a reference figure-1a sweep and a
reference replicate set — each executed serially (``parallelism=1``) and
through the process-pool runner — plus the live-backend legs: the
closed-loop smoke, the *pipelined* open-loop leg (throughput + p50/p90/p99
against the embedded BENCH_pr4 live baseline), the WAL fsync-mode
sweep under group commit, the lossy-link leg (1% replication loss,
anti-entropy off vs on), the observability-overhead leg (telemetry
off vs scraped vs traced), and the online-resharding leg (a partition
joining the consistent-hash ring mid-window vs a no-reshard control).
Everything lands in one ``BENCH_*.json``
file.  Future PRs append their own snapshot file; comparing snapshots is
the perf trajectory.

The script is also the CI deadlock/divergence canary: it exits non-zero if
the parallel runner's results differ from the serial ones in any way, and
CI wraps it in a timeout so a deadlocked pool fails the job.

Usage::

    PYTHONPATH=src python benchmarks/perf_trajectory.py --smoke
    PYTHONPATH=src python benchmarks/perf_trajectory.py --pr 3  # BENCH_pr3.json

``--smoke`` shrinks every workload so the whole run finishes well under
60 s (the CI budget); the full run uses the ``bench`` figure scale and
8 replicate seeds (the acceptance reference for the >= 3x speedup on an
8-core runner).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_engine import (  # noqa: E402
    build_geo_network,
    build_loaded_store,
    drive_network,
    frame_decoder_speedup,
    perf_reference_config,
    scan_store,
)
from repro.harness.figures import figure_1a  # noqa: E402
from repro.harness.parallel import resolve_parallelism  # noqa: E402
from repro.harness.replicates import run_replicates  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402

#: Pre-change baseline of the event-engine micro-bench, recorded on the
#: PR-2 development container (1 vCPU) immediately before the hot-path
#: optimizations landed.  The engine bench in this file must not regress
#: against it when run on the same class of machine; on other machines the
#: ratio of current/baseline is informational.
PRE_CHANGE_BASELINE = {
    "machine": "pr2-dev-container-1vcpu",
    "engine_events_per_s": 759031,
    "network_msgs_per_s": 149802,
    "chain_scan_wall_s": 0.0388,
    "full_experiment_wall_s": 0.6729,
}

#: The committed BENCH_pr4 ``live_cluster`` leg (same machine class),
#: recorded immediately before the PR-5 live fast path (transport
#: batching, compiled codec, WAL group commit, open-loop generator).
#: The pipelined live leg reports its throughput as a ratio over this.
PR4_LIVE_BASELINE = {
    "machine": "pr4-dev-container-1vcpu",
    "throughput_ops_s": 1255.7,
    "serializer": "json",
    "arrival": "closed",
    "note": "closed loop, 8 sessions x 5ms think time (capped ~1.6k offered)",
}


#: The committed BENCH_pr5 ``live_pipelined`` leg (same machine class),
#: recorded immediately before PR 6's protocol-level replication
#: batching.  The batched pipelined leg reports its throughput as a
#: ratio over this: batching must not cost live throughput.
PR5_LIVE_BASELINE = {
    "machine": "pr5-dev-container-1vcpu",
    "throughput_ops_s": 4650.4,
    "serializer": "json",
    "arrival": "open",
    "note": "pipelined open loop, 16 sessions x 300 ops/s offered",
}


def best_of(fn, repeats: int = 3):
    """Best (minimum) wall-clock of ``repeats`` runs, plus the last value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def bench_event_engine(chained_events: int) -> dict:
    def run() -> int:
        sim = Simulator()
        remaining = [chained_events]

        def tick() -> None:
            if remaining[0] > 0:
                remaining[0] -= 1
                sim.schedule(0.001, tick)

        for _ in range(5):
            sim.schedule(0.0, tick)
        sim.run()
        return sim.events_executed

    wall_s, events = best_of(run)
    return {"events": events, "wall_s": round(wall_s, 4),
            "events_per_s": round(events / wall_s)}


def bench_network(rounds: int) -> dict:
    def run() -> int:
        sim, network, endpoints = build_geo_network()
        sent = drive_network(sim, network, endpoints, rounds=rounds)
        if network.stats.messages_delivered != sent:
            raise AssertionError("network dropped messages")
        return sent

    wall_s, sent = best_of(run)
    return {"messages": sent, "wall_s": round(wall_s, 4),
            "messages_per_s": round(sent / wall_s)}


def bench_chain_reads(rounds: int) -> dict:
    store, keys = build_loaded_store()

    def run() -> int:
        return scan_store(store, keys, rounds=rounds)

    wall_s, scanned = best_of(run)
    return {"versions_scanned": scanned, "wall_s": round(wall_s, 4)}


def bench_full_experiment() -> dict:
    from repro.harness.experiment import run_experiment

    def run():
        return run_experiment(perf_reference_config())

    wall_s, result = best_of(run, repeats=2)
    return {"wall_s": round(wall_s, 4), "sim_events": result.sim_events,
            "total_ops": result.total_ops}


def annotate_speedup(timings: dict, serial_s: float,
                     parallel_s: float) -> None:
    """Record the parallel speedup honestly for the host's core count.

    On a single-core host a process pool cannot beat the serial path —
    the ~0.98x "speedups" BENCH_pr4 recorded on 1 vCPU read as
    regressions when they are just pool overhead.  The leg still runs
    (it is the deadlock/divergence canary), but the speedup is reported
    as null with a note instead of a misleading ratio.
    """
    cores = os.cpu_count() or 1
    timings["cpu_count"] = cores
    if cores < 2:
        timings["speedup"] = None
        timings["speedup_note"] = (
            "single-core host: the pool cannot beat serial; this leg ran "
            "as a divergence/deadlock canary only"
        )
    else:
        timings["speedup"] = (round(serial_s / parallel_s, 2)
                              if parallel_s else None)


def bench_figure_sweep(scale: str, parallelism: int) -> tuple[dict, bool]:
    """Figure 1a serial vs parallel; returns (timings, diverged)."""
    started = time.perf_counter()
    serial = figure_1a(scale=scale, parallelism=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = figure_1a(scale=scale, parallelism=parallelism)
    parallel_s = time.perf_counter() - started

    diverged = serial.series != parallel.series
    timings = {
        "scale": scale,
        "runs": len(serial.results),
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "parallelism": parallelism,
        "diverged": diverged,
    }
    annotate_speedup(timings, serial_s, parallel_s)
    return timings, diverged


def bench_replicates(num_seeds: int, parallelism: int) -> tuple[dict, bool]:
    """run_replicates serial vs parallel; returns (timings, diverged)."""
    config = perf_reference_config()

    started = time.perf_counter()
    serial = run_replicates(config, num_seeds=num_seeds, parallelism=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_replicates(config, num_seeds=num_seeds,
                              parallelism=parallelism)
    parallel_s = time.perf_counter() - started

    diverged = (serial.stats != parallel.stats
                or serial.summary_table() != parallel.summary_table())
    timings = {
        "num_seeds": num_seeds,
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "parallelism": parallelism,
        "throughput_mean_ops_s": round(serial.mean("throughput_ops_s"), 2),
        "diverged": diverged,
    }
    annotate_speedup(timings, serial_s, parallel_s)
    return timings, diverged


def bench_live_cluster(duration_s: float) -> tuple[dict, bool]:
    """A short live (asyncio TCP) POCC run; returns (stats, failed).

    PR 3's trajectory addition: the live backend's throughput on the
    2-DC x 2-partition smoke shape, with the causal checker as canary —
    a checker violation or unclean shutdown fails the script like a
    serial/parallel divergence does.
    """
    from repro.common.config import (
        ClusterConfig, ExperimentConfig, WorkloadConfig,
    )
    from repro.runtime.cluster import run_live_experiment

    config = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=2, num_partitions=2,
                              keys_per_partition=100, protocol="pocc"),
        workload=WorkloadConfig(kind="mixed", read_ratio=0.85, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.005),
        warmup_s=0.3,
        duration_s=duration_s,
        seed=7,
        verify=True,
        name="perf-live-smoke",
    )
    report = run_live_experiment(config)
    stats = {
        "protocol": report.protocol,
        "duration_s": round(report.duration_s, 3),
        "total_ops": report.total_ops,
        "throughput_ops_s": round(report.throughput_ops_s, 1),
        "frames_delivered": report.messages_delivered,
        "violations": len(report.violations),
        "clean_shutdown": report.clean_shutdown,
        "serializer": report.serializer,
        "event_loop": report.event_loop,
        "batches_sent": report.batches_sent,
        "batched_frames": report.batched_frames,
    }
    return stats, not report.passed


def _latency_percentiles(report) -> dict:
    """p50/p90/p99 (ms) per op kind from the driver-side histograms."""
    out = {}
    for kind, stats in sorted(report.latency.items()):
        out[kind] = {
            "count": stats["count"],
            "p50_ms": round(stats["p50"] * 1000, 2),
            "p90_ms": round(stats["p90"] * 1000, 2),
            "p99_ms": round(stats["p99"] * 1000, 2),
            "mean_ms": round(stats["mean"] * 1000, 2),
        }
    return out


def _pipelined_config(duration_s: float, rate_ops_s: float,
                      name: str, persistence=None, repl_batch=None):
    from repro.common.config import (
        ClusterConfig,
        ExperimentConfig,
        PersistenceConfig,
        ReplicationBatchConfig,
        WorkloadConfig,
    )

    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=2, num_partitions=2,
                              keys_per_partition=100, protocol="pocc",
                              repl_batch=(repl_batch
                                          or ReplicationBatchConfig())),
        workload=WorkloadConfig(kind="mixed", read_ratio=0.85, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=4,
                                think_time_s=0.0, arrival="open",
                                rate_ops_s=rate_ops_s),
        warmup_s=0.4,
        duration_s=duration_s,
        seed=7,
        verify=True,
        name=name,
        persistence=persistence or PersistenceConfig(),
    )


def bench_live_pipelined(duration_s: float,
                         rate_ops_s: float = 300.0) -> tuple[dict, bool]:
    """The pipelined (open-loop) live leg: throughput + p50/p90/p99.

    PR 5's trajectory addition and the live acceptance gate: a 2-DC x
    2-partition POCC cluster driven by 16 open-loop sessions at a
    saturating offered rate (closed-loop legs cap at ``sessions /
    think_time`` and measured the generator, not the backend).  Latency
    percentiles come from the drivers' intended-arrival histograms, so
    queueing under overload is *in* the tail, not omitted.  Reported as
    a ratio over the committed BENCH_pr4 ``live_cluster`` number; checker
    violations or an unclean shutdown fail the script.
    """
    from repro.runtime.cluster import run_live_experiment

    config = _pipelined_config(duration_s, rate_ops_s, "perf-live-pipelined")
    report = run_live_experiment(config)
    sessions = (config.workload.clients_per_partition
                * config.cluster.num_partitions * config.cluster.num_dcs)
    stats = {
        "protocol": report.protocol,
        "arrival": report.arrival,
        "sessions": sessions,
        "offered_rate_ops_s": rate_ops_s * sessions,
        "duration_s": round(report.duration_s, 3),
        "total_ops": report.total_ops,
        "throughput_ops_s": round(report.throughput_ops_s, 1),
        "latency": _latency_percentiles(report),
        "dropped_arrivals": report.dropped_arrivals,
        "frames_delivered": report.messages_delivered,
        "batches_sent": report.batches_sent,
        "batched_frames": report.batched_frames,
        "violations": len(report.violations),
        "clean_shutdown": report.clean_shutdown,
        "serializer": report.serializer,
        "event_loop": report.event_loop,
        "baseline_pr4_live": PR4_LIVE_BASELINE,
        "vs_pr4_live_ratio": round(
            report.throughput_ops_s / PR4_LIVE_BASELINE["throughput_ops_s"],
            2),
    }
    return stats, not report.passed


def bench_fsync_modes(duration_s: float,
                      rate_ops_s: float = 300.0) -> tuple[dict, bool]:
    """Durability overhead: live ops/s with fsync off/interval/always.

    Since PR 5 this leg drives the *pipelined* open-loop workload at a
    saturating rate (the PR-4 closed loop was generator-capped, so every
    fsync mode measured the same ~1.2k ops/s and the 0.985 ratio said
    nothing).  Under saturation the ratio between ``off`` (pure
    WAL-append cost) and ``always`` (write+fsync before every
    acknowledgement, group-committed per event-loop tick) is the real
    price of full durability — the acceptance gate wants it within 25%.
    """
    import tempfile

    from repro.common.config import PersistenceConfig
    from repro.runtime.cluster import run_live_experiment

    results: dict = {}
    failed = False
    for mode in ("off", "interval", "always"):
        with tempfile.TemporaryDirectory() as tmp:
            config = _pipelined_config(
                duration_s, rate_ops_s, f"perf-fsync-{mode}",
                persistence=PersistenceConfig(
                    enabled=True, data_dir=tmp, fsync=mode,
                    snapshot_interval_s=2.0,
                ),
            )
            report = run_live_experiment(config)
            wal_appends = sum(
                stats["wal_records_appended"]
                for stats in report.persistence.values()
            )
            wal_syncs = sum(
                stats["wal_syncs"] for stats in report.persistence.values()
            )
            group_commits = sum(
                stats["wal_group_commits"]
                for stats in report.persistence.values()
            )
            max_batch = max(
                (stats["wal_max_batch_records"]
                 for stats in report.persistence.values()),
                default=0,
            )
            results[mode] = {
                "throughput_ops_s": round(report.throughput_ops_s, 1),
                "total_ops": report.total_ops,
                "latency": _latency_percentiles(report),
                "wal_records_appended": wal_appends,
                "wal_syncs": wal_syncs,
                "wal_group_commits": group_commits,
                "wal_max_batch_records": max_batch,
                "violations": len(report.violations),
                "clean_shutdown": report.clean_shutdown,
            }
            failed |= not report.passed
    results["workload"] = (
        f"open loop, 16 sessions x {rate_ops_s:g} ops/s offered"
    )
    if results["off"]["throughput_ops_s"]:
        results["always_vs_off_ratio"] = round(
            results["always"]["throughput_ops_s"]
            / results["off"]["throughput_ops_s"], 3
        )
    return results, failed


def bench_live_pipelined_batched(duration_s: float,
                                 rate_ops_s: float = 300.0
                                 ) -> tuple[dict, bool]:
    """PR 6's live gate: the pipelined leg with replication batching on.

    Same shape and offered load as ``live_pipelined`` but with the
    protocol-level batcher enabled (batch=64, 5 ms flush): one
    ``ReplicateBatch`` per flush instead of one ``Replicate`` per write.
    Reported as a ratio over the committed BENCH_pr5 ``live_pipelined``
    number — batching must not cost live throughput; the checker and a
    clean shutdown gate the leg as usual, and the report's visibility
    percentiles show what the amortization costs in update freshness.
    """
    from repro.common.config import ReplicationBatchConfig
    from repro.runtime.cluster import run_live_experiment

    config = _pipelined_config(
        duration_s, rate_ops_s, "perf-live-pipelined-batched",
        repl_batch=ReplicationBatchConfig(enabled=True, max_versions=64,
                                          max_bytes=256 * 1024,
                                          flush_ms=5.0),
    )
    report = run_live_experiment(config)
    sessions = (config.workload.clients_per_partition
                * config.cluster.num_partitions * config.cluster.num_dcs)
    stats = {
        "protocol": report.protocol,
        "arrival": report.arrival,
        "sessions": sessions,
        "offered_rate_ops_s": rate_ops_s * sessions,
        "repl_batch": {"max_versions": 64, "flush_ms": 5.0},
        "duration_s": round(report.duration_s, 3),
        "total_ops": report.total_ops,
        "throughput_ops_s": round(report.throughput_ops_s, 1),
        "latency": _latency_percentiles(report),
        "visibility": report.visibility,
        "dropped_arrivals": report.dropped_arrivals,
        "frames_delivered": report.messages_delivered,
        "violations": len(report.violations),
        "clean_shutdown": report.clean_shutdown,
        "serializer": report.serializer,
        "event_loop": report.event_loop,
        "baseline_pr5_live": PR5_LIVE_BASELINE,
        "vs_pr5_live_ratio": round(
            report.throughput_ops_s / PR5_LIVE_BASELINE["throughput_ops_s"],
            2),
    }
    return stats, not report.passed


def _scaling_config(duration_s: float, rate_ops_s: float, name: str):
    """The PR-6 batched pipelined shape at a deliberately over-offered
    rate: the scaling leg wants the backend saturated at every process
    count, so added driver processes show up as throughput, not as the
    generator catching up to its own cap."""
    from repro.common.config import ReplicationBatchConfig

    return _pipelined_config(
        duration_s, rate_ops_s, name,
        repl_batch=ReplicationBatchConfig(enabled=True, max_versions=64,
                                          max_bytes=256 * 1024,
                                          flush_ms=5.0),
    )


def _wait_for_supervised_listening(log_dir: Path, labels: list[str],
                                   timeout_s: float = 30.0) -> None:
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        ready = sum(
            1 for label in labels
            if (log_dir / f"{label}.log").exists()
            and "listening on" in (log_dir / f"{label}.log").read_text(
                errors="replace")
        )
        if ready == len(labels):
            return
        time.sleep(0.1)
    raise RuntimeError(f"supervised servers {labels} never reported "
                       f"listening (logs in {log_dir})")


def _report_leg(report) -> dict:
    return {
        "total_ops": report.total_ops,
        "throughput_ops_s": round(report.throughput_ops_s, 1),
        "duration_s": round(report.duration_s, 3),
        "dropped_arrivals": report.dropped_arrivals,
        "violations": len(report.violations),
        "clean_shutdown": report.clean_shutdown,
        "event_loop": report.event_loop,
        "cpu_affinity": report.cpu_affinity,
    }


def bench_scaling_multiproc(duration_s: float, process_counts: tuple,
                            rate_ops_s: float = 900.0,
                            base_port: int = 7950) -> tuple[dict, bool]:
    """PR 8's tentpole leg: live ops/s vs load-generator process count.

    The 1-process point is the PR-6 batched pipelined shape run entirely
    in-process (servers + drivers in one interpreter) — directly
    comparable with the same run's ``live_pipelined_batched`` leg and
    with the committed BENCH_pr5 baseline.  Every multi-process point
    boots the *same* deployment as a ``repro-supervise`` tree (one
    ``repro-serve`` process per partition server) and drives it with N
    sharded load-worker processes (``repro.runtime.loadgen``), so both
    sides of the socket scale past one core.  The speedup over the
    1-process point is reported honestly: ``null`` with a note on hosts
    where ``os.cpu_count()`` cannot support a win.
    """
    import signal
    import subprocess
    import tempfile

    from repro.runtime.cluster import run_live_experiment
    from repro.runtime.loadgen import run_sharded_load
    from repro.runtime.supervisor import subprocess_env

    results: dict = {
        "workload": (f"open loop, 16 sessions x {rate_ops_s:g} ops/s "
                     f"offered, repl batching on (the PR-6 batched "
                     f"pipelined shape, over-offered to keep the backend "
                     f"saturated at every process count)"),
        "process_counts": list(process_counts),
        "legs": {},
    }
    failed = False
    ops_by_count: dict[int, float] = {}
    for index, processes in enumerate(process_counts):
        port = base_port + 40 * index  # fresh range per point
        config = _scaling_config(duration_s, rate_ops_s,
                                 f"perf-scaling-p{processes}")
        if processes == 1:
            report = run_live_experiment(config)
            leg = _report_leg(report)
            leg["deployment"] = "single process (servers + drivers)"
            failed |= not report.passed
        else:
            log_dir = Path(tempfile.mkdtemp(prefix="perf-scaling-sup-"))
            config_path = log_dir / "cluster.json"
            from repro.runtime.configfile import save_experiment_config
            save_experiment_config(config, str(config_path))
            supervisor = subprocess.Popen(
                [sys.executable, "-m", "repro.runtime.supervisor",
                 "--config", str(config_path),
                 "--base-port", str(port),
                 "--log-dir", str(log_dir)],
                env=subprocess_env(),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            try:
                labels = [f"dc{dc}-p{part}"
                          for dc in range(config.cluster.num_dcs)
                          for part in range(config.cluster.num_partitions)]
                _wait_for_supervised_listening(log_dir, labels)
                sharded = run_sharded_load(
                    config, base_port=port, processes=processes,
                    external_servers=True,
                )
                report = sharded.report
                supervisor.send_signal(signal.SIGTERM)
                supervisor_exit = supervisor.wait(timeout=30)
            finally:
                if supervisor.poll() is None:
                    supervisor.kill()
                    supervisor.wait()
            leg = _report_leg(report)
            leg["deployment"] = (
                f"{len(labels)} supervised server processes + "
                f"{sharded.driver_processes} driver processes"
            )
            leg["supervisor_exit"] = supervisor_exit
            failed |= not report.passed or supervisor_exit != 0
        ops_by_count[processes] = leg["throughput_ops_s"]
        results["legs"][str(processes)] = leg

    cores = os.cpu_count() or 1
    results["cpu_count"] = cores
    baseline_ops = ops_by_count.get(1)
    best = max(ops_by_count.values())
    results["best_throughput_ops_s"] = best
    results["baseline_pr5_live"] = PR5_LIVE_BASELINE
    results["best_vs_pr5_live_ratio"] = round(
        best / PR5_LIVE_BASELINE["throughput_ops_s"], 2)
    if cores < 2:
        results["speedup"] = None
        results["speedup_note"] = (
            "single-core host: extra processes time-slice one core, so a "
            "speedup is impossible by construction; the leg ran as a "
            "correctness canary (checker + clean shutdown per point). "
            "The >= 3x-vs-PR5 acceptance bar applies on >= 4 cores."
        )
    else:
        max_count = max(process_counts)
        results["speedup"] = (
            round(ops_by_count[max_count] / baseline_ops, 2)
            if baseline_ops else None
        )
        if cores >= 4 and results["best_vs_pr5_live_ratio"] < 3.0:
            print(f"[perf] FAIL: multi-process scaling peaked at "
                  f"{results['best_vs_pr5_live_ratio']}x of the PR-5 "
                  f"baseline on a {cores}-core host (need >= 3x)",
                  file=sys.stderr)
            failed = True
    return results, failed


def _repl_batching_config(protocol: str, repl_batch, duration_s: float):
    from repro.common.config import (
        ClockConfig, ClusterConfig, ExperimentConfig, WorkloadConfig,
    )

    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=40, protocol=protocol,
                              clocks=ClockConfig(max_offset_us=200),
                              repl_batch=repl_batch),
        workload=WorkloadConfig(kind="get_put", gets_per_put=1,
                                clients_per_partition=4,
                                think_time_s=0.0),
        warmup_s=0.2,
        duration_s=duration_s,
        seed=17,
        verify=True,
        name=f"perf-repl-batch-{protocol}",
    )


def bench_repl_batching(duration_s: float, protocols: tuple,
                        batch_sizes: tuple,
                        require_reduction: bool) -> tuple[dict, bool]:
    """PR 6's sim leg: inter-DC replicate traffic vs batch size.

    For each protocol, one batching-off baseline plus one run per batch
    size (write-heavy 1:1 get:put, zero think time — replication is the
    dominant WAN traffic), recording ops/s, inter-DC replicate
    *messages* per op (a batch of 64 counts once — the amortization
    being measured), and the update-visibility percentiles that pay for
    it.  Every run is checker-gated; with ``require_reduction`` the
    largest batch size must cut replicate messages at least 8x vs the
    baseline (the PR-6 acceptance bar).
    """
    from repro.common.config import ReplicationBatchConfig
    from repro.harness.builders import build_cluster
    from repro.harness.experiment import run_experiment

    def one_run(protocol: str, repl_batch) -> dict:
        config = _repl_batching_config(protocol, repl_batch, duration_s)
        built = build_cluster(config)
        result = run_experiment(config, built=built)
        by_type = built.network.stats.inter_dc_by_type
        replicate_msgs = (by_type.get("Replicate", 0)
                          + by_type.get("ReplicateBatch", 0))
        ops = max(result.total_ops, 1)
        return {
            "throughput_ops_s": round(result.throughput_ops_s, 1),
            "total_ops": result.total_ops,
            "inter_dc_replicate_msgs": replicate_msgs,
            "replicate_msgs_per_op": round(replicate_msgs / ops, 4),
            "inter_dc_messages": built.network.stats.inter_dc_messages(),
            "inter_dc_bytes": built.network.stats.inter_dc_bytes(),
            "visibility_p50_ms": round(
                result.visibility_lag["p50"] * 1000, 2),
            "visibility_p99_ms": round(
                result.visibility_lag["p99"] * 1000, 2),
            "violations": result.verification["violations"],
        }

    results: dict = {
        "workload": "get_put 1:1, 24 sessions, zero think time",
        "batch_sizes": list(batch_sizes),
    }
    failed = False
    for protocol in protocols:
        legs: dict = {"off": one_run(protocol, ReplicationBatchConfig())}
        failed |= legs["off"]["violations"] > 0
        for batch in batch_sizes:
            leg = one_run(protocol, ReplicationBatchConfig(
                enabled=True, max_versions=batch, max_bytes=1 << 20,
                flush_ms=20.0,
            ))
            legs[f"batch_{batch}"] = leg
            failed |= leg["violations"] > 0
        largest = legs[f"batch_{max(batch_sizes)}"]
        if largest["inter_dc_replicate_msgs"]:
            reduction = (legs["off"]["inter_dc_replicate_msgs"]
                         / largest["inter_dc_replicate_msgs"])
            legs["replicate_msg_reduction_at_max_batch"] = round(reduction, 1)
            if require_reduction and reduction < 8.0:
                print(f"[perf] FAIL: {protocol} batch={max(batch_sizes)} "
                      f"cut replicate messages only {reduction:.1f}x "
                      f"(need >= 8x)", file=sys.stderr)
                failed = True
        results[protocol] = legs
    return results, failed


def _lossy_config(protocol: str, anti_entropy: bool, duration_s: float):
    from repro.common.config import (
        AntiEntropyConfig, ClockConfig, ClusterConfig, ExperimentConfig,
        WorkloadConfig,
    )

    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=40, protocol=protocol,
                              clocks=ClockConfig(max_offset_us=200),
                              anti_entropy=AntiEntropyConfig(
                                  enabled=anti_entropy)),
        workload=WorkloadConfig(kind="get_put", gets_per_put=1,
                                clients_per_partition=4,
                                think_time_s=0.0),
        warmup_s=0.2,
        duration_s=duration_s,
        seed=29,
        verify=True,
        name=f"perf-lossy-ae-{'on' if anti_entropy else 'off'}",
    )


def bench_lossy_anti_entropy(duration_s: float,
                             loss_rate: float = 0.01) -> tuple[dict, bool]:
    """PR 7's chaos leg: 1% replication loss, anti-entropy off vs on.

    Both arms run the identical seed and loss schedule (replication
    traffic only, dropped from warmup through 70% of the measured window
    so the drain can repair the tail), recording throughput, update
    visibility, drops and the backfill's digest/repair counters.  The
    off arm is the control — it shows what the fault costs when nothing
    repairs it (divergent replicas are *expected* there and reported,
    not gated).  The on arm is the gate: anti-entropy must restore
    convergence and checker-cleanliness at no material throughput cost,
    and the repair counters must show the convergence was earned.
    """
    from repro.harness.builders import build_cluster
    from repro.harness.experiment import run_experiment

    def one_arm(anti_entropy: bool) -> dict:
        config = _lossy_config("pocc", anti_entropy, duration_s)
        built = build_cluster(config)
        loss_window = config.warmup_s + duration_s * 0.7
        for src in range(config.cluster.num_dcs):
            for dst in range(config.cluster.num_dcs):
                if src != dst:
                    built.faults.schedule_loss(
                        0.05, src, dst, loss_rate,
                        kinds=("Replicate", "ReplicateBatch"),
                        stop_after=loss_window)
        result = run_experiment(config, built=built)
        return {
            "throughput_ops_s": round(result.throughput_ops_s, 1),
            "total_ops": result.total_ops,
            "messages_dropped": built.network.stats.messages_dropped,
            "ae_digests_sent": sum(s.ae_digests_sent
                                   for s in built.servers.values()),
            "ae_repairs_applied": sum(s.ae_repairs_applied
                                      for s in built.servers.values()),
            "visibility_p50_ms": round(
                result.visibility_lag["p50"] * 1000, 2),
            "visibility_p99_ms": round(
                result.visibility_lag["p99"] * 1000, 2),
            "divergences": result.divergences,
            "violations": result.verification["violations"],
        }

    off = one_arm(anti_entropy=False)
    on = one_arm(anti_entropy=True)
    results = {
        "workload": "get_put 1:1, 24 sessions, zero think time",
        "loss": f"{loss_rate:.0%} of Replicate/ReplicateBatch on all "
                f"inter-DC links, stopped before the drain",
        "ae_off": off,
        "ae_on": on,
    }
    if off["throughput_ops_s"]:
        results["ae_on_vs_off_throughput_ratio"] = round(
            on["throughput_ops_s"] / off["throughput_ops_s"], 3)
    failed = False
    if on["violations"] or on["divergences"]:
        print(f"[perf] FAIL: lossy leg with anti-entropy on: "
              f"{on['violations']} violations, "
              f"{on['divergences']} divergent keys", file=sys.stderr)
        failed = True
    if on["messages_dropped"] == 0 or on["ae_repairs_applied"] == 0:
        print("[perf] FAIL: lossy leg was vacuous (no drops or no "
              "repairs) — the fault or the backfill never fired",
              file=sys.stderr)
        failed = True
    return results, failed


def bench_resharding(duration_s: float) -> tuple[dict, bool]:
    """PR 10's membership leg: the cost of an online view change.

    Two sim arms over the same seed and shape (2 DCs x 4-slot address
    space, epoch 0 = {0,1,2}, mixed traffic with RO-TXs): a control
    that never reshards, and an arm where partition 3 joins the
    consistent-hash ring mid-window — propose, chunked causal-safe
    handoff, drain, commit — while clients keep operating.  Records the
    keys/bytes moved, the change's wall time, the NotOwner redirect
    count, and the throughput ratio vs the control (the price clients
    pay for a reshard they did not ask for).  Gated on zero checker
    violations and zero divergent keys in *both* arms, the controller
    reaching ``done``, and non-vacuity (keys actually moved, redirects
    actually happened).
    """
    from repro.cluster.reshard import start_sim_reshard
    from repro.common.config import (
        ClusterConfig, ExperimentConfig, MembershipConfig, WorkloadConfig,
    )
    from repro.harness.builders import build_cluster
    from repro.harness.experiment import run_experiment

    def reshard_config(name: str) -> ExperimentConfig:
        return ExperimentConfig(
            cluster=ClusterConfig(
                num_dcs=2, num_partitions=4, keys_per_partition=50,
                protocol="pocc",
                membership=MembershipConfig(
                    enabled=True, initial_members=(0, 1, 2),
                    gossip_interval_s=0.3, handoff_chunk_versions=16,
                    commit_delay_s=0.1, retry_interval_s=0.2,
                ),
            ),
            workload=WorkloadConfig(kind="mixed", read_ratio=0.7,
                                    tx_ratio=0.15, tx_partitions=2,
                                    clients_per_partition=2,
                                    think_time_s=0.005),
            warmup_s=0.2,
            duration_s=duration_s,
            seed=7117,
            verify=True,
            name=name,
        )

    def arm_stats(result) -> dict:
        return {
            "throughput_ops_s": round(result.throughput_ops_s, 1),
            "total_ops": result.total_ops,
            # The tail is where parked ops and NotOwner retries land.
            "latency_p99_ms": {
                op: round(stats["p99"] * 1000, 2)
                for op, stats in sorted(result.op_stats.items())
            },
            "violations": result.verification["violations"],
            "divergences": result.divergences,
        }

    control = run_experiment(reshard_config("perf-reshard-control"))

    config = reshard_config("perf-reshard-join")
    built = build_cluster(config)
    done: list = []
    controller = start_sim_reshard(built, (0, 1, 2, 3),
                                   at_s=min(1.0, duration_s / 2),
                                   on_done=done.append)
    result = run_experiment(config, built=built)

    redirects = sum(s.not_owner_redirects for s in built.servers.values())
    results: dict = {
        "workload": "mixed 70/15, 16 sessions, 5ms think, pocc, sim",
        "shape": "2 DCs x 4 slots, epoch 0 = {0,1,2}, partition 3 joins",
        "control": arm_stats(control),
        "reshard": arm_stats(result),
        "controller_phase": controller.phase,
        "not_owner_redirects": redirects,
    }
    if done:
        reshard = done[0]
        results["view_epoch"] = reshard.epoch
        results["keys_moved"] = reshard.keys_moved
        results["bytes_moved"] = reshard.bytes_moved
        results["reshard_wall_s"] = round(reshard.duration_s, 3)
        results["driver_retries"] = reshard.retries
    if results["control"]["throughput_ops_s"]:
        results["reshard_vs_control_throughput_ratio"] = round(
            results["reshard"]["throughput_ops_s"]
            / results["control"]["throughput_ops_s"], 3)

    failed = False
    for arm_name in ("control", "reshard"):
        arm = results[arm_name]
        if arm["violations"] or arm["divergences"]:
            print(f"[perf] FAIL: resharding leg ({arm_name} arm): "
                  f"{arm['violations']} violations, "
                  f"{arm['divergences']} divergent keys", file=sys.stderr)
            failed = True
    if controller.phase != "done" or not done:
        print("[perf] FAIL: resharding leg: the view change never "
              "completed", file=sys.stderr)
        failed = True
    elif done[0].keys_moved == 0 or redirects == 0:
        print("[perf] FAIL: resharding leg was vacuous (no keys moved "
              "or no NotOwner redirects) — the reshard never bit",
              file=sys.stderr)
        failed = True
    return results, failed


def bench_observability_overhead(duration_s: float,
                                 gate: bool,
                                 rate_ops_s: float = 300.0
                                 ) -> tuple[dict, bool]:
    """PR 9's telemetry leg: the live pipelined shape with observability
    off, on-and-actively-scraped, and on-with-causal-tracing.

    Three arms over the identical seed and offered load.  The off arm is
    the control and must equal an un-instrumented engine (the byte-
    identity pin covers the sim; this covers live throughput).  The
    scraped arm serves /metrics on its own event loop and is polled
    throughout the window — the realistic steady state under Prometheus.
    The traced arm additionally writes sampled lifecycle spans to JSONL.
    The full run gates the on/off throughput ratio at >= 0.97 (a smoke
    run on a shared CI core records the ratio without gating — sub-3%
    effects are below runner noise there).
    """
    import asyncio
    import dataclasses
    import shutil
    import tempfile

    from repro.common.config import TelemetryConfig
    from repro.runtime.cluster import LiveCluster, run_live_experiment

    def arm_config(name: str, telemetry: TelemetryConfig):
        config = _pipelined_config(duration_s, rate_ops_s, name)
        return dataclasses.replace(
            config,
            cluster=dataclasses.replace(config.cluster,
                                        telemetry=telemetry),
        )

    def leg(report, extra=None) -> dict:
        out = {
            "throughput_ops_s": round(report.throughput_ops_s, 1),
            "total_ops": report.total_ops,
            "p99_ms": round(
                report.latency.get("all", {}).get("p99", 0.0) * 1000, 2),
            "violations": len(report.violations),
            "clean_shutdown": report.clean_shutdown,
        }
        out.update(extra or {})
        return out

    async def run_scraped(config):
        """cluster.run() with a poller hammering /metrics throughout."""
        cluster = LiveCluster(config)
        run_task = asyncio.ensure_future(cluster.run())
        scrapes = 0
        while not run_task.done():
            await asyncio.sleep(0.1)
            port = cluster.metrics_port
            if port is None or cluster.metrics_server is None:
                continue
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
                await writer.drain()
                body = await reader.read(-1)
                writer.close()
                if b"repro_client_ops_total" in body:
                    scrapes += 1
            except OSError:
                pass
        return await run_task, scrapes

    # One discarded run first: the process-wide cold start (codec
    # compilation, socket dials, allocator growth) must not be billed
    # to whichever arm happens to run first.
    run_live_experiment(
        dataclasses.replace(arm_config("perf-obs-warmup",
                                       TelemetryConfig()),
                            duration_s=min(duration_s, 0.6)))
    off_report = run_live_experiment(arm_config("perf-obs-off",
                                                TelemetryConfig()))
    on_config = arm_config("perf-obs-scraped",
                           TelemetryConfig(enabled=True))
    on_report, scrapes = asyncio.run(run_scraped(on_config))
    trace_dir = tempfile.mkdtemp(prefix="perf-obs-trace-")
    try:
        traced_config = arm_config(
            "perf-obs-traced",
            TelemetryConfig(enabled=True, trace=True, trace_dir=trace_dir,
                            trace_sample_every=8))
        traced_report = run_live_experiment(traced_config)
        spans = 0
        for name in os.listdir(trace_dir):
            with open(os.path.join(trace_dir, name), encoding="utf-8") as f:
                spans += sum(1 for line in f if line.strip())
    finally:
        shutil.rmtree(trace_dir, ignore_errors=True)

    results = {
        "workload": "pipelined open loop, 16 sessions x "
                    f"{rate_ops_s:.0f} ops/s offered, same seed per arm",
        "off": leg(off_report),
        "on_scraped": leg(on_report, {"scrapes": scrapes}),
        "on_traced": leg(traced_report, {"spans_written": spans,
                                         "trace_sample_every": 8}),
    }
    on_ratio = traced_ratio = None
    if off_report.throughput_ops_s:
        on_ratio = round(on_report.throughput_ops_s
                         / off_report.throughput_ops_s, 3)
        traced_ratio = round(traced_report.throughput_ops_s
                             / off_report.throughput_ops_s, 3)
        results["on_vs_off_throughput_ratio"] = on_ratio
        results["traced_vs_off_throughput_ratio"] = traced_ratio
    failed = False
    for arm_name, report in (("off", off_report), ("scraped", on_report),
                             ("traced", traced_report)):
        if not report.passed:
            print(f"[perf] FAIL: observability leg ({arm_name} arm) "
                  f"violated the checker or shut down uncleanly",
                  file=sys.stderr)
            failed = True
    if scrapes == 0 or spans == 0:
        print("[perf] FAIL: observability leg was vacuous (no successful "
              "scrape or no trace spans) — the instrumentation never "
              "fired", file=sys.stderr)
        failed = True
    if gate and on_ratio is not None and on_ratio < 0.97:
        print(f"[perf] FAIL: telemetry-on throughput at {on_ratio}x of "
              f"off (need >= 0.97x)", file=sys.stderr)
        failed = True
    return results, failed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="shrunken workloads for the <60s CI budget")
    parser.add_argument("--pr", type=int, default=None,
                        help="PR number stamped into the snapshot "
                             "(default: next after the newest "
                             "BENCH_pr<N>.json on disk, so a bare run "
                             "appends a new trajectory point; pass --pr "
                             "explicitly to refresh an existing one)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output JSON path (default: BENCH_pr<N>.json "
                             "next to the repo root)")
    parser.add_argument("--parallelism", type=int, default=None,
                        help="workers for the parallel legs "
                             "(default: all cores, floor 2)")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    if args.pr is None:
        committed = sorted(
            int(path.stem.removeprefix("BENCH_pr"))
            for path in repo_root.glob("BENCH_pr*.json")
            if path.stem.removeprefix("BENCH_pr").isdigit()
        )
        args.pr = committed[-1] + 1 if committed else 3
    out_path = (Path(args.out) if args.out
                else repo_root / f"BENCH_pr{args.pr}.json")

    # Even on a 1-core box exercise a real pool, so CI catches deadlocks.
    workers = (args.parallelism if args.parallelism is not None
               else max(2, resolve_parallelism(None)))

    if args.smoke:
        chained_events, net_rounds, chain_rounds = 100_000, 2_000, 20
        sweep_scale, num_seeds = "smoke", 4
    else:
        chained_events, net_rounds, chain_rounds = 200_000, 5_000, 50
        sweep_scale, num_seeds = "bench", 8

    t0 = time.perf_counter()
    print(f"[perf] engine micro-bench ({chained_events} chained events)...",
          file=sys.stderr)
    engine = bench_event_engine(chained_events)
    print("[perf] network send/deliver micro-bench...", file=sys.stderr)
    network = bench_network(net_rounds)
    print("[perf] storage chain-read micro-bench...", file=sys.stderr)
    chains = bench_chain_reads(chain_rounds)
    print("[perf] frame-decoder batched-chunk micro-bench...",
          file=sys.stderr)
    frame_decoder = frame_decoder_speedup()
    print("[perf] full reference experiment...", file=sys.stderr)
    experiment = bench_full_experiment()
    print(f"[perf] figure-1a sweep, serial vs parallelism={workers}...",
          file=sys.stderr)
    sweep, sweep_diverged = bench_figure_sweep(sweep_scale, workers)
    print(f"[perf] run_replicates({num_seeds} seeds), serial vs "
          f"parallelism={workers}...", file=sys.stderr)
    replicates, repl_diverged = bench_replicates(num_seeds, workers)
    live_duration = 1.5 if args.smoke else 4.0
    print(f"[perf] live asyncio TCP cluster ({live_duration}s window)...",
          file=sys.stderr)
    live, live_failed = bench_live_cluster(live_duration)
    print(f"[perf] pipelined open-loop live cluster ({live_duration}s "
          f"window)...", file=sys.stderr)
    pipelined, pipelined_failed = bench_live_pipelined(live_duration)
    fsync_duration = 1.2 if args.smoke else 3.0
    print(f"[perf] WAL fsync-mode overhead (off/interval/always, "
          f"open loop, {fsync_duration}s each)...", file=sys.stderr)
    fsync_modes, fsync_failed = bench_fsync_modes(fsync_duration)
    if args.smoke:
        batch_protocols: tuple = ("pocc", "okapi")
        batch_sizes: tuple = (64,)
        batch_duration, require_reduction = 0.5, False
    else:
        batch_protocols = ("pocc", "cure", "okapi")
        batch_sizes = (1, 8, 64, 256)
        batch_duration, require_reduction = 2.0, True
    print(f"[perf] replication batching sweep (batch in "
          f"{list(batch_sizes)}, {batch_duration}s each, protocols "
          f"{list(batch_protocols)})...", file=sys.stderr)
    repl_batching, batching_failed = bench_repl_batching(
        batch_duration, batch_protocols, batch_sizes, require_reduction)
    print(f"[perf] pipelined live cluster with batching on "
          f"({live_duration}s window)...", file=sys.stderr)
    pipelined_batched, pipelined_batched_failed = (
        bench_live_pipelined_batched(live_duration))
    lossy_duration = 0.8 if args.smoke else 2.0
    print(f"[perf] lossy-link anti-entropy leg (1% replication loss, "
          f"AE off vs on, {lossy_duration}s each)...", file=sys.stderr)
    lossy_ae, lossy_failed = bench_lossy_anti_entropy(lossy_duration)
    obs_duration = 1.0 if args.smoke else 2.5
    print(f"[perf] observability overhead leg (off / scraped / traced, "
          f"{obs_duration}s each)...", file=sys.stderr)
    observability, obs_failed = bench_observability_overhead(
        obs_duration, gate=not args.smoke)
    reshard_duration = 2.5 if args.smoke else 4.0
    print(f"[perf] online resharding leg (control vs mid-run join, "
          f"{reshard_duration}s each)...", file=sys.stderr)
    resharding, reshard_failed = bench_resharding(reshard_duration)
    if args.smoke:
        scaling_counts: tuple = (1, 2)
        scaling_duration = 1.2
    else:
        scaling_counts = (1, 2, 4)
        scaling_duration = 3.0
    print(f"[perf] multi-process scaling leg (driver processes "
          f"{list(scaling_counts)}, {scaling_duration}s each)...",
          file=sys.stderr)
    scaling, scaling_failed = bench_scaling_multiproc(scaling_duration,
                                                      scaling_counts)
    if (pipelined_batched.get("throughput_ops_s")
            and scaling["legs"].get("1", {}).get("throughput_ops_s")):
        # Same-run, same-machine: the 1-process scaling point must not
        # regress against the PR-6 batched shape it is built from (both
        # saturate the same backend).  The scaling point runs at 3x the
        # batched leg's offered rate, and managing that much deeper
        # open-loop backlog legitimately costs ~10-25% on a saturated
        # core — the 0.65 bar catches real decode/transport regressions,
        # not the over-offer tax.
        ratio = round(
            scaling["legs"]["1"]["throughput_ops_s"]
            / pipelined_batched["throughput_ops_s"], 2)
        scaling["p1_vs_live_pipelined_batched_same_run_ratio"] = ratio
        scaling["p1_ratio_note"] = (
            "the scaling point is offered 3x the batched leg's rate; the "
            "gap is deep-backlog management, not a protocol regression"
        )
        if ratio < 0.65:
            print(f"[perf] FAIL: the 1-process scaling point ran at "
                  f"{ratio}x of the same run's batched pipelined leg "
                  f"(need >= 0.65x)", file=sys.stderr)
            scaling_failed = True

    import importlib.util

    from repro.runtime import codec

    baseline = PRE_CHANGE_BASELINE
    engine_ratio = engine["events_per_s"] / baseline["engine_events_per_s"]
    snapshot = {
        "pr": args.pr,
        "mode": "smoke" if args.smoke else "full",
        "machine": {
            "cpu_count": os.cpu_count(),
            "cpu_affinity": (sorted(os.sched_getaffinity(0))
                             if hasattr(os, "sched_getaffinity") else []),
            "python": sys.version.split()[0],
            "platform": sys.platform,
            # What --event-loop auto resolves to on this host; the live
            # legs additionally record the loop that actually ran.
            "event_loop": ("uvloop"
                           if importlib.util.find_spec("uvloop")
                           else "asyncio"),
        },
        "serializer": codec.SERIALIZER,
        "engine": engine,
        "network": network,
        "storage_chain_reads": chains,
        "codec_frame_decoder": frame_decoder,
        "full_experiment": experiment,
        "figure_1a_sweep": sweep,
        "replicates": replicates,
        "live_cluster": live,
        "live_pipelined": pipelined,
        "persistence_fsync_modes": fsync_modes,
        "repl_batching": repl_batching,
        "lossy_anti_entropy": lossy_ae,
        "observability_overhead": observability,
        "resharding": resharding,
        "live_pipelined_batched": {
            **pipelined_batched,
            # Same-run, same-machine comparison: the committed PR-5
            # baseline moves with container weather, this ratio does not.
            "vs_live_pipelined_same_run_ratio": round(
                pipelined_batched["throughput_ops_s"]
                / pipelined["throughput_ops_s"], 2)
            if pipelined.get("throughput_ops_s") else None,
        },
        "scaling_multiproc": scaling,
        "baseline_pre_change": baseline,
        "engine_vs_pre_change_ratio": round(engine_ratio, 3),
        "total_wall_s": round(time.perf_counter() - t0, 2),
    }
    out_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"[perf] wrote {out_path} ({snapshot['total_wall_s']}s total)",
          file=sys.stderr)
    print(json.dumps(snapshot, indent=2, sort_keys=True))

    if sweep_diverged or repl_diverged:
        print("[perf] FAIL: parallel results diverged from serial",
              file=sys.stderr)
        return 1
    if live_failed:
        print("[perf] FAIL: live cluster run violated the checker or "
              "shut down uncleanly", file=sys.stderr)
        return 1
    if pipelined_failed:
        print("[perf] FAIL: pipelined live run violated the checker or "
              "shut down uncleanly", file=sys.stderr)
        return 1
    if fsync_failed:
        print("[perf] FAIL: a persistent (WAL) live run violated the "
              "checker or shut down uncleanly", file=sys.stderr)
        return 1
    if batching_failed:
        print("[perf] FAIL: a replication-batching sim run violated the "
              "checker or missed the message-reduction bar", file=sys.stderr)
        return 1
    if pipelined_batched_failed:
        print("[perf] FAIL: the batched pipelined live run violated the "
              "checker or shut down uncleanly", file=sys.stderr)
        return 1
    if lossy_failed:
        print("[perf] FAIL: the lossy-link anti-entropy leg missed its "
              "gate (see above)", file=sys.stderr)
        return 1
    if obs_failed:
        print("[perf] FAIL: the observability-overhead leg missed its "
              "gate (checker, vacuity, or the >= 0.97 on/off throughput "
              "bar — see above)", file=sys.stderr)
        return 1
    if reshard_failed:
        print("[perf] FAIL: the online resharding leg missed its gate "
              "(checker, divergence, completion, or vacuity — see above)",
              file=sys.stderr)
        return 1
    if scaling_failed:
        print("[perf] FAIL: the multi-process scaling leg missed a gate "
              "(checker, clean shutdown, supervisor exit, or the scaling "
              "bar — see above)", file=sys.stderr)
        return 1
    if frame_decoder["speedup"] < 2.0:
        # Warning only here: the hard >= 2x gate is the pytest benchmark
        # (tests always run it); trajectory runs on contended runners
        # should not flake the whole snapshot on one noisy timing.
        print(f"[perf] WARNING: frame-decoder batched-chunk speedup at "
              f"{frame_decoder['speedup']}x (pytest gate requires >= 2x "
              f"on a quiet machine)", file=sys.stderr)
    if engine_ratio < 0.85:
        # Warning only, never a failure: hosted-runner hardware varies
        # run to run, so absolute throughput is comparable just within a
        # machine class.  Check the ratio by hand when the snapshot was
        # recorded on the baseline machine class.
        print(f"[perf] WARNING: engine micro-bench at "
              f"{engine_ratio:.2f}x of the recorded pre-change baseline "
              f"({baseline['machine']})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
