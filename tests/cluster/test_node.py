"""Tests for the SimNode base: CPU-mediated dispatch and local tasks."""

import pytest

from repro.common.types import server_address
from repro.cluster.node import SimNode
from repro.clocks.physical import PhysicalClock
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network


class EchoNode(SimNode):
    """Charges 1 ms per message, logs (time, msg)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.handled = []

    def service_time(self, msg):
        return 0.001

    def dispatch(self, msg):
        self.handled.append((self.sim.now, msg))


def _pair(cores=2):
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.010))
    a = EchoNode(sim, network, server_address(0, 0),
                 PhysicalClock(sim), cores=cores)
    b = EchoNode(sim, network, server_address(1, 0),
                 PhysicalClock(sim), cores=cores)
    return sim, a, b


def test_message_charged_cpu_before_dispatch():
    sim, a, b = _pair()
    a.send(b.address, "hello")
    sim.run()
    assert b.handled == [(0.011, "hello")]  # 10ms wire + 1ms CPU
    assert b.messages_received == 1


def test_messages_queue_behind_busy_cores():
    sim, a, b = _pair(cores=1)
    for i in range(3):
        a.send(b.address, i)
    sim.run()
    times = [t for t, _ in b.handled]
    assert times == pytest.approx([0.011, 0.012, 0.013])


def test_submit_local_charges_cpu():
    sim, a, _ = _pair()
    done = []
    a.submit_local(0.005, done.append, "task")
    sim.run()
    assert done == ["task"]
    assert a.cpu.jobs_completed == 1


def test_submit_local_zero_cost_runs_inline():
    sim, a, _ = _pair()
    done = []
    a.submit_local(0.0, done.append, "now")
    assert done == ["now"]


def test_zero_service_time_dispatches_inline():
    class FreeNode(EchoNode):
        def service_time(self, msg):
            return 0.0

    sim = Simulator()
    network = Network(sim, ConstantLatency(0.010))
    node = FreeNode(sim, network, server_address(2, 0), PhysicalClock(sim))
    sender = EchoNode(sim, network, server_address(0, 1),
                      PhysicalClock(sim))
    sender.send(node.address, "x")
    sim.run()
    assert node.handled == [(0.010, "x")]
