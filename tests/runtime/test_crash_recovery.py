"""Crash/restart acceptance: the durability subsystem end to end.

Two layers:

* in-process restart tests — boot a persistent live cluster, run a
  workload, shut down (cleanly or with the flush skipped), boot a second
  cluster from the same data dir and verify the recovered state;
* the kill/restart chaos test — one partition server runs as a real OS
  subprocess, is SIGKILLed mid-workload, restarts from its WAL, and the
  run must end with zero causal violations, zero lost acknowledged
  writes, post-restart progress and a clean SIGTERM exit (the CI
  ``crash-smoke`` gate).
"""

import pytest

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    PersistenceConfig,
    WorkloadConfig,
)
from repro.common.types import server_address
from repro.persistence.manager import partition_dirname, recover_directory
from repro.runtime.chaos import CrashFault, run_crash_experiment
from repro.runtime.cluster import run_live_experiment


def _config(tmp_path, protocol="pocc", duration_s=1.0, fsync="always",
            snapshot_interval_s=0.4, seed=23) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=2, num_partitions=2,
                              keys_per_partition=40, protocol=protocol),
        workload=WorkloadConfig(kind="mixed", read_ratio=0.8, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.008),
        warmup_s=0.2,
        duration_s=duration_s,
        seed=seed,
        verify=True,
        name=f"crash-recovery-{protocol}",
        persistence=PersistenceConfig(
            enabled=True, data_dir=str(tmp_path), fsync=fsync,
            snapshot_interval_s=snapshot_interval_s,
        ),
    )


# ----------------------------------------------------------------------
# In-process restart
# ----------------------------------------------------------------------
def test_persistent_run_then_restart_recovers_every_acked_write(tmp_path):
    config = _config(tmp_path)
    first = run_live_experiment(config)
    assert first.passed, first.errors
    assert any(stats["wal_records_appended"] > 0
               for stats in first.persistence.values())

    second = run_live_experiment(config)
    assert second.passed, second.errors
    # Every partition came back with state, and the second run's checker
    # saw a causally consistent world built on the recovered chains.
    assert all(stats["recovered_versions"] > 0
               for stats in second.persistence.values())
    assert second.violations == []


def test_restart_preserves_acked_writes_on_disk(tmp_path):
    """Direct disk check: every version the WAL acked in run one is
    present (or dominated) in what a recovery pass reads back."""
    config = _config(tmp_path)
    report = run_live_experiment(config)
    assert report.passed, report.errors
    for dc in range(2):
        for partition in range(2):
            directory = tmp_path / partition_dirname(
                server_address(dc, partition)
            )
            state = recover_directory(directory, truncate=False,
                                      delete_covered=False)
            assert state.had_state
            # Preloaded keys plus whatever the workload wrote.
            assert len(state.versions) >= 40
            assert state.torn_bytes_truncated == 0  # clean shutdown


def test_snapshot_truncates_the_log(tmp_path):
    """With aggressive snapshotting the WAL must not keep every segment
    ever written: old segments are covered and deleted."""
    from repro.persistence.wal import list_segments
    config = _config(tmp_path, duration_s=1.5, snapshot_interval_s=0.3)
    report = run_live_experiment(config)
    assert report.passed, report.errors
    for stats in report.persistence.values():
        assert stats["snapshots_written"] >= 2
    for dc in range(2):
        for partition in range(2):
            directory = tmp_path / partition_dirname(
                server_address(dc, partition)
            )
            # Everything before the newest snapshot's segment is gone.
            segments = list_segments(directory)
            assert len(segments) <= 2


def test_flush_failure_is_reported_not_swallowed(tmp_path):
    """The graceful-shutdown satellite: a failing WAL flush must fail the
    run (serve exits non-zero on the same signal)."""
    from repro.runtime.cluster import LiveCluster

    config = _config(tmp_path, duration_s=0.4, snapshot_interval_s=0)
    cluster = LiveCluster(config)

    class Exploding:
        def flush(self):
            raise OSError("disk on fire")

    cluster.durability = {server_address(0, 0): Exploding()}
    assert cluster.flush_persistence() is False
    assert any("WAL flush failed" in error for error in cluster.hub.errors)


def test_group_commit_live_run_recovers_every_acked_write(tmp_path):
    """Group-commit end to end on the live path: an open-loop run under
    ``fsync: always`` batches same-tick appends into shared syncs (the
    WAL stats prove batches really formed), and a second boot from the
    same data dir recovers a state the checker accepts."""
    config = _config(tmp_path)
    config = ExperimentConfig(
        cluster=config.cluster,
        workload=WorkloadConfig(kind="mixed", read_ratio=0.7, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.0, arrival="open",
                                rate_ops_s=150.0),
        warmup_s=0.2, duration_s=1.0, seed=23, verify=True,
        name="crash-recovery-groupcommit", persistence=config.persistence,
    )
    first = run_live_experiment(config)
    assert first.passed, first.errors
    appended = sum(s["wal_records_appended"]
                   for s in first.persistence.values())
    commits = sum(s["wal_group_commits"] for s in first.persistence.values())
    assert appended > 0 and commits > 0
    # Amortization actually happened: fewer batches than records, and at
    # least one batch carried more than one record.
    assert commits <= appended
    assert any(s["wal_max_batch_records"] > 1
               for s in first.persistence.values()), (
        "open-loop load never co-scheduled two appends in one tick?"
    )

    second = run_live_experiment(config)
    assert second.passed, second.errors
    assert all(s["recovered_versions"] > 0
               for s in second.persistence.values())


# ----------------------------------------------------------------------
# The kill/restart chaos gate
# ----------------------------------------------------------------------
def test_sigkill_restart_loses_nothing_and_stays_causal(tmp_path):
    """The acceptance criterion: SIGKILL a partition server mid-workload,
    restart it from its data dir, and require (a) zero checker
    violations, (b) zero acknowledged-write loss, (c) post-restart
    progress, (d) a clean graceful shutdown afterwards."""
    config = _config(tmp_path, duration_s=5.0, seed=11,
                     snapshot_interval_s=1.0)
    config = ExperimentConfig(
        cluster=config.cluster,
        workload=WorkloadConfig(kind="mixed", read_ratio=0.8, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.01),
        warmup_s=0.5, duration_s=5.0, seed=11, verify=True,
        name="crash-chaos", persistence=config.persistence,
    )
    report = run_crash_experiment(
        config,
        CrashFault(dc=0, partition=0, kill_after_s=1.5, downtime_s=1.5),
        base_port=7643,
    )
    assert report.live.violations == [], report.summary_text()
    assert report.lost_victim_writes == [], report.summary_text()
    assert report.acked_victim_writes > 0, report.summary_text()
    assert report.ops_after_restart > 0, report.summary_text()
    assert report.server_exit_code == 0, report.summary_text()
    assert report.passed
    # The victim really did restart from disk, not from scratch.
    assert report.recovered_versions >= 40  # preload at minimum


def test_crash_experiment_rejects_misconfiguration(tmp_path):
    from repro.common.errors import ReproError

    config = _config(tmp_path)
    no_verify = ExperimentConfig(
        cluster=config.cluster, workload=config.workload,
        warmup_s=0.1, duration_s=1.0, seed=1, verify=False,
        persistence=config.persistence,
    )
    with pytest.raises(ReproError):
        run_crash_experiment(no_verify, CrashFault(), base_port=7700)

    no_persistence = ExperimentConfig(
        cluster=config.cluster, workload=config.workload,
        warmup_s=0.1, duration_s=1.0, seed=1, verify=True,
    )
    with pytest.raises(ReproError):
        run_crash_experiment(no_persistence, CrashFault(), base_port=7700)
