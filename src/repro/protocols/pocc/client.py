"""The POCC client is exactly Algorithm 1, which the shared
:class:`repro.protocols.base.CausalClient` already implements — the paper
uses identical client metadata for POCC and Cure* so the comparison is
fair.  The subclass exists to give the protocol registry a concrete type
and a place for POCC-specific extensions (the HA client builds on it).
"""

from __future__ import annotations

from repro.protocols.base import CausalClient


class PoccClient(CausalClient):
    """Client running against POCC servers (Algorithm 1)."""
