"""Ablation — update visibility latency across the protocol spectrum.

Section I: existing protocols "delay the visibility of new versions of
data items, increasing the staleness of the data returned to clients",
while OCC makes a remote update visible the moment it is received.  This
bench measures the creation-to-visibility lag of replicated updates:

* POCC — one WAN delivery (the floor);
* COPS* — delivery + an intra-DC dependency-check round trip;
* Cure* — delivery + the GSS stabilization lag;
* GentleRain* — gated by the *slowest* incoming WAN link + GST lag;
* Okapi* — gated by delivery to *every* DC plus a WAN gossip round for
  the universal stable time (the worst of the spectrum, by design).
"""

from pathlib import Path

from repro.common.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.harness.experiment import run_experiment

RESULTS_DIR = Path(__file__).parent / "results"

SPECTRUM = ("pocc", "cops", "cure", "gentlerain", "okapi")


def _config(protocol: str) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=4,
                              keys_per_partition=200, protocol=protocol),
        workload=WorkloadConfig(kind="get_put", gets_per_put=4,
                                clients_per_partition=4,
                                think_time_s=0.010),
        warmup_s=0.4,
        duration_s=1.6,
        name=f"visibility-{protocol}",
    )


def test_ablation_visibility_latency(benchmark):
    results = {}

    def run() -> None:
        for protocol in SPECTRUM:
            results[protocol] = run_experiment(_config(protocol))

    benchmark.pedantic(run, rounds=1, iterations=1)

    lags = {p: results[p].visibility_lag for p in SPECTRUM}
    for protocol, lag in lags.items():
        assert lag["count"] > 0, protocol

    # The ordering the paper's freshness argument predicts.
    assert lags["pocc"]["mean"] < lags["cops"]["mean"]
    assert lags["cops"]["mean"] < lags["cure"]["mean"]
    assert lags["cure"]["mean"] < lags["gentlerain"]["mean"]
    assert lags["gentlerain"]["mean"] < lags["okapi"]["mean"]

    # POCC's visibility is bounded by WAN delivery alone: the mean sits
    # between the fastest (36 ms) and slowest (70 ms) one-way delays.
    assert 0.030 < lags["pocc"]["mean"] < 0.080

    # GentleRain's scalar horizon is gated by the slowest incoming link,
    # so even its *median* exceeds POCC's mean.
    assert lags["gentlerain"]["p50"] > lags["pocc"]["mean"]

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [f"{'protocol':<12} {'mean(ms)':>9} {'p50(ms)':>9} "
             f"{'p95(ms)':>9} {'p99(ms)':>9}"]
    for protocol in SPECTRUM:
        lag = lags[protocol]
        lines.append(
            f"{protocol:<12} {lag['mean'] * 1e3:>9.2f} "
            f"{lag['p50'] * 1e3:>9.2f} {lag['p95'] * 1e3:>9.2f} "
            f"{lag['p99'] * 1e3:>9.2f}"
        )
    (RESULTS_DIR / "ablation_visibility.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
