"""Tests for the two-class priority CPU scheduler."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator
from repro.cluster.cpu import BACKGROUND, FOREGROUND, CpuScheduler


def test_foreground_preempts_queued_background():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    order = []
    cpu.submit(1.0, order.append, "running")          # occupies the core
    cpu.submit(1.0, order.append, "bg", priority=BACKGROUND)
    cpu.submit(1.0, order.append, "fg", priority=FOREGROUND)
    sim.run()
    assert order == ["running", "fg", "bg"]


def test_background_runs_when_no_foreground_waits():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    order = []
    cpu.submit(1.0, order.append, "running")
    cpu.submit(1.0, order.append, "bg", priority=BACKGROUND)
    sim.run()
    assert order == ["running", "bg"]


def test_background_class_is_fifo_internally():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    order = []
    cpu.submit(1.0, order.append, "running")
    for i in range(3):
        cpu.submit(0.5, order.append, f"bg{i}", priority=BACKGROUND)
    sim.run()
    assert order == ["running", "bg0", "bg1", "bg2"]


def test_started_background_job_is_not_preempted():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    done = []
    cpu.submit(2.0, lambda: done.append(("bg", sim.now)),
               priority=BACKGROUND)
    sim.schedule(0.5, cpu.submit, 1.0,
                 lambda: done.append(("fg", sim.now)))
    sim.run()
    # The background job started at t=0 and runs to completion at t=2.
    assert done == [("bg", 2.0), ("fg", 3.0)]


def test_sustained_foreground_starves_background():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    done = []
    cpu.submit(0.5, lambda: done.append("busy"))  # occupies the core
    # Two background jobs enqueued first, then a burst of foreground work.
    cpu.submit(0.5, lambda: done.append("bg1"), priority=BACKGROUND)
    cpu.submit(0.5, lambda: done.append("bg2"), priority=BACKGROUND)
    for i in range(10):
        cpu.submit(0.5, lambda i=i: done.append(f"fg{i}"))
    sim.run()
    # Every queued foreground job ran before either background job.
    assert done[-2:] == ["bg1", "bg2"]
    assert done[1:11] == [f"fg{i}" for i in range(10)]


def test_background_queue_length_metric():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    cpu.submit(1.0, lambda: None)
    cpu.submit(1.0, lambda: None, priority=BACKGROUND)
    cpu.submit(1.0, lambda: None, priority=BACKGROUND)
    assert cpu.background_queue_length == 2
    assert cpu.queue_length == 2
    sim.run()
    assert cpu.background_queue_length == 0


def test_unknown_priority_rejected():
    cpu = CpuScheduler(Simulator(), cores=1)
    with pytest.raises(SimulationError):
        cpu.submit(1.0, lambda: None, priority=7)


def test_protocol_servers_classify_replication_as_background():
    import helpers
    from repro.protocols import messages as m
    from repro.storage.version import Version
    from repro.cluster.cpu import BACKGROUND as BG, FOREGROUND as FG

    built = helpers.make_cluster(protocol="pocc")
    server = built.servers[built.topology.server(0, 0)]
    replicate = m.Replicate(version=Version(key="k", value=1, sr=1, ut=5,
                                            dv=(0, 0, 0)))
    heartbeat = m.Heartbeat(ts=1, src_dc=1)
    get = m.GetReq(key="k", rdv=[0, 0, 0],
                   client=built.clients[0].address, op_id=1)
    slice_req = m.SliceReq(keys=("k",), tv=[0, 0, 0],
                           coordinator=server.address, tx_id=1)
    assert server.message_priority(replicate) == BG
    assert server.message_priority(heartbeat) == BG
    assert server.message_priority(get) == FG
    assert server.message_priority(slice_req) == FG
