"""Figure 3a — throughput vs partitions contacted per RO-TX.

Paper claim: comparable for small transactions; POCC pulls ahead (up to
~15%) as transactions touch most partitions, because it is more resource
efficient (no stabilization, no stable-version chain searches)."""

from benchmarks.common import relative_gap, run_figure


def test_fig3a_tx_scalability(benchmark):
    data = run_figure(benchmark, "3a")
    pocc = data.ys("POCC")
    cure = data.ys("Cure*")

    # Throughput falls as transactions widen (more work per op) for both
    # (only checkable when the scale preset sweeps more than one width).
    if len(pocc) > 1:
        assert pocc[-1] < pocc[0]
        assert cure[-1] < cure[0]

    # The systems stay comparable at every transaction width.  (The
    # paper's POCC lead at the widest transactions comes from Cure*'s
    # stabilization + chain-scan costs, which grow with the partition
    # count; at reduced bench scale POCC may trail there instead — see
    # EXPERIMENTS.md — so the gap bound is the defensible invariant.)
    for p, c in zip(pocc, cure):
        assert relative_gap(p, c) < 0.40, (p, c)

    # At small-to-medium transactions the two systems are head to head.
    for p, c in zip(pocc[:3], cure[:3]):
        assert p >= c * 0.80, (p, c)
