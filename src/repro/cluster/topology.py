"""Deployment topology and deterministic key placement.

Keys are deterministically assigned to a single partition by a hash function
(Section II-C).  We use crc32 — stable across processes and Python versions,
unlike the builtin ``hash`` — so any component can locate a key's partition
independently.
"""

from __future__ import annotations

import zlib
from typing import Iterator

from repro.common.errors import ConfigError
from repro.common.types import (
    Address,
    PartitionId,
    ReplicaId,
    client_address,
    server_address,
)


def key_partition(key: str, num_partitions: int) -> PartitionId:
    """The partition a key hashes to."""
    return zlib.crc32(key.encode("utf-8")) % num_partitions


class Topology:
    """The M-DC x N-partition shape of one deployment.

    ``num_partitions`` is the *address space*: every partition in it has
    addresses, ports and (on the live backend) a server process.  With
    elastic membership an optional :class:`repro.cluster.ring.ClusterView`
    narrows *key ownership* to the view's members via the consistent-hash
    ring; partitions outside the view are booted but own no keys until a
    view change adds them.  ``view=None`` (the default) keeps the seed's
    ``crc32 % num_partitions`` placement byte-for-byte.
    """

    def __init__(self, num_dcs: int, num_partitions: int, view=None):
        if num_dcs < 1 or num_partitions < 1:
            raise ConfigError("topology needs >= 1 DC and >= 1 partition")
        self.num_dcs = num_dcs
        self.num_partitions = num_partitions
        if view is not None:
            for partition in view.members:
                if not 0 <= partition < num_partitions:
                    raise ConfigError(
                        f"view member {partition} outside the partition "
                        f"address space [0, {num_partitions})"
                    )
        self.view = view

    # -- addressing -----------------------------------------------------
    def server(self, dc: ReplicaId, partition: PartitionId) -> Address:
        self._check(dc, partition)
        return server_address(dc, partition)

    def client(
        self, dc: ReplicaId, partition: PartitionId, index: int
    ) -> Address:
        self._check(dc, partition)
        return client_address(dc, partition, index)

    def all_servers(self) -> Iterator[Address]:
        for dc in range(self.num_dcs):
            for partition in range(self.num_partitions):
                yield server_address(dc, partition)

    def dc_servers(self, dc: ReplicaId) -> Iterator[Address]:
        """All servers within one data center."""
        for partition in range(self.num_partitions):
            yield server_address(dc, partition)

    def replicas_of(
        self, partition: PartitionId, except_dc: ReplicaId | None = None
    ) -> Iterator[Address]:
        """The servers replicating ``partition``, optionally skipping a DC."""
        for dc in range(self.num_dcs):
            if dc == except_dc:
                continue
            yield server_address(dc, partition)

    # -- key placement ---------------------------------------------------
    def partition_of(self, key: str) -> PartitionId:
        if self.view is not None:
            return self.view.owner_of(key)
        return key_partition(key, self.num_partitions)

    def members(self) -> tuple[PartitionId, ...]:
        """Partitions currently owning keys (all of them without a view)."""
        if self.view is not None:
            return self.view.members
        return tuple(range(self.num_partitions))

    def _check(self, dc: ReplicaId, partition: PartitionId) -> None:
        if not 0 <= dc < self.num_dcs:
            raise ConfigError(f"dc {dc} out of range [0, {self.num_dcs})")
        if not 0 <= partition < self.num_partitions:
            raise ConfigError(
                f"partition {partition} out of range [0, {self.num_partitions})"
            )


class KeyPools:
    """Per-partition key pools consistent with the hash placement.

    The workload picks a partition first and then a key *within* that
    partition (Section V-B), so we pre-generate, for each partition, a pool
    of ``keys_per_partition`` key strings that actually hash there.  Pool
    position doubles as the key's zipf rank.
    """

    def __init__(self, topology: Topology, keys_per_partition: int):
        if keys_per_partition < 1:
            raise ConfigError("keys_per_partition must be >= 1")
        self.topology = topology
        self.keys_per_partition = keys_per_partition
        self._pools: list[list[str]] = [
            [] for _ in range(topology.num_partitions)
        ]
        self._fill()

    def _fill(self) -> None:
        # Keys land where ``partition_of`` puts them — the modulo hash
        # without a view (byte-identical to the pre-membership fill), the
        # consistent-hash ring with one.  Only member partitions can fill,
        # so only they count toward termination.
        remaining = len(self.topology.members())
        capacity = self.keys_per_partition
        pools = self._pools
        partition_of = self.topology.partition_of
        candidate = 0
        while remaining > 0:
            key = f"k{candidate:08d}"
            candidate += 1
            pool = pools[partition_of(key)]
            if len(pool) < capacity:
                pool.append(key)
                if len(pool) == capacity:
                    remaining -= 1

    def pool(self, partition: PartitionId) -> list[str]:
        """The keys of one partition, in zipf-rank order."""
        return self._pools[partition]

    def key(self, partition: PartitionId, rank: int) -> str:
        """The ``rank``-th most popular key of a partition."""
        return self._pools[partition][rank]

    def all_keys(self) -> Iterator[str]:
        for pool in self._pools:
            yield from pool

    @property
    def total_keys(self) -> int:
        return len(self.topology.members()) * self.keys_per_partition
