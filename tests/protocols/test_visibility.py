"""Update-visibility latency: when does a remote update become readable?

The metric quantifies Section I's freshness argument: POCC makes a remote
update visible the instant it is received (lag ≈ one WAN delay), while the
pessimistic protocols add their stabilization horizon on top (GSS for
Cure*, GST for GentleRain*).
"""

from __future__ import annotations

import pytest

from repro.common.config import DEFAULT_GEO_LATENCY_S, LatencyConfig
from repro.metrics.collectors import MetricsRegistry
from tests.helpers import client_at, key_on_partition, make_cluster, put, settle

#: The fastest and slowest one-way WAN delays in the default geo matrix.
_MIN_WAN_S = min(
    value for row in DEFAULT_GEO_LATENCY_S for value in row if value > 0
)
_MAX_WAN_S = max(value for row in DEFAULT_GEO_LATENCY_S for value in row)

#: Per-DC stability horizon: the slowest link *into* each remote DC, which
#: bounds when that DC's GST/GSS can pass a new timestamp from any source.
_MAX_INCOMING_S = {
    dst: max(
        DEFAULT_GEO_LATENCY_S[src][dst]
        for src in range(len(DEFAULT_GEO_LATENCY_S))
        if src != dst
    )
    for dst in range(len(DEFAULT_GEO_LATENCY_S))
}


def _run_single_put(protocol: str):
    """One PUT in DC0, fully settled; returns the armed metrics registry.

    Jitter is disabled so the WAN-delay bounds below are deterministic.
    """
    built = make_cluster(
        protocol=protocol,
        zero_skew=True,
        cluster_overrides={"latency": LatencyConfig(jitter_ratio=0.0)},
    )
    built.metrics.arm(built.sim.now)
    writer = client_at(built, dc=0)
    key = key_on_partition(built, partition=0)
    put(built, writer, key, "fresh")
    settle(built, seconds=2.0)
    return built


def test_pocc_visibility_is_one_wan_delay():
    built = _run_single_put("pocc")
    lag = built.metrics.visibility_lag
    # The key's partition is replicated at the 2 remote DCs: 2 samples.
    assert lag.count == 2
    assert lag.min_seen >= _MIN_WAN_S
    # Optimistic visibility adds nothing beyond delivery (+ small CPU).
    assert lag.max_seen <= _MAX_WAN_S + 0.005


def test_cure_visibility_adds_stabilization_lag():
    pocc = _run_single_put("pocc")
    cure = _run_single_put("cure")
    lag = cure.metrics.visibility_lag
    assert lag.count == 2
    # Stable-visibility cannot beat receipt-visibility, and must pay at
    # least part of a stabilization round on top of the WAN delivery.
    assert lag.mean > pocc.metrics.visibility_lag.mean
    assert lag.max_seen > _MAX_WAN_S


def test_gentlerain_visibility_at_least_slowest_incoming_link():
    built = _run_single_put("gentlerain")
    lag = built.metrics.visibility_lag
    assert lag.count == 2
    # The scalar GST of a DC is held back by the slowest link *into* it,
    # so even the nearest replica cannot expose the update earlier than
    # its worst incoming one-way delay.
    nearest_horizon = min(
        bound for dst, bound in _MAX_INCOMING_S.items() if dst != 0
    )
    assert lag.min_seen >= nearest_horizon


def test_cure_pending_queue_drains():
    built = _run_single_put("cure")
    for server in built.servers.values():
        assert server._pending_visibility == []


def test_gentlerain_pending_queue_drains():
    built = _run_single_put("gentlerain")
    for server in built.servers.values():
        assert server._pending_visibility == []


def test_visibility_not_recorded_for_local_writes():
    built = make_cluster(protocol="pocc", zero_skew=True)
    built.metrics.arm(built.sim.now)
    writer = client_at(built, dc=0)
    key = key_on_partition(built, partition=0)
    put(built, writer, key, "v")
    # Before any settling the write exists only at its source replica.
    local = built.topology.server(0, 0)
    assert built.servers[local].store.freshest(key).value == "v"
    assert built.metrics.visibility_lag.count == 0


def test_negative_lag_clamps_to_zero():
    metrics = MetricsRegistry()
    metrics.arm(0.0)
    metrics.record_visibility_lag(-0.5)
    assert metrics.visibility_lag.count == 1
    assert metrics.visibility_lag.max_seen == 0.0


def test_disarmed_registry_records_nothing():
    metrics = MetricsRegistry()
    metrics.record_visibility_lag(0.1)
    assert metrics.visibility_lag.count == 0


@pytest.mark.parametrize("protocol", ["pocc", "cure", "gentlerain"])
def test_visibility_summary_in_experiment_result(protocol):
    from repro.common.config import ExperimentConfig
    from repro.harness.experiment import run_experiment
    from tests.helpers import make_cluster as _mk

    built = _mk(protocol=protocol, clients_per_partition=2)
    config = built.config
    result = run_experiment(
        ExperimentConfig(
            cluster=config.cluster,
            workload=config.workload,
            warmup_s=0.2,
            duration_s=1.0,
            seed=3,
        )
    )
    assert result.visibility_lag["count"] > 0
    assert result.visibility_lag["mean"] > 0.0
