"""Heap compaction under heavy cancellation (lazy-deletion bloat).

A workload that keeps re-arming far-future timers — heartbeat idle resets,
request timeouts — cancels far more events than it fires.  With pure lazy
deletion those entries sit in the heap until their (distant) pop time, so
the heap grows with the cancellation rate instead of the live event count.
The simulator must compact once cancelled entries exceed the threshold
(> COMPACT_FLOOR entries and > half the heap) and keep an accurate
``cancelled_pending`` counter throughout.
"""

from repro.sim.engine import COMPACT_FLOOR, Simulator


def _noop() -> None:
    pass


def test_cancelled_pending_counts_cancellations():
    sim = Simulator()
    handles = [sim.schedule(10.0 + i, _noop) for i in range(10)]
    assert sim.cancelled_pending == 0
    for handle in handles[:4]:
        assert handle.cancel()
    assert sim.cancelled_pending == 4
    # Double-cancel and cancel-after-fire must not inflate the counter.
    assert not handles[0].cancel()
    assert sim.cancelled_pending == 4


def test_counter_drains_as_cancelled_entries_are_popped():
    sim = Simulator()
    handles = [sim.schedule(0.001 * (i + 1), _noop) for i in range(20)]
    for handle in handles[::2]:
        handle.cancel()
    assert sim.cancelled_pending == 10
    sim.run()
    assert sim.cancelled_pending == 0
    assert sim.events_executed == 10


def test_peek_next_time_drains_counter():
    sim = Simulator()
    first = sim.schedule(1.0, _noop)
    sim.schedule(2.0, _noop)
    first.cancel()
    assert sim.cancelled_pending == 1
    assert sim.peek_next_time() == 2.0
    assert sim.cancelled_pending == 0


def test_cancel_heavy_heartbeat_workload_compacts_heap():
    """The regression scenario: every 'write' re-arms a far-future idle
    timer, cancelling the previous one.  The heap must stay proportional
    to the live timer count, not the cancellation count."""
    sim = Simulator()
    cancellations = 4 * COMPACT_FLOOR
    pending = None
    for i in range(cancellations):
        if pending is not None:
            assert pending.cancel()
        # Far-future heartbeat deadline: would never be popped organically.
        pending = sim.schedule(1_000.0 + i * 1e-6, _noop)
    # Lazy deletion alone would leave ~cancellations entries in the heap.
    assert sim.pending_events < COMPACT_FLOOR + 64
    assert sim.cancelled_pending < COMPACT_FLOOR + 1
    assert sim.compactions >= 1
    # The one live timer still fires.
    sim.run()
    assert sim.events_executed == 1


def test_compaction_preserves_event_order_and_results():
    """Interleave live and cancelled timers past the threshold and check
    the surviving events still fire in exact (time, seq) order."""
    sim = Simulator()
    fired: list[int] = []
    live_count = 257
    doomed = []
    for i in range(live_count):
        sim.schedule(1.0 + 0.001 * i, fired.append, i)
        for _ in range(16):
            doomed.append(sim.schedule(500.0 + i, _noop))
    for handle in doomed:
        handle.cancel()
    sim.run()
    assert fired == list(range(live_count))
    assert sim.cancelled_pending == 0


def test_manual_compact_reports_removed_entries():
    sim = Simulator()
    handles = [sim.schedule(10.0, _noop) for _ in range(8)]
    for handle in handles[:5]:
        handle.cancel()
    assert sim.compact() == 5
    assert sim.pending_events == 3
    assert sim.cancelled_pending == 0
