"""The Okapi* client: two scalars of session metadata, like GentleRain*.

* ``dt`` — dependency time: the newest hybrid-clock timestamp in the
  session's causal past (reads and writes, any origin);
* ``ust_seen`` — the newest stability bound observed in any reply
  (``max(server UST, version rdep)``), which covers the *remote* causal
  past of everything the session has read — including transitively,
  through fresh local versions whose own ``rdep`` rides the reply.

Metadata cost is O(1) in the number of DCs; the wire mapping
(``GetReq.rdv == [dt, ust_seen]`` etc.) makes the byte accounting reflect
that automatically.
"""

from __future__ import annotations

from typing import Any

from repro.common.types import Micros, OpType
from repro.protocols import messages as m
from repro.protocols.base import CausalClient


class OkapiClient(CausalClient):
    """Client carrying ``[dt, ust_seen]`` on every operation."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.dt: Micros = 0
        self.ust_seen: Micros = 0

    def read_dependency_vector(self) -> list[Micros]:
        return [self.dt, self.ust_seen]

    def get(self, key: str, callback) -> None:
        op_id = self._register(OpType.GET, callback)
        self.send(self._server_for(key),
                  m.GetReq(key=key, rdv=[self.dt, self.ust_seen],
                           client=self.address, op_id=op_id))

    def put(self, key: str, value: Any, callback) -> None:
        op_id = self._register(OpType.PUT, callback)
        self.send(self._server_for(key),
                  m.PutReq(key=key, value=value,
                           dv=[self.dt, self.ust_seen],
                           client=self.address, op_id=op_id))

    def ro_tx(self, keys, callback) -> None:
        op_id = self._register(OpType.RO_TX, callback)
        coordinator = self.topology.server(self.m, self.address.partition)
        self.send(coordinator,
                  m.RoTxReq(keys=tuple(keys),
                            rdv=[self.dt, self.ust_seen],
                            client=self.address, op_id=op_id))

    def absorb_read(self, reply: m.GetReply) -> None:
        if reply.ut > self.dt:
            self.dt = reply.ut
        if reply.dv and reply.dv[0] > self.ust_seen:
            self.ust_seen = reply.dv[0]

    def _complete_put(self, reply: m.PutReply) -> None:
        op_type, started, callback = self._pending.pop(reply.op_id)
        if reply.ut > self.dt:
            self.dt = reply.ut
        self._finish(op_type, started)
        callback(reply)

    def reset_session(self) -> None:
        self.dt = 0
        self.ust_seen = 0
        self.session_resets += 1
