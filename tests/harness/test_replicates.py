"""Multi-seed replication: aggregation math and plumbing."""

import math

import pytest

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.common.errors import ConfigError
from repro.harness.replicates import (
    AggregateStat,
    run_replicates,
)


def _config(seed=100):
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=30, protocol="pocc"),
        workload=WorkloadConfig(clients_per_partition=2,
                                think_time_s=0.005, gets_per_put=3),
        warmup_s=0.1,
        duration_s=0.5,
        seed=seed,
        name="replicate-smoke",
    )


# ----------------------------------------------------------------------
# AggregateStat math
# ----------------------------------------------------------------------

def test_mean_and_std():
    stat = AggregateStat(name="x", values=(2.0, 4.0, 6.0))
    assert stat.mean == pytest.approx(4.0)
    assert stat.std == pytest.approx(2.0)
    assert stat.minimum == 2.0
    assert stat.maximum == 6.0


def test_ci95_matches_t_distribution():
    values = (10.0, 12.0, 14.0, 16.0)
    stat = AggregateStat(name="x", values=values)
    from scipy import stats as scipy_stats

    expected = (scipy_stats.t.ppf(0.975, 3) * stat.std / math.sqrt(4))
    assert stat.ci95_half_width == pytest.approx(expected)


def test_single_value_has_zero_spread():
    stat = AggregateStat(name="x", values=(5.0,))
    assert stat.std == 0.0
    assert stat.ci95_half_width == 0.0
    assert stat.mean == 5.0


def test_identical_values_zero_ci():
    stat = AggregateStat(name="x", values=(3.0, 3.0, 3.0))
    assert stat.std == 0.0
    assert stat.ci95_half_width == 0.0


# ----------------------------------------------------------------------
# run_replicates plumbing
# ----------------------------------------------------------------------

def test_runs_one_experiment_per_seed():
    agg = run_replicates(_config(), num_seeds=3)
    assert agg.seeds == (100, 101, 102)
    assert len(agg.results) == 3
    assert agg.stat("throughput_ops_s").n == 3
    assert agg.mean("throughput_ops_s") > 0


def test_explicit_seeds_win():
    agg = run_replicates(_config(), seeds=(7, 9))
    assert agg.seeds == (7, 9)


def test_same_seed_twice_gives_identical_values():
    agg = run_replicates(_config(), seeds=(42, 42))
    stat = agg.stat("throughput_ops_s")
    assert stat.values[0] == stat.values[1]
    assert stat.std == 0.0


def test_different_seeds_vary():
    agg = run_replicates(_config(), num_seeds=3)
    assert len(set(agg.stat("throughput_ops_s").values)) > 1


def test_custom_metrics_replace_defaults():
    agg = run_replicates(
        _config(), num_seeds=2,
        metrics={"total_ops": lambda r: float(r.total_ops)},
    )
    assert set(agg.stats) == {"total_ops"}
    with pytest.raises(ConfigError, match="throughput"):
        agg.stat("throughput_ops_s")


def test_summary_table_mentions_metrics_and_seeds():
    agg = run_replicates(_config(), num_seeds=2)
    table = agg.summary_table()
    assert "replicate-smoke" in table
    assert "throughput_ops_s" in table
    assert "100" in table


def test_invalid_arguments():
    with pytest.raises(ConfigError):
        run_replicates(_config(), num_seeds=0)
    with pytest.raises(ConfigError):
        run_replicates(_config(), seeds=())
