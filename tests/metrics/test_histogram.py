"""Tests (incl. property-based) for the log-bucket histogram."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.histogram import LogHistogram


def test_empty_histogram():
    hist = LogHistogram()
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.percentile(50) == 0.0
    assert hist.summary()["count"] == 0


def test_mean_min_max():
    hist = LogHistogram()
    for value in (0.001, 0.002, 0.003):
        hist.record(value)
    assert hist.mean == pytest.approx(0.002)
    assert hist.min_seen == 0.001
    assert hist.max_seen == 0.003


def test_negative_rejected():
    with pytest.raises(ValueError):
        LogHistogram().record(-1.0)


def test_bad_parameters_rejected():
    with pytest.raises(ValueError):
        LogHistogram(min_value=0)
    with pytest.raises(ValueError):
        LogHistogram(growth=1.0)


def test_percentile_bounds_checked():
    hist = LogHistogram()
    hist.record(1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        hist.percentile(-1)


def test_percentile_monotone_in_p():
    hist = LogHistogram()
    for i in range(1, 1001):
        hist.record(i / 1000.0)
    values = [hist.percentile(p) for p in (10, 50, 90, 99, 100)]
    assert values == sorted(values)


def test_percentile_relative_accuracy():
    """Geometric buckets promise ~7% relative error."""
    hist = LogHistogram()
    for i in range(1, 10001):
        hist.record(i / 1000.0)  # uniform on (0, 10]
    for p in (25, 50, 75, 95):
        exact = 10.0 * p / 100.0
        approx = hist.percentile(p)
        assert abs(approx - exact) / exact < 0.08


def test_p100_equals_max():
    hist = LogHistogram()
    for value in (0.5, 3.0, 7.7):
        hist.record(value)
    assert hist.percentile(100) == 7.7


def test_values_below_min_clamp():
    hist = LogHistogram(min_value=1e-6)
    hist.record(1e-12)
    assert hist.count == 1
    assert hist.percentile(100) == 1e-12


def test_zero_recordable():
    hist = LogHistogram()
    hist.record(0.0)
    assert hist.count == 1


def test_merge_combines():
    a, b = LogHistogram(), LogHistogram()
    for value in (0.001, 0.002):
        a.record(value)
    for value in (0.004, 0.008):
        b.record(value)
    a.merge(b)
    assert a.count == 4
    assert a.max_seen == 0.008
    assert a.mean == pytest.approx((0.001 + 0.002 + 0.004 + 0.008) / 4)


def test_merge_rejects_incompatible_buckets():
    with pytest.raises(ValueError):
        LogHistogram().merge(LogHistogram(growth=1.5))


@given(st.lists(st.floats(min_value=1e-9, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=200))
def test_summary_invariants(values):
    hist = LogHistogram()
    hist.record_many(values)
    summary = hist.summary()
    assert summary["count"] == len(values)
    assert summary["mean"] == pytest.approx(sum(values) / len(values))
    assert summary["p50"] <= summary["p95"] <= summary["p99"] + 1e-12
    assert summary["max"] == max(values)


@given(st.lists(st.floats(min_value=1e-6, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=100),
       st.lists(st.floats(min_value=1e-6, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=100))
def test_merge_equivalent_to_recording_all(xs, ys):
    merged = LogHistogram()
    merged.record_many(xs)
    other = LogHistogram()
    other.record_many(ys)
    merged.merge(other)

    combined = LogHistogram()
    combined.record_many(xs + ys)
    assert merged.count == combined.count
    assert merged.percentile(50) == combined.percentile(50)
    assert merged.percentile(99) == combined.percentile(99)
