"""Pytest configuration shared by the whole suite."""

import sys
from pathlib import Path

# Make `import helpers` work from any test module regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))
