"""Tests for the generator-based process layer."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Environment, Gate


def _env():
    sim = Simulator()
    return sim, Environment(sim)


def test_timeout_advances_time():
    sim, env = _env()
    log = []

    def proc():
        yield env.timeout(1.0)
        log.append(env.now)
        yield env.timeout(2.0)
        log.append(env.now)

    env.process(proc())
    sim.run()
    assert log == [1.0, 3.0]


def test_timeout_passes_value():
    sim, env = _env()
    seen = []

    def proc():
        value = yield env.timeout(1.0, value="payload")
        seen.append(value)

    env.process(proc())
    sim.run()
    assert seen == ["payload"]


def test_gate_bridges_callbacks():
    sim, env = _env()
    gate = env.gate()
    seen = []

    def proc():
        value = yield gate
        seen.append((env.now, value))

    env.process(proc())
    sim.schedule(2.5, gate.trigger, "done")
    sim.run()
    assert seen == [(2.5, "done")]


def test_gate_triggered_before_wait_still_wakes():
    sim, env = _env()
    gate = env.gate()
    gate.trigger("early")
    seen = []

    def proc():
        value = yield gate
        seen.append(value)

    env.process(proc())
    sim.run()
    assert seen == ["early"]


def test_gate_double_trigger_keeps_first_value():
    sim, env = _env()
    gate = env.gate()
    gate.trigger("first")
    gate.trigger("second")
    assert gate.value == "first"


def test_process_waits_on_process():
    sim, env = _env()
    log = []

    def child():
        yield env.timeout(1.0)
        return "child-result"

    def parent():
        result = yield env.process(child())
        log.append((env.now, result))

    env.process(parent())
    sim.run()
    assert log == [(1.0, "child-result")]


def test_all_of_waits_for_every_child():
    sim, env = _env()
    log = []

    def proc():
        values = yield env.all_of([
            env.timeout(1.0, value="a"),
            env.timeout(3.0, value="b"),
            env.timeout(2.0, value="c"),
        ])
        log.append((env.now, values))

    env.process(proc())
    sim.run()
    assert log == [(3.0, ["a", "b", "c"])]


def test_all_of_empty_fires_immediately():
    sim, env = _env()
    log = []

    def proc():
        values = yield env.all_of([])
        log.append(values)

    env.process(proc())
    sim.run()
    assert log == [[]]


def test_any_of_fires_on_first():
    sim, env = _env()
    log = []

    def proc():
        index, value = yield env.any_of([
            env.timeout(5.0, value="slow"),
            env.timeout(1.0, value="fast"),
        ])
        log.append((env.now, index, value))

    env.process(proc())
    sim.run()
    assert log == [(1.0, 1, "fast")]


def test_any_of_requires_children():
    sim, env = _env()
    with pytest.raises(SimulationError):
        env.any_of([])


def test_yielding_garbage_raises():
    sim, env = _env()

    def proc():
        yield "not-a-waitable"

    env.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_two_processes_interleave():
    sim, env = _env()
    log = []

    def proc(name, delay):
        for _ in range(3):
            yield env.timeout(delay)
            log.append((env.now, name))

    env.process(proc("fast", 1.0))
    env.process(proc("slow", 1.5))
    sim.run()
    # At t=3.0 both fire; "slow" scheduled its timeout first (at t=1.5,
    # before "fast" rescheduled at t=2.0), so it wins the tie.
    assert log == [
        (1.0, "fast"), (1.5, "slow"), (2.0, "fast"),
        (3.0, "slow"), (3.0, "fast"), (4.5, "slow"),
    ]
