"""Tests for protocol message byte accounting."""

from repro.common.types import client_address
from repro.protocols import messages as m
from repro.storage.version import Version


CLIENT = client_address(0, 0, 0)


def test_get_req_size_scales_with_vector():
    small = m.GetReq(key="k", rdv=[0] * 3, client=CLIENT, op_id=1)
    large = m.GetReq(key="k", rdv=[0] * 10, client=CLIENT, op_id=1)
    assert large.size_bytes() - small.size_bytes() == 7 * m.TS_BYTES


def test_get_reply_size():
    reply = m.GetReply(key="k", value=1, ut=5, dv=(0, 0, 0), sr=0, op_id=1)
    expected = (m.HEADER_BYTES + m.KEY_BYTES + m.VALUE_BYTES + m.TS_BYTES
                + 3 * m.TS_BYTES + m.ID_BYTES)
    assert reply.size_bytes() == expected


def test_put_req_and_reply_sizes():
    req = m.PutReq(key="k", value=1, dv=[0, 0, 0], client=CLIENT, op_id=1)
    assert req.size_bytes() == (m.HEADER_BYTES + m.KEY_BYTES + m.VALUE_BYTES
                                + 3 * m.TS_BYTES + m.ID_BYTES)
    reply = m.PutReply(ut=10, op_id=1)
    assert reply.size_bytes() == m.HEADER_BYTES + m.TS_BYTES + m.ID_BYTES


def test_ro_tx_req_scales_with_keys():
    one = m.RoTxReq(keys=("a",), rdv=[0] * 3, client=CLIENT, op_id=1)
    four = m.RoTxReq(keys=("a", "b", "c", "d"), rdv=[0] * 3,
                     client=CLIENT, op_id=1)
    assert four.size_bytes() - one.size_bytes() == 3 * m.KEY_BYTES


def test_replicate_carries_version_payload():
    version = Version(key="k", value=1, sr=0, ut=5, dv=(0, 0, 0))
    msg = m.Replicate(version=version)
    assert msg.size_bytes() == m.HEADER_BYTES + m.version_bytes(version)


def test_ust_gossip_is_one_timestamp():
    """Okapi*'s WAN stabilization cost: one scalar per gossip message,
    independent of the number of DCs (vs the M-entry StabPush/Broadcast)."""
    gossip = m.UstGossip(dst=123, src_dc=1)
    assert gossip.size_bytes() == m.HEADER_BYTES + m.TS_BYTES + m.ID_BYTES
    assert gossip.size_bytes() <= m.StabPush(vv=[0] * 3,
                                             partition=0).size_bytes()


def test_heartbeat_is_small():
    hb = m.Heartbeat(ts=123, src_dc=1)
    assert hb.size_bytes() < m.Replicate(
        version=Version(key="k", value=1, sr=0, ut=5, dv=(0, 0, 0))
    ).size_bytes()


def test_slice_messages():
    req = m.SliceReq(keys=("a", "b"), tv=[0] * 3, coordinator=CLIENT,
                     tx_id=7)
    assert req.size_bytes() > m.HEADER_BYTES
    replies = [
        m.GetReply(key="a", value=1, ut=5, dv=(0, 0, 0), sr=0, op_id=0),
        m.GetReply(key="b", value=2, ut=6, dv=(0, 0, 0), sr=0, op_id=0),
    ]
    resp = m.SliceResp(versions=replies, tx_id=7)
    single = m.SliceResp(versions=replies[:1], tx_id=7)
    assert resp.size_bytes() > single.size_bytes()


def test_ro_tx_reply_aggregates_items():
    replies = [
        m.GetReply(key="a", value=1, ut=5, dv=(0, 0, 0), sr=0, op_id=0),
    ]
    msg = m.RoTxReply(versions=replies, op_id=3)
    assert msg.size_bytes() > m.HEADER_BYTES + m.ID_BYTES


def test_stabilization_and_gc_messages():
    assert m.StabPush(vv=[0] * 3, partition=1).size_bytes() == (
        m.HEADER_BYTES + 3 * m.TS_BYTES + m.ID_BYTES
    )
    assert m.StabBroadcast(gss=[0] * 3).size_bytes() == (
        m.HEADER_BYTES + 3 * m.TS_BYTES
    )
    assert m.GcPush(vec=[0] * 3, partition=1).size_bytes() == (
        m.HEADER_BYTES + 3 * m.TS_BYTES + m.ID_BYTES
    )
    assert m.GcBroadcast(gv=[0] * 3).size_bytes() == (
        m.HEADER_BYTES + 3 * m.TS_BYTES
    )


def test_session_closed_flags():
    msg = m.SessionClosed(op_id=9)
    assert "partition" in msg.reason
    assert msg.size_bytes() == m.HEADER_BYTES + m.ID_BYTES
