#!/usr/bin/env python3
"""Okapi*'s universal stabilization, observed end to end.

One client in Oregon writes a key; we then poll every data center until
the new version becomes readable there, under two protocols:

* **cure** — per-DC stabilization: each DC exposes the update as soon as
  *its own* Global Stable Snapshot covers it, so nearby DCs see it long
  before far ones (visibility horizons diverge by the WAN asymmetry);
* **okapi** — universal stabilization: no DC exposes the update until
  *every* DC has received it, so it appears everywhere within a gossip
  round of the same instant.  That uniformity is Okapi's availability
  argument: a client can fail over to any DC without losing anything it
  has ever seen as stable.

Run:  python examples/okapi_universal_stability.py
"""

from repro.common.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.harness.builders import build_cluster

REGIONS = ("oregon", "virginia", "ireland")


def visibility_times(protocol: str) -> tuple[float, dict[int, float]]:
    """Write at DC0, then poll each DC's server for the new version."""
    config = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=50, protocol=protocol),
        workload=WorkloadConfig(clients_per_partition=1),
        seed=7,
    )
    built = build_cluster(config)
    sim = built.sim
    sim.run(until=1.0)  # clocks, heartbeats and stabilization settle

    writer = next(c for c in built.clients
                  if (c.address.dc, c.address.partition,
                      c.address.index) == (0, 0, 0))
    key = built.pools.key(0, 0)
    done = {}
    writer.put(key, "fresh", lambda reply: done.setdefault("ut", reply.ut))
    while "ut" not in done:
        sim.step()
    written_at = sim.now

    readers = {dc: built.servers[built.topology.server(dc, 0)]
               for dc in range(3)}
    seen: dict[int, float] = {}
    while len(seen) < 3 and sim.now < written_at + 2.0:
        sim.run(until=sim.now + 0.002)
        for dc, server in readers.items():
            if dc in seen:
                continue
            replies: list = []
            client = next(c for c in built.clients if c.address.dc == dc
                          and c.address.partition == 0)
            client.get(key, replies.append)
            while not replies:
                sim.step()
            if replies[0].value == "fresh":
                seen[dc] = sim.now
    return written_at, seen


def main() -> None:
    for protocol in ("cure", "okapi"):
        written_at, seen = visibility_times(protocol)
        print(f"--- {protocol} ---")
        for dc in range(3):
            when = seen.get(dc)
            label = REGIONS[dc]
            if when is None:
                print(f"  {label:<10} never became visible (!)")
            else:
                print(f"  {label:<10} visible after "
                      f"{(when - written_at) * 1000:7.1f} ms")
        times = [seen[dc] for dc in seen if dc != 0]
        if len(times) == 2:
            spread_ms = abs(times[0] - times[1]) * 1000
            print(f"  remote visibility spread: {spread_ms:.1f} ms")
    print()
    print("cure exposes the write per-DC (Virginia long before Ireland);")
    print("okapi holds it back until *every* DC has it, then exposes it")
    print("everywhere nearly at once — uniform visibility is what makes")
    print("client fail-over between DCs safe.")


if __name__ == "__main__":
    main()
