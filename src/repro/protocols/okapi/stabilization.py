"""Universal stabilization: the gossip protocol computing the UST.

Three hops, all periodic and all riding the same CPU queues as client
work (so the UST lags more under load, like the Cure* GSS):

1. every ``stabilization_interval_s`` each node pushes its **local stable
   time** ``LST = min(VV)`` — it has received everything from every DC up
   to that timestamp — to its DC aggregator (partition 0), reusing
   :class:`~repro.protocols.messages.StabPush` with a 1-entry vector;
2. when the aggregator holds a report from every partition it folds them
   into the **data-center stable time** ``DST^m = min over partitions``,
   and every ``ust_gossip_interval_s`` it gossips its current DST to the
   aggregators of the other DCs (:class:`UstGossip`, one WAN timestamp);
3. whenever an aggregator knows a DST for *all* DCs it takes the minimum —
   the **universal stable time**: every DC has received everything up to
   it — and broadcasts any advance to its DC
   (:class:`~repro.protocols.messages.StabBroadcast`, 1-entry vector).

All timestamps are packed hybrid-clock values (physical ``<<`` 16 | logical).
"""

from __future__ import annotations

from repro.clocks.hlc import HybridLogicalClock
from repro.common.types import Micros
from repro.protocols import messages as m


class UniversalStabilizationMixin:
    """Adds UST state + universal stabilization rounds to a server.

    Expects the host class to provide ``sim``, ``vv``, ``m``, ``n``,
    ``topology``, ``metrics``, ``clock``, ``address``, ``send``,
    ``broadcast_dc`` and a ``ust_advanced()`` hook called whenever the
    UST moves forward.
    """

    def init_universal_stabilization(
        self, push_interval_s: float, gossip_interval_s: float
    ) -> None:
        #: The universal stable time this node trusts (packed HLC micros).
        self.ust: Micros = 0
        self._push_interval_s = push_interval_s
        self._gossip_interval_s = gossip_interval_s
        self._lst_reports: dict[int, Micros] = {}
        #: Aggregator state: newest known DST per DC (own DC included).
        self._dst: dict[int, Micros] = {}
        #: Newest own DST already shipped as a replication-batch
        #: piggyback (``ReplicateBatch.dst``): the explicit gossip tick
        #: stays silent until the DST advances past it.  Stays -1 when
        #: replication batching is off, so every tick gossips — the
        #: pre-batching behavior, bit-for-bit.
        self._dst_piggybacked: Micros = -1
        self._is_aggregator = self.topology.server(self.m, 0) == self.address
        # Stagger first rounds per partition to avoid synchronized bursts
        # (same discipline as the Cure* stabilization mixin).
        first = push_interval_s * (1.0 + 0.01 * self.n)
        self.rt.schedule(first, self._lst_push_tick)
        if self._is_aggregator:
            gossip_first = gossip_interval_s * (1.0 + 0.01 * self.m)
            self.rt.schedule(gossip_first, self._ust_gossip_tick)

    # ------------------------------------------------------------------
    # Hop 1: every node pushes its local stable time intra-DC
    # ------------------------------------------------------------------
    def _lst_push_tick(self) -> None:
        aggregator = self.topology.server(self.m, 0)
        push = m.StabPush(vv=[min(self.vv)], partition=self.n)
        if aggregator == self.address:
            self.receive_lst_push(push)
        else:
            self.send(aggregator, push)
        self.rt.schedule(self._push_interval_s, self._lst_push_tick)

    def receive_lst_push(self, msg: m.StabPush) -> None:
        self._lst_reports[msg.partition] = msg.vv[0]
        if not self._aggregation_complete(self._lst_reports):
            return
        dst = min(self._lst_reports.values())
        self._lst_reports.clear()
        if dst > self._dst.get(self.m, -1):
            self._dst[self.m] = dst
        self._recompute_ust()

    # ------------------------------------------------------------------
    # Hop 2: aggregators gossip their DST across the WAN
    # ------------------------------------------------------------------
    def _ust_gossip_tick(self) -> None:
        dst = self._dst.get(self.m)
        if dst is not None and dst > self._dst_piggybacked:
            self.send_fanout(
                (self.topology.server(dc, 0)
                 for dc in range(self.topology.num_dcs) if dc != self.m),
                m.UstGossip(dst=dst, src_dc=self.m),
            )
        self.rt.schedule(self._gossip_interval_s, self._ust_gossip_tick)

    def receive_ust_gossip(self, msg: m.UstGossip) -> None:
        # max-merge: gossip rounds are idempotent and DSTs are monotone,
        # so stale deliveries (e.g. flushed after a partition heals) are
        # harmless.
        if msg.dst > self._dst.get(msg.src_dc, -1):
            self._dst[msg.src_dc] = msg.dst
            self._recompute_ust()

    # ------------------------------------------------------------------
    # Hop 3: the UST is broadcast intra-DC whenever it advances
    # ------------------------------------------------------------------
    def _recompute_ust(self) -> None:
        if len(self._dst) < self.topology.num_dcs:
            return  # some DC has never reported; nothing is provably universal
        ust = min(self._dst.values())
        if ust <= self.ust:
            return
        self.broadcast_dc(m.StabBroadcast(gss=[ust]),
                          self.receive_ust_broadcast)

    def receive_ust_broadcast(self, msg: m.StabBroadcast) -> None:
        if msg.gss[0] > self.ust:
            self.ust = msg.gss[0]
            self._record_ust_lag()
            self.ust_advanced()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def advance_ust(self, ust: Micros) -> None:
        """Merge an externally observed UST value (client metadata).

        Safe because every value a client carries descends from some
        aggregator broadcast: it genuinely bounds what every DC has
        received, even if this node has not seen that broadcast yet.
        """
        if ust > self.ust:
            self.ust = ust
            self.ust_advanced()

    def _record_ust_lag(self) -> None:
        """How far the UST trails this node's clock, in physical seconds
        (an upper bound on the staleness horizon of stable reads; shares
        the GSS-lag metric series so benches compare like with like)."""
        ust_physical, _ = HybridLogicalClock.unpack(self.ust)
        lag_us = max(self.clock.peek_micros() - ust_physical, 0)
        self.metrics.record_gss_lag(lag_us / 1_000_000.0)

    def ust_advanced(self) -> None:
        """Hook: visibility horizons moved; drain pending samples."""
        raise NotImplementedError
