"""Integration: the paper's headline comparisons hold end-to-end.

These run POCC and Cure* side by side (same seed, same workload) and check
the *direction* of every claim in Section V — freshness, staleness growth,
blocking rarity — at test-friendly scale.
"""

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.harness.experiment import run_experiment


def _run(protocol, kind="get_put", clients=3, think=0.005, seed=9,
         duration=1.5, tx_partitions=2, gets_per_put=4):
    config = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=60, protocol=protocol),
        workload=WorkloadConfig(kind=kind, gets_per_put=gets_per_put,
                                tx_partitions=tx_partitions,
                                clients_per_partition=clients,
                                think_time_s=think),
        warmup_s=0.3,
        duration_s=duration,
        seed=seed,
    )
    return run_experiment(config)


@pytest.fixture(scope="module")
def getput():
    return {p: _run(p) for p in ("pocc", "cure")}


@pytest.fixture(scope="module")
def rotx():
    return {p: _run(p, kind="ro_tx") for p in ("pocc", "cure")}


def test_pocc_never_returns_old_gets(getput):
    assert getput["pocc"].get_staleness["pct_old"] == 0.0


def test_cure_returns_some_old_gets(getput):
    assert getput["cure"].get_staleness["pct_old"] > 0.0
    assert getput["cure"].get_staleness["pct_unmerged"] >= (
        getput["cure"].get_staleness["pct_old"]
    )


def test_throughputs_comparable(getput):
    pocc = getput["pocc"].throughput_ops_s
    cure = getput["cure"].throughput_ops_s
    assert abs(pocc - cure) / max(pocc, cure) < 0.25


def test_pocc_blocking_rare_at_moderate_load(getput):
    assert getput["pocc"].blocking_probability < 0.01


def test_cure_never_blocks_on_vv(getput):
    assert getput["cure"].blocking["get_vv"]["attempts"] == 0


def test_pocc_tx_staleness_orders_of_magnitude_lower(rotx):
    pocc_old = rotx["pocc"].tx_staleness["pct_old"]
    cure_old = rotx["cure"].tx_staleness["pct_old"]
    assert cure_old > 0
    # The paper reports ~2 orders of magnitude; at this small scale we
    # conservatively require at least one.
    assert pocc_old < cure_old / 10 or pocc_old == 0.0


def test_cure_pays_stabilization_traffic(getput):
    """POCC sends no stabilization messages during normal operation, so at
    equal workloads Cure* sends strictly more messages."""
    assert (getput["cure"].network_messages
            > getput["pocc"].network_messages)


def test_gss_lag_within_wan_scale(getput):
    lag = getput["cure"].gss_lag
    assert lag["count"] > 0
    assert 0.01 < lag["mean"] < 0.5  # dominated by the slowest WAN link


def test_paper_constants_in_effect(getput):
    config = getput["pocc"].config
    assert config["protocol"] == "pocc"
    assert config["workload"] == "get_put"
