"""Shared argument plumbing for the live-backend CLIs.

``repro-serve`` and ``repro-bench-live`` describe the same deployment —
a JSON config file (:mod:`repro.runtime.configfile`) plus command-line
overrides for the knobs people actually turn (protocol, shape, duration,
seed) — so the parser wiring lives here once.
"""

from __future__ import annotations

import argparse
import dataclasses

import sys

from repro.common.config import ExperimentConfig
from repro.protocols.registry import list_protocols
from repro.runtime import codec
from repro.runtime.configfile import load_experiment_config
from repro.runtime.loops import EVENT_LOOP_CHOICES


def warn_slow_serializer() -> None:
    """Print the slow-serializer startup warning (once, to stderr).

    ``repro-serve`` and ``repro-bench-live`` call this at startup so a
    deployment that silently fell back to JSON frames (msgpack absent) is
    visible in its logs — BENCH_pr4 was measured on the fallback without
    anything saying so.
    """
    note = codec.serializer_note()
    if note is not None:
        print(f"warning: {note}", file=sys.stderr)


def add_deployment_args(parser: argparse.ArgumentParser) -> None:
    """Options describing the cluster being booted/driven."""
    parser.add_argument("--config", metavar="PATH",
                        help="JSON deployment description "
                             "(see repro.runtime.configfile); omitted "
                             "fields take the library defaults")
    parser.add_argument("--protocol", choices=list_protocols(),
                        help="protocol override")
    parser.add_argument("--dcs", type=int, metavar="N",
                        help="number of data centers override")
    parser.add_argument("--partitions", type=int, metavar="N",
                        help="partitions per DC override")
    parser.add_argument("--clients", type=int, metavar="N",
                        help="clients per partition override")
    parser.add_argument("--keys", type=int, metavar="N",
                        help="keys per partition override")
    parser.add_argument("--think-time", type=float, metavar="S",
                        help="client think time override (seconds)")
    parser.add_argument("--arrival", choices=("closed", "open"),
                        help="driver model override: 'closed' (think-time "
                             "loop) or 'open' (target-rate arrivals; "
                             "latency measured from intended arrival)")
    parser.add_argument("--rate", type=float, metavar="OPS",
                        help="open loop: target arrivals per second per "
                             "client session (implies --arrival open)")
    parser.add_argument("--seed", type=int, help="workload seed override")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind/dial host (default: 127.0.0.1)")
    parser.add_argument("--base-port", type=int, default=7400,
                        metavar="PORT",
                        help="first port of the deterministic port map; "
                             "0 = ephemeral ports (single-process only; "
                             "default: 7400)")
    parser.add_argument("--repl-batch", type=int, metavar="N",
                        help="enable protocol-level replication batching: "
                             "up to N versions per inter-DC ReplicateBatch "
                             "(see docs/protocols.md; N=1 is wire-"
                             "equivalent to batching off)")
    parser.add_argument("--repl-flush-ms", type=float, metavar="MS",
                        help="replication batch flush deadline in ms "
                             "(default: 5.0; enables batching when given "
                             "without --repl-batch)")
    parser.add_argument("--data-dir", metavar="PATH",
                        help="enable durability: per-partition WAL + "
                             "snapshots under PATH, crash recovery on "
                             "boot (see docs/persistence.md)")
    parser.add_argument("--fsync", choices=("always", "interval", "off"),
                        help="WAL fsync policy (default: config file, "
                             "else 'interval'); 'always' makes every "
                             "acknowledged write SIGKILL-durable")
    parser.add_argument("--snapshot-interval", type=float, metavar="S",
                        help="seconds between chain snapshots + WAL "
                             "truncation (0 disables; default: config)")
    parser.add_argument("--event-loop", choices=EVENT_LOOP_CHOICES,
                        help="asyncio event loop implementation: 'auto' "
                             "picks uvloop when installed (the 'fast' "
                             "extra), 'uvloop' requires it, 'asyncio' "
                             "forces the stdlib loop (default: config "
                             "file, else 'auto')")
    parser.add_argument("--tcp-nodelay", choices=("on", "off"),
                        help="TCP_NODELAY on live sockets (default: on; "
                             "'off' re-enables Nagle batching)")
    parser.add_argument("--sndbuf", type=int, metavar="BYTES",
                        help="SO_SNDBUF hint for live sockets "
                             "(0 = kernel default)")
    parser.add_argument("--rcvbuf", type=int, metavar="BYTES",
                        help="SO_RCVBUF hint for live sockets "
                             "(0 = kernel default)")
    parser.add_argument("--metrics-port", type=int, metavar="PORT",
                        help="enable live telemetry: serve /metrics and "
                             "/vars.json, one endpoint per hosted server "
                             "at PORT + server index (Topology order; "
                             "0 = ephemeral, single-process only; see "
                             "docs/observability.md)")
    parser.add_argument("--trace-dir", metavar="PATH",
                        help="enable causal event tracing: sampled "
                             "write-lifecycle spans as JSONL under PATH "
                             "(implies telemetry on)")
    parser.add_argument("--trace-sample", type=int, metavar="N",
                        help="trace one write per N update-time ticks "
                             "(ut %% N == 0; default: 64)")


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """The deployment's ExperimentConfig: file (or defaults) + overrides."""
    if args.config:
        config = load_experiment_config(args.config)
    else:
        config = ExperimentConfig()
    cluster = config.cluster
    cluster_overrides = {}
    if args.protocol is not None:
        cluster_overrides["protocol"] = args.protocol
    if args.dcs is not None:
        cluster_overrides["num_dcs"] = args.dcs
    if args.partitions is not None:
        cluster_overrides["num_partitions"] = args.partitions
    if args.keys is not None:
        cluster_overrides["keys_per_partition"] = args.keys
    if args.repl_batch is not None or args.repl_flush_ms is not None:
        repl_overrides: dict = {"enabled": True}
        if args.repl_batch is not None:
            repl_overrides["max_versions"] = args.repl_batch
        if args.repl_flush_ms is not None:
            repl_overrides["flush_ms"] = args.repl_flush_ms
        cluster_overrides["repl_batch"] = dataclasses.replace(
            cluster.repl_batch, **repl_overrides
        )
    transport_overrides = {}
    if args.event_loop is not None:
        transport_overrides["event_loop"] = args.event_loop
    if args.tcp_nodelay is not None:
        transport_overrides["tcp_nodelay"] = args.tcp_nodelay == "on"
    if args.sndbuf is not None:
        transport_overrides["sndbuf_bytes"] = args.sndbuf
    if args.rcvbuf is not None:
        transport_overrides["rcvbuf_bytes"] = args.rcvbuf
    if transport_overrides:
        cluster_overrides["transport"] = dataclasses.replace(
            cluster.transport, **transport_overrides
        )
    telemetry_overrides: dict = {}
    if args.metrics_port is not None:
        telemetry_overrides.update(enabled=True,
                                   metrics_base_port=args.metrics_port)
    if args.trace_dir is not None:
        telemetry_overrides.update(enabled=True, trace=True,
                                   trace_dir=args.trace_dir)
    if args.trace_sample is not None:
        telemetry_overrides["trace_sample_every"] = args.trace_sample
    if telemetry_overrides:
        cluster_overrides["telemetry"] = dataclasses.replace(
            cluster.telemetry, **telemetry_overrides
        )
    if cluster_overrides:
        cluster = dataclasses.replace(cluster, **cluster_overrides)
    workload = config.workload
    workload_overrides = {}
    if args.clients is not None:
        workload_overrides["clients_per_partition"] = args.clients
    if args.think_time is not None:
        workload_overrides["think_time_s"] = args.think_time
    if args.rate is not None:
        workload_overrides["rate_ops_s"] = args.rate
        if args.arrival is None:
            workload_overrides["arrival"] = "open"
    if args.arrival is not None:
        workload_overrides["arrival"] = args.arrival
    if workload_overrides:
        workload = dataclasses.replace(workload, **workload_overrides)
    persistence = config.persistence
    persistence_overrides = {}
    if args.data_dir is not None:
        persistence_overrides.update(enabled=True, data_dir=args.data_dir)
    if args.fsync is not None:
        persistence_overrides["fsync"] = args.fsync
    if args.snapshot_interval is not None:
        persistence_overrides["snapshot_interval_s"] = args.snapshot_interval
    if persistence_overrides:
        persistence = dataclasses.replace(persistence,
                                          **persistence_overrides)
    overrides = {"cluster": cluster, "workload": workload,
                 "persistence": persistence}
    if args.seed is not None:
        overrides["seed"] = args.seed
    config = dataclasses.replace(config, **overrides)
    config.validate()
    return config
