"""Determinism regression: the sim engine's tie-breaking contract.

Two runs of the same seed/config must produce *byte-identical* metrics
reports — not merely similar numbers.  This pins down the guarantees the
whole suite leans on (replayable fuzz failures, cacheable figure sweeps):
event ordering, RNG stream derivation, dict iteration, and float
arithmetic must all be stable run-to-run within a process.
"""

import json
from dataclasses import asdict

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.harness.experiment import run_experiment


def _config(protocol: str) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=40, protocol=protocol),
        workload=WorkloadConfig(kind="mixed", read_ratio=0.8, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.004),
        warmup_s=0.2,
        duration_s=1.0,
        seed=97,
        verify=True,
        name=f"determinism-{protocol}",
    )


def _report_bytes(protocol: str) -> bytes:
    result = run_experiment(_config(protocol))
    payload = asdict(result)
    return json.dumps(payload, sort_keys=True).encode("utf-8")


@pytest.mark.parametrize("protocol", ("pocc", "okapi"))
def test_metrics_reports_byte_identical_across_runs(protocol):
    assert _report_bytes(protocol) == _report_bytes(protocol)


def test_summary_text_byte_identical_across_runs():
    first = run_experiment(_config("cure")).summary_text()
    second = run_experiment(_config("cure")).summary_text()
    assert first.encode() == second.encode()


def test_parallel_replicates_identical_to_serial():
    """Same config + seeds through ``parallelism=1`` and ``parallelism=4``
    must produce identical aggregate stats and a byte-identical summary
    table: the process-pool fan-out may change *where* a run executes,
    never *what* it computes or the order it is aggregated in."""
    from repro.harness.replicates import run_replicates

    config = _config("pocc")
    serial = run_replicates(config, num_seeds=3, parallelism=1)
    parallel = run_replicates(config, num_seeds=3, parallelism=4)
    assert serial.seeds == parallel.seeds
    assert serial.stats == parallel.stats
    assert (serial.summary_table().encode()
            == parallel.summary_table().encode())
    for a, b in zip(serial.results, parallel.results):
        assert asdict(a) == asdict(b)


def test_parallel_figure_markdown_byte_identical_to_serial():
    """A figure sweep routed through the pool renders byte-identical
    markdown to the serial path."""
    from repro.harness.figures import figure_1a
    from repro.harness.reportmd import render_markdown

    serial = figure_1a(scale="smoke", parallelism=1)
    parallel = figure_1a(scale="smoke", parallelism=4)
    assert serial.series == parallel.series
    serial_md = render_markdown([serial], scale="smoke")
    parallel_md = render_markdown([parallel], scale="smoke")
    assert serial_md.encode() == parallel_md.encode()


def test_different_seeds_actually_differ():
    """Guard against the degenerate way to pass the test above: the report
    must actually depend on the seed."""
    base = _config("pocc")
    a = run_experiment(base)
    b = run_experiment(ExperimentConfig(
        cluster=base.cluster, workload=base.workload, warmup_s=base.warmup_s,
        duration_s=base.duration_s, seed=base.seed + 1, verify=True,
        name=base.name,
    ))
    assert a.sim_events != b.sim_events or a.total_ops != b.total_ops
