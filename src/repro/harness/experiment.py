"""The experiment lifecycle: build -> warmup -> measure -> (drain) -> report.

``run_experiment`` is the single entry point used by examples, tests and all
figure benches.  The measurement window opens after ``warmup_s`` of
simulated time and closes ``duration_s`` later; when verification is on the
drivers are then stopped, replication is drained and the convergence checker
runs over the quiesced stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.config import ExperimentConfig
from repro.common.types import OpType
from repro.harness.builders import BuiltCluster, build_cluster
from repro.metrics.collectors import (
    ALL_BLOCK_CAUSES,
    BLOCK_GET_VV,
    BLOCK_PUT_DEPS,
    BLOCK_SLICE_VV,
)
from repro.verification.convergence import check_convergence

#: Extra simulated seconds to let replication quiesce before convergence
#: checks: enough for any WAN hop plus heartbeat and stabilization rounds.
DRAIN_S = 2.0


@dataclass(slots=True)
class ExperimentResult:
    """Everything measured in one run, in plain-data form."""

    name: str
    protocol: str
    config: dict[str, Any]
    duration_s: float
    total_ops: int
    throughput_ops_s: float
    op_stats: dict[str, dict[str, float]]
    blocking: dict[str, dict[str, float]]
    get_staleness: dict[str, float]
    tx_staleness: dict[str, float]
    gss_lag: dict[str, float]
    visibility_lag: dict[str, float]
    network_messages: int
    network_bytes: int
    inter_dc_bytes: int
    bytes_per_op: float
    cpu_utilization_mean: float
    cpu_utilization_max: float
    sim_events: int
    verification: dict[str, int] | None = None
    divergences: int | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    # -- convenience views used by the figure benches ---------------------
    @property
    def mean_response_time_s(self) -> float:
        """Mean response time across all operation types."""
        total = 0.0
        count = 0
        for stats in self.op_stats.values():
            total += stats["mean"] * stats["count"]
            count += stats["count"]
        return total / count if count else 0.0

    def op_mean_s(self, op: str) -> float:
        stats = self.op_stats.get(op)
        return stats["mean"] if stats else 0.0

    @property
    def blocking_probability(self) -> float:
        """Combined probability that a GET / PUT-dependency / slice wait
        actually blocked (the paper's Figures 2a and 3c)."""
        return self.extras.get("blocking_probability", 0.0)

    @property
    def mean_block_time_s(self) -> float:
        return self.extras.get("mean_block_time_s", 0.0)

    def summary_text(self) -> str:
        lines = [
            f"experiment {self.name or '(unnamed)'} [{self.protocol}]",
            f"  throughput      : {self.throughput_ops_s:,.0f} ops/s "
            f"({self.total_ops} ops in {self.duration_s:.2f}s)",
            f"  mean resp. time : {self.mean_response_time_s * 1000:.3f} ms",
            f"  blocking        : p={self.blocking_probability:.2e}, "
            f"mean stall={self.mean_block_time_s * 1000:.3f} ms",
            f"  GET staleness   : {self.get_staleness['pct_old']:.2f}% old, "
            f"{self.get_staleness['pct_unmerged']:.2f}% unmerged",
            f"  TX staleness    : {self.tx_staleness['pct_old']:.2f}% old, "
            f"{self.tx_staleness['pct_unmerged']:.2f}% unmerged",
            f"  network         : {self.network_messages:,} msgs, "
            f"{self.bytes_per_op:.0f} B/op",
            f"  CPU utilization : mean {self.cpu_utilization_mean:.2f}, "
            f"max {self.cpu_utilization_max:.2f}",
        ]
        if self.verification is not None:
            lines.append(
                f"  verification    : {self.verification['violations']} "
                f"violations over {self.verification['reads_checked']} reads"
                f" / {self.verification['tx_reads_checked']} tx-reads; "
                f"{self.divergences} diverged keys"
            )
        return "\n".join(lines)


def run_experiment(
    config: ExperimentConfig, built: BuiltCluster | None = None
) -> ExperimentResult:
    """Run one experiment to completion and aggregate its metrics.

    Pass a pre-built cluster (e.g. with scheduled fault injection) via
    ``built``; otherwise one is constructed from ``config``.
    """
    if built is None:
        built = build_cluster(config)
    sim = built.sim
    metrics = built.metrics

    built.start_drivers()

    # Arm the metrics window at the warmup boundary.
    bytes_at_arm = {"bytes": 0, "messages": 0, "busy": {}}

    def arm() -> None:
        metrics.arm(sim.now)
        bytes_at_arm["bytes"] = built.network.stats.bytes_sent
        bytes_at_arm["messages"] = built.network.stats.messages_sent
        bytes_at_arm["inter_dc"] = built.network.stats.inter_dc_bytes()
        bytes_at_arm["busy"] = {
            addr: server.cpu.busy_time_s
            for addr, server in built.servers.items()
        }

    sim.schedule(config.warmup_s, arm)
    end_at = config.warmup_s + config.duration_s
    sim.run(until=end_at)
    metrics.disarm(sim.now)

    window = metrics.window_duration_s
    messages = built.network.stats.messages_sent - bytes_at_arm["messages"]
    total_bytes = built.network.stats.bytes_sent - bytes_at_arm["bytes"]
    inter_dc = built.network.stats.inter_dc_bytes() - bytes_at_arm.get(
        "inter_dc", 0
    )
    utilizations = []
    for addr, server in built.servers.items():
        busy_before = bytes_at_arm["busy"].get(addr, 0.0)
        busy_delta = server.cpu.busy_time_s - busy_before
        utilizations.append(
            min(1.0, busy_delta / (window * server.cpu.cores))
            if window > 0 else 0.0
        )

    verification = None
    divergences = None
    if built.checker is not None:
        built.stop_drivers()
        sim.run(until=sim.now + DRAIN_S)
        verification = built.checker.summary()
        divergences = len(check_convergence(
            built.servers,
            config.cluster.num_dcs,
            config.cluster.num_partitions,
        ))

    total_ops = metrics.total_ops()
    combined = metrics.combined_blocking(
        (BLOCK_GET_VV, BLOCK_PUT_DEPS, BLOCK_SLICE_VV)
    )
    result = ExperimentResult(
        name=config.name,
        protocol=config.cluster.protocol,
        config=config.describe(),
        duration_s=window,
        total_ops=total_ops,
        throughput_ops_s=metrics.throughput_ops_s(),
        op_stats={
            op.value: stats.latency.summary()
            for op, stats in metrics.ops.items()
        },
        blocking={
            cause: {
                "attempts": stats.attempts,
                "blocked": stats.blocked,
                "probability": stats.probability,
                "mean_block_time_s": stats.mean_block_time_s,
            }
            for cause, stats in metrics.blocking.items()
        },
        get_staleness=metrics.get_staleness.summary(),
        tx_staleness=metrics.tx_staleness.summary(),
        gss_lag=metrics.gss_lag.summary(),
        visibility_lag=metrics.visibility_lag.summary(),
        network_messages=messages,
        network_bytes=total_bytes,
        inter_dc_bytes=inter_dc,
        bytes_per_op=total_bytes / total_ops if total_ops else 0.0,
        cpu_utilization_mean=(
            sum(utilizations) / len(utilizations) if utilizations else 0.0
        ),
        cpu_utilization_max=max(utilizations, default=0.0),
        sim_events=sim.events_executed,
        verification=verification,
        divergences=divergences,
        extras={
            "blocking_probability": combined.probability,
            "mean_block_time_s": combined.mean_block_time_s,
            "blocking_attempts": combined.attempts,
            "blocking_blocked": combined.blocked,
        },
    )
    _sanity_check(result)
    return result


def _sanity_check(result: ExperimentResult) -> None:
    """Cheap internal invariants every run must satisfy."""
    for cause, stats in result.blocking.items():
        assert stats["blocked"] <= stats["attempts"], (
            f"{cause}: blocked > attempts"
        )
    assert result.total_ops >= 0
    assert result.throughput_ops_s >= 0.0


#: Operation-type labels used in op_stats keys.
OP_GET = OpType.GET.value
OP_PUT = OpType.PUT.value
OP_RO_TX = OpType.RO_TX.value
