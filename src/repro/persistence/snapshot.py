"""Version-chain snapshots: the WAL's truncation point.

A snapshot is one file (``snapshot.bin``) of codec frames:

=========================================  ============================
record                                     meaning
=========================================  ============================
``("snap", format, num_dcs, wal_seq, vv)``  header: the WAL segment
                                            sequence from which replay
                                            must resume, plus the
                                            server's version vector at
                                            snapshot time
``("v", version)``                          one stored version
``("end", count)``                          footer: number of versions
=========================================  ============================

Atomicity: the snapshot is written to ``snapshot.tmp``, fsynced, then
``os.replace``d over ``snapshot.bin`` and the directory entry fsynced —
a reader either sees the previous complete snapshot or the new complete
one, never a torn middle.  The footer is verified on load anyway, so
even a non-atomic filesystem degrades to a loud error instead of silent
partial state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.runtime import codec
from repro.persistence.wal import (
    VERSION_TAG,
    WAL_FORMAT,
    WalError,
    fsync_directory,
)

SNAPSHOT_NAME = "snapshot.bin"
SNAPSHOT_TMP_NAME = "snapshot.tmp"
SNAPSHOT_HEADER_TAG = "snap"
SNAPSHOT_FOOTER_TAG = "end"


@dataclass(slots=True)
class SnapshotState:
    """Everything a loaded snapshot contributes to recovery."""

    num_dcs: int
    #: First WAL segment *not* covered by this snapshot: replay resumes
    #: there.
    wal_seq: int
    vv: list[int]
    versions: list[Any] = field(default_factory=list)


def snapshot_path(directory: Path) -> Path:
    return Path(directory) / SNAPSHOT_NAME


def write_snapshot(
    directory: Path,
    versions: Iterable[Any],
    vv: Sequence[int],
    wal_seq: int,
    num_dcs: int,
) -> int:
    """Atomically publish a snapshot; returns the number of versions.

    The caller rolls the WAL *first* and passes the fresh segment's
    sequence as ``wal_seq``: a crash between the roll and this publish
    leaves the previous snapshot pointing at segments that still exist,
    so nothing is lost either way.
    """
    directory = Path(directory)
    tmp = directory / SNAPSHOT_TMP_NAME
    count = 0
    with open(tmp, "wb") as handle:
        handle.write(codec.encode_frame(
            (SNAPSHOT_HEADER_TAG, WAL_FORMAT, num_dcs, wal_seq, list(vv))
        ))
        for version in versions:
            handle.write(codec.encode_frame((VERSION_TAG, version)))
            count += 1
        handle.write(codec.encode_frame((SNAPSHOT_FOOTER_TAG, count)))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, snapshot_path(directory))
    fsync_directory(directory)
    return count


def load_snapshot(path: Path) -> SnapshotState:
    """Decode and validate one snapshot file.

    Any inconsistency — bad header, missing footer, count mismatch,
    undecodable frame — raises :class:`WalError`: thanks to the atomic
    publish this only happens on genuine disk corruption, and recovery
    must not guess around it (older WAL segments were already deleted on
    the strength of this snapshot).
    """
    path = Path(path)
    data = path.read_bytes()
    decoder = codec.FrameDecoder()
    try:
        records = decoder.feed(data)
    except codec.CodecError as exc:
        raise WalError(
            f"{path}: corrupt snapshot at byte {decoder.consumed_bytes}: "
            f"{exc}"
        ) from exc
    if decoder.pending_bytes:
        raise WalError(f"{path}: snapshot ends in a torn frame")
    if not records:
        raise WalError(f"{path}: empty snapshot file")
    head = records[0]
    if (not isinstance(head, tuple) or len(head) != 5
            or head[0] != SNAPSHOT_HEADER_TAG):
        raise WalError(f"{path}: missing snapshot header")
    _, fmt, num_dcs, wal_seq, vv = head
    if fmt != WAL_FORMAT:
        raise WalError(f"{path}: unsupported snapshot format {fmt!r}")
    foot = records[-1]
    if (not isinstance(foot, tuple) or len(foot) != 2
            or foot[0] != SNAPSHOT_FOOTER_TAG):
        raise WalError(f"{path}: snapshot footer missing (torn write?)")
    body = records[1:-1]
    if foot[1] != len(body):
        raise WalError(
            f"{path}: footer promises {foot[1]} versions, found {len(body)}"
        )
    versions = []
    for record in body:
        if (not isinstance(record, tuple) or len(record) != 2
                or record[0] != VERSION_TAG):
            raise WalError(f"{path}: unexpected snapshot record {record!r}")
        versions.append(record[1])
    return SnapshotState(num_dcs=num_dcs, wal_seq=wal_seq, vv=list(vv),
                         versions=versions)
