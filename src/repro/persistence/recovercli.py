"""``repro-recover``: inspect and verify a live deployment's data dir.

Walks every partition directory (``dc<D>-p<P>``) under the given data
dir, runs the same decode-and-merge pass the boot recovery runs (read
only by default: torn tails are *reported*, not truncated), and prints
what a restarted server would rebuild.  Exit status: 0 when every
partition decodes cleanly, 2 on any corruption.

Examples::

    repro-recover /var/lib/repro          # summary of every partition
    repro-recover /var/lib/repro --json   # machine-readable report
    repro-recover /var/lib/repro --repair # also truncate torn WAL tails
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from repro.persistence.manager import RecoveredState, recover_directory
from repro.persistence.wal import WalError, list_segments
from repro.persistence.snapshot import snapshot_path

_PARTITION_DIR = re.compile(r"^dc(\d+)-p(\d+)$")


def partition_directories(root: Path) -> list[tuple[int, int, Path]]:
    """Every ``dc<D>-p<P>`` directory under ``root``, sorted."""
    found = []
    for path in root.iterdir():
        if not path.is_dir():
            continue
        match = _PARTITION_DIR.match(path.name)
        if match:
            found.append((int(match.group(1)), int(match.group(2)), path))
    found.sort()
    return found


def describe(state: RecoveredState, path: Path) -> dict:
    num_dcs = len(state.vv) if state.vv else 0
    per_source: dict[str, int] = {}
    for version in state.versions:
        per_source[str(version.sr)] = per_source.get(str(version.sr), 0) + 1
    return {
        "directory": str(path),
        "had_state": state.had_state,
        "snapshot": {
            "present": snapshot_path(path).exists(),
            "versions": state.snapshot_versions,
            "wal_seq": state.snapshot_wal_seq,
            "vv": state.vv,
            "num_dcs": num_dcs,
        },
        "wal": {
            "segments": [p.name for _, p in list_segments(path)],
            "segments_replayed": state.segments_replayed,
            "records": state.wal_records,
            "torn_tail_bytes": state.torn_bytes_truncated,
            "covered_segments_deleted": state.segments_deleted,
        },
        "recovered_versions": len(state.versions),
        "versions_by_source_replica": per_source,
        "max_ut_by_source": {
            str(sr): state.max_ut(int(sr)) for sr in per_source
        },
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-recover",
        description="Inspect/verify the WAL + snapshot state of a live "
                    "deployment's data directory.",
    )
    parser.add_argument("data_dir", help="deployment data directory "
                                         "(contains dc<D>-p<P> subdirs)")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON report instead of text")
    parser.add_argument("--repair", action="store_true",
                        help="truncate torn WAL tails and delete "
                             "snapshot-covered segments (what a server "
                             "boot would do)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    root = Path(args.data_dir)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    partitions = partition_directories(root)
    if not partitions:
        print(f"error: no dc<D>-p<P> partition directories under {root}",
              file=sys.stderr)
        return 2

    reports = []
    corrupt = 0
    for dc, partition, path in partitions:
        entry: dict = {"dc": dc, "partition": partition}
        try:
            state = recover_directory(
                path, truncate=args.repair, delete_covered=args.repair
            )
            entry.update(describe(state, path))
        except WalError as exc:
            corrupt += 1
            entry.update({"directory": str(path), "corrupt": str(exc)})
        reports.append(entry)

    if args.json:
        print(json.dumps({"data_dir": str(root), "partitions": reports,
                          "corrupt_partitions": corrupt},
                         indent=2, sort_keys=True))
    else:
        for entry in reports:
            name = f"dc{entry['dc']}-p{entry['partition']}"
            if "corrupt" in entry:
                print(f"{name}: CORRUPT — {entry['corrupt']}")
                continue
            snap_info = entry["snapshot"]
            wal_info = entry["wal"]
            torn = wal_info["torn_tail_bytes"]
            print(
                f"{name}: {entry['recovered_versions']} version(s) "
                f"recoverable — snapshot "
                f"{'with ' + str(snap_info['versions']) + ' version(s)' if snap_info['present'] else 'absent'}, "
                f"{len(wal_info['segments'])} WAL segment(s), "
                f"{wal_info['records']} log record(s)"
                + (f", torn tail of {torn} byte(s)"
                   + ("" if args.repair else " (run --repair to truncate)")
                   if torn else "")
            )
    return 2 if corrupt else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
