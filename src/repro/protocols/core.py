"""Transport-agnostic protocol cores: the I/O seam of the reproduction.

A protocol implementation (POCC, Cure*, Okapi*, …) is a **pure state
machine**: it consumes messages and emits *effects* — send a message, set
a timer, cancel a timer, charge local work, reply to a client.  Nothing in
a core may touch a socket, an event loop or the discrete-event engine
directly; every effect goes through the :class:`ProtocolRuntime` interface
held in ``self.rt``.  That seam is what lets the *same* core class run on
two backends:

* the **simulation adapter** (:class:`repro.cluster.node.SimNode`) executes
  effects on the deterministic event engine — sends become
  :meth:`repro.sim.network.Network.send` calls, timers become engine
  events, local work is charged to the modeled CPU;
* the **live adapter** (:class:`repro.runtime.transport.LiveRuntime`)
  executes them on an asyncio event loop — sends become length-prefixed
  frames on TCP connections, timers become ``loop.call_later`` callbacks,
  and modeled CPU costs are not charged (real CPUs charge themselves).

Effect vocabulary (mirrors the adapters' method surface):

========================  =====================================================
effect                    runtime method
========================  =====================================================
send / reply              ``rt.send(dst, msg)`` (a reply is a send to the
                          requesting client's address)
fan-out send              ``rt.send_fanout(dsts, msg)`` (sizes the payload once)
set timer                 ``rt.schedule(delay_s, fn, *args)`` /
                          ``rt.schedule_at(time_s, fn, *args)`` → handle
flush timer               ``rt.schedule_flush(delay_s, fn, *args)`` → handle
                          (buffered-send deadline of the replication
                          batcher; cancelled whenever a size threshold
                          flushes first)
cancel timer              ``handle.cancel()``
local work (CPU charge)   ``rt.submit(cost_s, fn, *args, priority=...)``
durability (WAL append)   ``rt.persist(version)``
========================  =====================================================

Observability hooks (optional, live backend only): an adapter may carry
``telemetry`` (a :class:`repro.obs.telemetry.Telemetry` registry) and
``trace`` (a :class:`repro.obs.tracing.TraceLog`) attributes.  Cores
cache them at construction via ``getattr(runtime, ..., None)`` — the sim
adapter defines neither, so the deterministic backend never pays for or
observes them and per-seed simulated reports stay byte-identical.

Time: ``rt.now`` is a monotonically nondecreasing float of seconds since
the backend's epoch (simulation start / process start).  Physical clocks
(:class:`repro.clocks.physical.PhysicalClock`) are built *on top of* the
runtime's time source, so timestamp discipline is identical on both
backends.
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, runtime_checkable

#: CPU priority classes (canonical home: :mod:`repro.common.types`, also
#: re-exported by :mod:`repro.cluster.cpu`; the live backend accepts and
#: ignores them — real kernels do their own scheduling).
from repro.common.types import BACKGROUND, FOREGROUND  # noqa: F401

#: Bytes charged for a message that defines no ``size_bytes()``.
MESSAGE_SIZE_FALLBACK = 64


def modeled_message_size(msg: Any) -> int:
    """Wire size of ``msg`` under the compact-binary size model.

    The single sizing rule both backends' byte accounting uses
    (:class:`repro.sim.network.Network` and the live transport) — keep
    them counting identically.
    """
    size_fn = getattr(msg, "size_bytes", None)
    return size_fn() if size_fn is not None else MESSAGE_SIZE_FALLBACK


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable reference to a pending timer."""

    def cancel(self) -> bool:
        """Cancel the timer; False if it already fired or was cancelled."""
        ...

    @property
    def active(self) -> bool:
        """True while the timer is still pending."""
        ...


@runtime_checkable
class ProtocolRuntime(Protocol):
    """The effect executor a :class:`ProtocolCore` runs against.

    Implementations: :class:`repro.cluster.node.SimNode` (deterministic
    discrete-event backend) and
    :class:`repro.runtime.transport.LiveRuntime` (asyncio TCP backend).
    """

    @property
    def address(self) -> Any:
        """This endpoint's :class:`repro.common.types.Address`."""
        ...

    @property
    def now(self) -> float:
        """Seconds since the backend's epoch (monotonic)."""
        ...

    def schedule(self, delay: float, fn, *args) -> TimerHandle:
        """Set a timer: run ``fn(*args)`` ``delay`` seconds from now."""
        ...

    def schedule_at(self, time: float, fn, *args) -> TimerHandle:
        """Set a timer for an absolute backend time."""
        ...

    def schedule_flush(self, delay: float, fn, *args) -> TimerHandle:
        """Set a buffered-send flush deadline: run ``fn(*args)`` at most
        ``delay`` seconds from now.

        The effect behind the replication batcher's time threshold.  It
        is a *deadline*, not a cadence: the policy cancels the handle
        whenever a size threshold flushes the buffer first, and arms a
        new one when the next version is buffered.  Keeping it a
        distinct effect (rather than reusing :meth:`schedule`) gives
        backends one seam for every policy-driven flush — the sim
        adapter maps it onto the deterministic engine, the live adapter
        onto the event loop, so the batching policy behaves identically
        under both.
        """
        ...

    def send(self, dst: Any, msg: Any, size: int | None = None) -> None:
        """Send ``msg`` from this endpoint to ``dst``.

        ``size`` lets fan-out callers pass a pre-computed
        :meth:`message_size` so byte accounting does not re-walk the
        payload per destination.
        """
        ...

    def send_fanout(self, dsts: Iterable[Any], msg: Any) -> None:
        """Send one message to many destinations, sizing it only once."""
        ...

    def message_size(self, msg: Any) -> int:
        """Wire size of ``msg`` as the byte accounting counts it."""
        ...

    def submit(self, cost_s: float, fn, *args,
               priority: int = FOREGROUND) -> None:
        """Run ``fn(*args)`` after charging ``cost_s`` of local CPU.

        Zero-cost work runs synchronously on both backends.  The sim
        adapter queues costed work behind the node's modeled cores; the
        live adapter runs it immediately (wall-clock CPUs are real).
        """
        ...

    def persist(self, version: Any) -> None:
        """The *durability* effect: log one version to stable storage.

        Protocol cores emit this for every version they install — locally
        created and replicated alike — *before* emitting the sends that
        acknowledge or propagate it.  The contract the cores rely on is
        **no acknowledgement becomes observable before the version is as
        durable as the fsync policy promises** — not that the disk write
        completes inside this call.  The live adapter exploits that
        freedom: under WAL group commit (``fsync: always``) the record is
        buffered, the fsync happens once per event-loop tick for the
        whole batch, and every frame this endpoint sent after the persist
        is *held* and released only by the post-sync callback
        (:class:`repro.runtime.transport.LiveRuntime`).  The simulation
        adapter maps the effect to a no-op (the deterministic engine
        models no disks), so per-seed simulated reports stay
        byte-identical whether or not durability exists.
        """
        ...

    def bind(self, core: "ProtocolCore") -> None:
        """Attach the core whose ``on_message`` receives deliveries."""
        ...


class ProtocolCore:
    """Base of every protocol server and client core.

    Construction attaches the core to its runtime adapter
    (``runtime.bind(self)``), after which the adapter feeds network
    deliveries into :meth:`on_message`.  Subclasses implement
    :meth:`service_time` (what a message costs), :meth:`message_priority`
    (foreground/background class) and :meth:`dispatch` (what it does).
    """

    def __init__(self, runtime: ProtocolRuntime, clock):
        self.rt = runtime
        self.clock = clock
        self.address = runtime.address
        self.messages_received = 0
        # Live-only observability hooks (absent on the sim backend; the
        # cluster boot sets them on LiveRuntime *before* construction).
        self._obs = getattr(runtime, "telemetry", None)
        self._trace = getattr(runtime, "trace", None)
        runtime.bind(self)

    # ------------------------------------------------------------------
    # Inbound path (adapters call this on delivery)
    # ------------------------------------------------------------------
    def on_message(self, msg: Any) -> None:
        """Delivery entry point: charge the handler's CPU, then dispatch."""
        self.messages_received += 1
        obs = self._obs
        if obs is not None:
            obs.count_message(type(msg).__name__)
        cost = self.service_time(msg)
        if cost > 0:
            self.rt.submit(cost, self.dispatch, msg,
                           priority=self.message_priority(msg))
        else:
            self.dispatch(msg)

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    def service_time(self, msg: Any) -> float:
        """CPU seconds charged before ``dispatch(msg)`` runs."""
        raise NotImplementedError

    def message_priority(self, msg: Any) -> int:
        """CPU class for this message (FOREGROUND unless overridden)."""
        return FOREGROUND

    def dispatch(self, msg: Any) -> None:
        """Handle a message (runs after its CPU cost was paid)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Outbound effects
    # ------------------------------------------------------------------
    def send(self, dst: Any, msg: Any) -> None:
        """Emit a *send* effect from this endpoint."""
        self.rt.send(dst, msg)

    def send_fanout(self, dsts: Iterable[Any], msg: Any) -> None:
        """Emit one *send* effect per destination, sizing the payload once.

        Replication, heartbeats and stabilization broadcasts ship the same
        immutable payload to every peer; computing ``size_bytes()`` per
        destination is pure waste (it walks dependency vectors/lists).
        """
        self.rt.send_fanout(dsts, msg)

    def submit_local(self, cost_s: float, fn, *args) -> None:
        """Charge CPU for a locally originated task (timer handlers etc.)."""
        self.rt.submit(cost_s, fn, *args)

    # ------------------------------------------------------------------
    # Backend introspection conveniences
    # ------------------------------------------------------------------
    @property
    def cpu(self):
        """The modeled CPU behind this core (simulation backend only)."""
        return self.rt.cpu
