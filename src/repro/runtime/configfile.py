"""JSON config files for live deployments.

``repro-serve`` and ``repro-bench-live`` boot clusters from a JSON file
describing an :class:`repro.common.config.ExperimentConfig` — the same
dataclass tree the simulation uses, so a deployment can be replayed on
either backend from one description.  Example::

    {
      "cluster": {"num_dcs": 2, "num_partitions": 2, "protocol": "pocc"},
      "workload": {"kind": "mixed", "read_ratio": 0.9,
                   "clients_per_partition": 2},
      "persistence": {"enabled": true, "data_dir": "/var/lib/repro",
                      "fsync": "always"},
      "duration_s": 10.0,
      "seed": 7
    }

Unknown keys are rejected (a typo must not silently fall back to a
default); omitted keys take the dataclass defaults.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.common.config import (
    AntiEntropyConfig,
    ClockConfig,
    ClusterConfig,
    ExperimentConfig,
    LatencyConfig,
    MembershipConfig,
    PersistenceConfig,
    ProtocolConfig,
    ReplicationBatchConfig,
    ServiceTimeConfig,
    TelemetryConfig,
    TransportTuningConfig,
    WorkloadConfig,
)
from repro.common.errors import ConfigError


def _build(cls, data: dict[str, Any], context: str):
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ConfigError(
            f"{context}: unknown key(s) {sorted(unknown)}; "
            f"valid keys: {sorted(field_names)}"
        )
    return cls(**data)


def _tuples(rows) -> tuple[tuple[float, ...], ...]:
    return tuple(tuple(row) for row in rows)


def experiment_config_from_dict(data: dict[str, Any]) -> ExperimentConfig:
    """Hydrate an :class:`ExperimentConfig` from a plain JSON-style dict."""
    data = dict(data)
    cluster_data = dict(data.pop("cluster", {}))
    for key, sub_cls in (("latency", LatencyConfig),
                         ("clocks", ClockConfig),
                         ("service", ServiceTimeConfig),
                         ("protocol_config", ProtocolConfig),
                         ("repl_batch", ReplicationBatchConfig),
                         ("anti_entropy", AntiEntropyConfig),
                         ("transport", TransportTuningConfig),
                         ("telemetry", TelemetryConfig),
                         ("membership", MembershipConfig)):
        if key in cluster_data:
            sub = dict(cluster_data[key])
            if key == "latency" and "inter_dc_s" in sub:
                sub["inter_dc_s"] = _tuples(sub["inter_dc_s"])
            if (key == "membership"
                    and sub.get("initial_members") is not None):
                sub["initial_members"] = tuple(sub["initial_members"])
            cluster_data[key] = _build(sub_cls, sub, f"cluster.{key}")
    cluster = _build(ClusterConfig, cluster_data, "cluster")
    workload = _build(WorkloadConfig, dict(data.pop("workload", {})),
                      "workload")
    persistence = _build(PersistenceConfig,
                         dict(data.pop("persistence", {})), "persistence")
    config = _build(
        ExperimentConfig,
        {**data, "cluster": cluster, "workload": workload,
         "persistence": persistence},
        "experiment",
    )
    config.validate()
    return config


def experiment_config_to_dict(config: ExperimentConfig) -> dict[str, Any]:
    """The JSON-ready inverse of :func:`experiment_config_from_dict`."""
    tree = dataclasses.asdict(config)
    latency = tree["cluster"]["latency"]
    latency["inter_dc_s"] = [list(row) for row in latency["inter_dc_s"]]
    return tree


def load_experiment_config(path: str) -> ExperimentConfig:
    """Read and validate a JSON deployment description."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(data, dict):
        raise ConfigError(f"{path}: top level must be a JSON object")
    return experiment_config_from_dict(data)


def save_experiment_config(config: ExperimentConfig, path: str) -> None:
    """Write ``config`` as a JSON deployment description."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(experiment_config_to_dict(config), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
