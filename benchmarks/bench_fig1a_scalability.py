"""Figure 1a — throughput while varying the number of partitions.

Paper claim: POCC and Cure* achieve basically the same throughput at every
deployment size (optimism costs no throughput)."""

from benchmarks.common import relative_gap, run_figure


def test_fig1a_scalability(benchmark):
    data = run_figure(benchmark, "1a")
    pocc = data.ys("POCC")
    cure = data.ys("Cure*")

    # Both systems scale: throughput grows with partitions (only checkable
    # when the scale preset sweeps more than one deployment size).
    if len(pocc) > 1:
        assert pocc[-1] > pocc[0]
        assert cure[-1] > cure[0]
    # The two systems stay close at every size (paper: overlapping lines).
    for p, c in zip(pocc, cure):
        assert relative_gap(p, c) < 0.30, (p, c)
