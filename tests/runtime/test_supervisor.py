"""Supervisor lifecycle acceptance: ``repro-supervise`` end to end.

Three gates:

* SIGTERM to the supervisor fans out to every child, the children run
  the graceful WAL-before-transport shutdown, and the supervisor exits
  0 — the normal teardown of a multi-process deployment;
* a SIGKILLed child fails fast: the supervisor stops the remaining
  children and propagates the death as its own non-zero exit status
  (``128 + signum``), so a half-dead deployment can never look healthy;
* the PR-4 kill/restart chaos gate still holds when the victim runs one
  process layer deeper, behind a one-child supervisor tree: SIGKILL the
  supervisor, PDEATHSIG reaps the serve child, and the restarted tree
  recovers the same data directory with zero causal violations and zero
  acknowledged-write loss.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    PersistenceConfig,
    WorkloadConfig,
)
from repro.runtime.chaos import CrashFault, run_crash_experiment
from repro.runtime.supervisor import subprocess_env

#: Below the crash tests' 7643/7700 range and the live tests' 9000.
_SIGTERM_PORT = 7810
_SIGKILL_PORT = 7830
_CRASH_PORT = 7860


def _start_supervisor(log_dir: Path, base_port: int,
                      extra: tuple = ()) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro.runtime.supervisor",
        "--protocol", "pocc", "--dcs", "2", "--partitions", "1",
        "--clients", "1", "--base-port", str(base_port),
        "--log-dir", str(log_dir), *extra,
    ]
    stderr = open(log_dir / "supervisor.log", "ab")
    try:
        return subprocess.Popen(command, env=subprocess_env(),
                                stdout=stderr, stderr=stderr)
    finally:
        stderr.close()


def _wait_for_listening(log_dir: Path, labels: list[str],
                        timeout_s: float = 30.0) -> None:
    """Every child logs a ``listening on`` line once its socket is
    bound; polling the logs avoids poking the real ports (a probe
    connection would show up in the servers' error accounting)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        ready = 0
        for label in labels:
            log_path = log_dir / f"{label}.log"
            try:
                if "listening on" in log_path.read_text(errors="replace"):
                    ready += 1
            except OSError:
                pass
        if ready == len(labels):
            return
        time.sleep(0.1)
    raise AssertionError(
        f"children {labels} never reported listening; supervisor log:\n"
        + (log_dir / "supervisor.log").read_text(errors="replace")
    )


def _reap(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.kill()
        proc.wait()


def test_sigterm_fans_out_and_exits_zero(tmp_path):
    proc = _start_supervisor(tmp_path, _SIGTERM_PORT)
    try:
        _wait_for_listening(tmp_path, ["dc0-p0", "dc1-p0"])
        children = json.loads((tmp_path / "children.json").read_text())
        assert len(children) == 2
        assert all(child["returncode"] is None for child in children)

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        _reap(proc)
    # Every child took the graceful path and said so.
    for label in ("dc0-p0", "dc1-p0"):
        assert "clean shutdown" in (tmp_path / f"{label}.log").read_text()
    children = json.loads((tmp_path / "children.json").read_text())
    assert all(child["returncode"] == 0 for child in children)


def test_sigkilled_child_fails_the_supervisor(tmp_path):
    proc = _start_supervisor(tmp_path, _SIGKILL_PORT)
    try:
        _wait_for_listening(tmp_path, ["dc0-p0", "dc1-p0"])
        children = json.loads((tmp_path / "children.json").read_text())
        victim = next(c for c in children
                      if c["dc"] == 0 and c["partition"] == 0)

        os.kill(victim["pid"], signal.SIGKILL)
        # The child's SIGKILL propagates as the supervisor's own status.
        assert proc.wait(timeout=30) == 128 + signal.SIGKILL
    finally:
        _reap(proc)
    children = {(c["dc"], c["partition"]): c for c in json.loads(
        (tmp_path / "children.json").read_text()
    )}
    assert children[(0, 0)]["returncode"] == -signal.SIGKILL
    # The sibling was stopped, not orphaned (its death may be clean or
    # may report the dead peer — either way it exited and was recorded).
    assert children[(1, 0)]["returncode"] is not None


def test_crash_gate_holds_through_the_supervisor(tmp_path):
    """The PR-4 acceptance gate with the victim one layer deeper: the
    SIGKILL lands on a one-child supervisor tree, and the restart (also
    through the supervisor) must recover from the data dir."""
    config = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=2, num_partitions=2,
                              keys_per_partition=40, protocol="pocc"),
        workload=WorkloadConfig(kind="mixed", read_ratio=0.8, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.01),
        warmup_s=0.5,
        duration_s=6.0,
        seed=11,
        verify=True,
        name="crash-supervised",
        persistence=PersistenceConfig(
            enabled=True, data_dir=str(tmp_path), fsync="always",
            snapshot_interval_s=1.0,
        ),
    )
    report = run_crash_experiment(
        config,
        # A slightly later kill than the bare-serve test: the victim
        # boots two interpreters (supervisor + child) before serving.
        CrashFault(dc=0, partition=0, kill_after_s=2.0, downtime_s=1.5),
        base_port=_CRASH_PORT,
        supervise=True,
    )
    assert report.live.violations == [], report.summary_text()
    assert report.lost_victim_writes == [], report.summary_text()
    assert report.acked_victim_writes > 0, report.summary_text()
    assert report.ops_after_restart > 0, report.summary_text()
    assert report.server_exit_code == 0, report.summary_text()
    assert report.passed
    assert report.recovered_versions >= 40
