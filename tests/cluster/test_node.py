"""Tests for the SimNode runtime adapter: CPU-mediated dispatch and the
core/adapter binding contract."""

import pytest

from repro.common.errors import SimulationError
from repro.common.types import server_address
from repro.cluster.node import SimNode
from repro.clocks.physical import PhysicalClock
from repro.protocols.core import ProtocolCore
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network


class EchoCore(ProtocolCore):
    """Charges 1 ms per message, logs (time, msg)."""

    def __init__(self, runtime, clock):
        super().__init__(runtime, clock)
        self.handled = []

    def service_time(self, msg):
        return 0.001

    def dispatch(self, msg):
        self.handled.append((self.rt.now, msg))


def _core(sim, network, address, cores=2):
    adapter = SimNode(sim, network, address, cores=cores)
    return EchoCore(adapter, PhysicalClock(sim))


def _pair(cores=2):
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.010))
    a = _core(sim, network, server_address(0, 0), cores=cores)
    b = _core(sim, network, server_address(1, 0), cores=cores)
    return sim, a, b


def test_message_charged_cpu_before_dispatch():
    sim, a, b = _pair()
    a.send(b.address, "hello")
    sim.run()
    assert b.handled == [(0.011, "hello")]  # 10ms wire + 1ms CPU
    assert b.messages_received == 1


def test_messages_queue_behind_busy_cores():
    sim, a, b = _pair(cores=1)
    for i in range(3):
        a.send(b.address, i)
    sim.run()
    times = [t for t, _ in b.handled]
    assert times == pytest.approx([0.011, 0.012, 0.013])


def test_submit_local_charges_cpu():
    sim, a, _ = _pair()
    done = []
    a.submit_local(0.005, done.append, "task")
    sim.run()
    assert done == ["task"]
    assert a.cpu.jobs_completed == 1


def test_submit_local_zero_cost_runs_inline():
    sim, a, _ = _pair()
    done = []
    a.submit_local(0.0, done.append, "now")
    assert done == ["now"]


def test_zero_service_time_dispatches_inline():
    class FreeCore(EchoCore):
        def service_time(self, msg):
            return 0.0

    sim = Simulator()
    network = Network(sim, ConstantLatency(0.010))
    adapter = SimNode(sim, network, server_address(2, 0))
    core = FreeCore(adapter, PhysicalClock(sim))
    sender = _core(sim, network, server_address(0, 1))
    sender.send(core.address, "x")
    sim.run()
    assert core.handled == [(0.010, "x")]


def test_adapter_binds_exactly_one_core():
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.010))
    adapter = SimNode(sim, network, server_address(0, 0))
    EchoCore(adapter, PhysicalClock(sim))
    with pytest.raises(SimulationError):
        EchoCore(adapter, PhysicalClock(sim))


def test_adapter_timers_drive_core_callbacks():
    sim, a, _ = _pair()
    fired = []
    handle = a.rt.schedule(0.5, fired.append, "late")
    a.rt.schedule(0.1, fired.append, "early")
    assert handle.active
    sim.run(until=0.2)
    assert fired == ["early"]
    assert handle.cancel()
    sim.run()
    assert fired == ["early"]
