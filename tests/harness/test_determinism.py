"""Determinism regression: the sim engine's tie-breaking contract.

Two runs of the same seed/config must produce *byte-identical* metrics
reports — not merely similar numbers.  This pins down the guarantees the
whole suite leans on (replayable fuzz failures, cacheable figure sweeps):
event ordering, RNG stream derivation, dict iteration, and float
arithmetic must all be stable run-to-run within a process.
"""

import json
from dataclasses import asdict

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.harness.experiment import run_experiment


def _config(protocol: str) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=40, protocol=protocol),
        workload=WorkloadConfig(kind="mixed", read_ratio=0.8, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.004),
        warmup_s=0.2,
        duration_s=1.0,
        seed=97,
        verify=True,
        name=f"determinism-{protocol}",
    )


def _report_bytes(protocol: str) -> bytes:
    result = run_experiment(_config(protocol))
    payload = asdict(result)
    return json.dumps(payload, sort_keys=True).encode("utf-8")


@pytest.mark.parametrize("protocol", ("pocc", "okapi"))
def test_metrics_reports_byte_identical_across_runs(protocol):
    assert _report_bytes(protocol) == _report_bytes(protocol)


def test_summary_text_byte_identical_across_runs():
    first = run_experiment(_config("cure")).summary_text()
    second = run_experiment(_config("cure")).summary_text()
    assert first.encode() == second.encode()


def test_different_seeds_actually_differ():
    """Guard against the degenerate way to pass the test above: the report
    must actually depend on the seed."""
    base = _config("pocc")
    a = run_experiment(base)
    b = run_experiment(ExperimentConfig(
        cluster=base.cluster, workload=base.workload, warmup_s=base.warmup_s,
        duration_s=base.duration_s, seed=base.seed + 1, verify=True,
        name=base.name,
    ))
    assert a.sim_events != b.sim_events or a.total_ops != b.total_ops
