"""The membership-off byte-identity pin.

Elastic membership is off by default, and off means *off*: a config
that spells out the disabled ``MembershipConfig`` block (and its every
default knob) produces the byte-identical per-seed sim report to one
that never mentions membership — no view object, no gossip timer, no
RNG draws, no extra sim events, modulo key placement untouched.  This
is the guarantee that keeps every pre-membership regression baseline
and pinned figure valid, and it is exactly the discipline the earlier
chaos/batching knobs established (see
``tests/integration/test_chaos_matrix.py::test_chaos_knobs_off_is_byte_identical``).
"""

import dataclasses
import json

from repro.common.config import (
    ExperimentConfig,
    MembershipConfig,
    WorkloadConfig,
    smoke_scale_cluster,
)
from repro.harness.builders import build_cluster
from repro.harness.experiment import run_experiment


def _config(spelled_out: bool) -> ExperimentConfig:
    cluster = smoke_scale_cluster("pocc")
    if spelled_out:
        cluster = dataclasses.replace(
            cluster,
            membership=MembershipConfig(
                enabled=False,
                initial_members=None,
                vnodes=64,
                gossip_interval_s=0.5,
                handoff_chunk_versions=128,
                commit_delay_s=0.25,
                retry_interval_s=0.5,
                redirect_backoff_s=0.05,
            ),
        )
    return ExperimentConfig(
        cluster=cluster,
        workload=WorkloadConfig(kind="mixed", read_ratio=0.7, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.005),
        warmup_s=0.2,
        duration_s=1.2,
        seed=4177,
        verify=True,
        name="membership-off-pin",
    )


def _report_bytes(result) -> str:
    payload = dataclasses.asdict(result)
    # The config dict legitimately differs (one spells the block out);
    # everything *measured* must not.
    payload.pop("config")
    return json.dumps(payload, sort_keys=True, default=repr)


def test_membership_off_is_byte_identical():
    first = run_experiment(_config(spelled_out=False))
    second = run_experiment(_config(spelled_out=True))
    assert _report_bytes(first) == _report_bytes(second)
    assert first.verification == second.verification
    assert first.sim_events == second.sim_events


def test_membership_off_builds_no_view_and_no_manager():
    built = build_cluster(_config(spelled_out=True))
    assert built.topology.view is None
    for server in built.servers.values():
        assert server._membership is None
        assert server.view_epoch == 0
