"""Tests for the zipfian rank generator."""

import random

import pytest

from repro.common.errors import ConfigError
from repro.workload.zipf import ZipfGenerator


def test_samples_in_range():
    zipf = ZipfGenerator(100, 0.99, random.Random(1))
    for _ in range(1000):
        assert 0 <= zipf.sample() < 100


def test_head_heavier_than_tail():
    zipf = ZipfGenerator(1000, 0.99, random.Random(2))
    samples = [zipf.sample() for _ in range(20000)]
    head = sum(1 for s in samples if s < 10)
    tail = sum(1 for s in samples if s >= 990)
    assert head > 20 * tail


def test_theta_zero_is_uniform():
    zipf = ZipfGenerator(10, 0.0, random.Random(3))
    counts = [0] * 10
    n = 50000
    for _ in range(n):
        counts[zipf.sample()] += 1
    for count in counts:
        assert abs(count - n / 10) < n * 0.01


def test_probability_masses_sum_to_one():
    zipf = ZipfGenerator(50, 0.99, random.Random(4))
    total = sum(zipf.probability(rank) for rank in range(50))
    assert total == pytest.approx(1.0)


def test_probability_decreasing_in_rank():
    zipf = ZipfGenerator(50, 0.99, random.Random(4))
    probs = [zipf.probability(rank) for rank in range(50)]
    assert probs == sorted(probs, reverse=True)


def test_empirical_matches_theoretical_head_mass():
    zipf = ZipfGenerator(100, 0.99, random.Random(5))
    n = 40000
    hits = sum(1 for _ in range(n) if zipf.sample() == 0)
    assert hits / n == pytest.approx(zipf.probability(0), rel=0.1)


def test_single_item_always_rank_zero():
    zipf = ZipfGenerator(1, 0.99, random.Random(6))
    assert zipf.sample() == 0


def test_bad_parameters_rejected():
    with pytest.raises(ConfigError):
        ZipfGenerator(0, 0.99, random.Random(1))
    with pytest.raises(ConfigError):
        ZipfGenerator(10, -0.5, random.Random(1))
    zipf = ZipfGenerator(10, 0.99, random.Random(1))
    with pytest.raises(ConfigError):
        zipf.probability(10)


def test_deterministic_given_seed():
    a = ZipfGenerator(100, 0.99, random.Random(42))
    b = ZipfGenerator(100, 0.99, random.Random(42))
    assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]
