"""WaitQueue edge cases around the core/adapter split.

The queue is exercised here against a stub server (no cluster, no
engine): the contract under test is pure bookkeeping — what ``notify``,
``drop`` and ``expired`` do to waiters that were already satisfied,
drained or cancelled.  The HA sweep (a timeout firing *after* the waiter
it targeted was satisfied) and cancellation of already-drained waiters
both hit exactly these paths.
"""

from repro.protocols.base import WaitQueue


class FakeRuntime:
    def __init__(self):
        self.now = 0.0


class FakeServer:
    """The slice of CausalServer that WaitQueue touches."""

    def __init__(self):
        self.rt = FakeRuntime()
        self.woken = []

    def wake(self, waiter):
        self.woken.append(waiter)
        waiter.resume()


def _park(queue, flag, log, label):
    return queue.wait(
        predicate=lambda: flag["ready"],
        resume=lambda: log.append(label),
        cause="test",
    )


def test_notify_drains_satisfied_waiter_exactly_once():
    server = FakeServer()
    queue = WaitQueue(server)
    flag = {"ready": False}
    log = []
    _park(queue, flag, log, "op")
    queue.notify()
    assert log == [] and len(queue) == 1

    flag["ready"] = True
    queue.notify()
    assert log == ["op"] and len(queue) == 0
    # Further notifies must not re-run the drained waiter.
    queue.notify()
    assert log == ["op"]


def test_timeout_firing_after_satisfaction_sees_no_waiter():
    """The HA sweep pattern: a block-timeout sweep that fires *after* the
    blocked operation was satisfied must find nothing to abort."""
    server = FakeServer()
    queue = WaitQueue(server)
    flag = {"ready": False}
    log = []
    waiter = _park(queue, flag, log, "op")

    server.rt.now = 5.0  # long past any timeout
    assert queue.expired(1.0) == [waiter]  # still blocked: sweep sees it

    flag["ready"] = True
    queue.notify()  # satisfied before the sweep runs
    assert log == ["op"]
    assert queue.expired(1.0) == []  # the late sweep must see nothing
    # A sweep that cached the waiter object may still drop() it: harmless.
    queue.drop(waiter)
    queue.notify()
    assert log == ["op"] and len(queue) == 0


def test_cancel_of_already_drained_waiter_is_harmless():
    server = FakeServer()
    queue = WaitQueue(server)
    flag = {"ready": True}
    log = []
    waiter = _park(queue, flag, log, "op")
    queue.notify()
    assert log == ["op"]

    queue.drop(waiter)  # cancel after the waiter already ran
    assert waiter.cancelled
    queue.notify()
    assert log == ["op"]  # no double resume
    assert len(queue) == 0


def test_cancelled_waiter_is_skipped_even_when_satisfied():
    server = FakeServer()
    queue = WaitQueue(server)
    flag = {"ready": False}
    log = []
    waiter = _park(queue, flag, log, "op")
    queue.drop(waiter)
    assert len(queue) == 0  # cancelled waiters no longer count

    flag["ready"] = True
    queue.notify()
    assert log == []  # dropped before drain: must never resume
    assert queue.expired(0.0) == []


def test_expired_ignores_cancelled_and_respects_age():
    server = FakeServer()
    queue = WaitQueue(server)
    flag = {"ready": False}
    log = []
    old = _park(queue, flag, log, "old")
    server.rt.now = 0.5
    young = _park(queue, flag, log, "young")
    server.rt.now = 1.2
    assert queue.expired(1.0) == [old]
    queue.drop(old)
    assert queue.expired(1.0) == []
    server.rt.now = 2.0
    assert queue.expired(1.0) == [young]
