"""Key-popularity distributions beyond the paper's zipf(0.99).

The paper samples keys "within each partition according to a zipf
distribution with parameter 0.99" (Section V-A).  Real deployments are
also characterized with uniform and hotspot shapes (YCSB's "hotspot"
distribution: a fraction of operations targets a small fraction of the
key space uniformly), so the workload layer accepts any of the three.

All choosers return a key *rank* in ``[0, n)``; rank 0 is the most
popular key of a partition.
"""

from __future__ import annotations

import random

from repro.common.errors import ConfigError
from repro.workload.zipf import ZipfGenerator


class ZipfRanks:
    """The paper's default: zipf(theta) over per-partition ranks."""

    def __init__(self, n: int, theta: float, rng: random.Random):
        self._zipf = ZipfGenerator(n, theta, rng)

    def sample(self) -> int:
        return self._zipf.sample()


class UniformRanks:
    """Every key equally likely (the no-skew control)."""

    def __init__(self, n: int, rng: random.Random):
        if n < 1:
            raise ConfigError("need at least one key")
        self._n = n
        self._rng = rng

    def sample(self) -> int:
        return self._rng.randrange(self._n)


class HotspotRanks:
    """YCSB-style hotspot: ``hot_ops`` of traffic hits the ``hot_keys``
    head of the ranking uniformly; the rest spreads over the tail."""

    def __init__(
        self,
        n: int,
        hot_ops: float,
        hot_keys: float,
        rng: random.Random,
    ):
        if n < 1:
            raise ConfigError("need at least one key")
        if not 0.0 < hot_ops <= 1.0:
            raise ConfigError("hot_ops must be in (0, 1]")
        if not 0.0 < hot_keys <= 1.0:
            raise ConfigError("hot_keys must be in (0, 1]")
        self._n = n
        self._hot_ops = hot_ops
        self._hot_count = max(1, int(n * hot_keys))
        self._rng = rng

    def sample(self) -> int:
        if self._hot_count >= self._n:
            return self._rng.randrange(self._n)
        if self._rng.random() < self._hot_ops:
            return self._rng.randrange(self._hot_count)
        return self._rng.randrange(self._hot_count, self._n)


def make_rank_chooser(
    distribution: str,
    n: int,
    rng: random.Random,
    *,
    zipf_theta: float = 0.99,
    hotspot_ops: float = 0.9,
    hotspot_keys: float = 0.1,
):
    """Build the rank chooser named by ``distribution``."""
    if distribution == "zipf":
        return ZipfRanks(n, zipf_theta, rng)
    if distribution == "uniform":
        return UniformRanks(n, rng)
    if distribution == "hotspot":
        return HotspotRanks(n, hotspot_ops, hotspot_keys, rng)
    raise ConfigError(
        f"unknown key distribution {distribution!r}; "
        "choose zipf, uniform or hotspot"
    )
