"""Experiment scale presets.

The paper's testbed is 3 DCs x 32 partitions with 25 ms think time and up to
hundreds of clients per partition — hours of simulation.  Every figure can
run at three scales:

* ``smoke``  — seconds; used by the test suite to check shapes exist.
* ``bench``  — minutes; the default for ``pytest benchmarks/`` and
  EXPERIMENTS.md (reduced partitions/clients/think time, same protocol
  constants: heartbeats 1 ms, stabilization 5 ms, zipf 0.99).
* ``paper``  — the paper's deployment shape (32 partitions, 25 ms think
  time); slow, for offline reproduction runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError


@dataclass(frozen=True, slots=True)
class FigureScale:
    """Knobs that trade fidelity for wall-clock time."""

    name: str
    num_dcs: int
    #: Fixed partition count for single-deployment figures (1b, 1c, 2a...).
    partitions: int
    #: Partition sweep for Figure 1a.
    partition_sweep: tuple[int, ...]
    keys_per_partition: int
    think_time_s: float
    #: GET:PUT ratio (N of N:1) for the load-curve figures (paper: 32).
    getput_ratio: int
    #: Clients/partition used to measure "maximum achievable throughput".
    saturating_clients: int
    #: Clients/partition sweep for the response-time/staleness curves.
    client_sweep: tuple[int, ...]
    #: GET:PUT ratio sweep for Figure 1c (the N of N:1).
    ratio_sweep: tuple[int, ...]
    #: Contacted-partitions sweep for Figure 3a.
    tx_partition_sweep: tuple[int, ...]
    #: Clients/partition sweep for Figures 3b-3d.
    tx_client_sweep: tuple[int, ...]
    warmup_s: float
    duration_s: float
    seed: int = 42
    extra: dict = field(default_factory=dict)


SCALES: dict[str, FigureScale] = {
    "smoke": FigureScale(
        name="smoke",
        num_dcs=3,
        partitions=2,
        partition_sweep=(2,),
        keys_per_partition=100,
        think_time_s=0.005,
        getput_ratio=4,
        saturating_clients=16,
        client_sweep=(4, 16),
        ratio_sweep=(4, 1),
        tx_partition_sweep=(2,),
        tx_client_sweep=(2, 8),
        warmup_s=0.3,
        duration_s=0.8,
    ),
    "bench": FigureScale(
        name="bench",
        num_dcs=3,
        partitions=6,
        partition_sweep=(2, 4, 6),
        keys_per_partition=300,
        think_time_s=0.010,
        getput_ratio=6,
        saturating_clients=40,
        client_sweep=(4, 8, 16, 24, 32, 40),
        ratio_sweep=(32, 16, 8, 4, 2, 1),
        tx_partition_sweep=(1, 2, 3, 4, 6),
        tx_client_sweep=(2, 4, 8, 16, 24),
        warmup_s=0.5,
        duration_s=2.0,
    ),
    "paper": FigureScale(
        name="paper",
        num_dcs=3,
        partitions=32,
        partition_sweep=(2, 4, 8, 16, 24, 32),
        keys_per_partition=10_000,
        think_time_s=0.025,
        getput_ratio=32,
        saturating_clients=96,
        client_sweep=(8, 16, 32, 48, 64, 96),
        ratio_sweep=(32, 16, 8, 4, 2, 1),
        tx_partition_sweep=(1, 2, 4, 8, 16, 24, 32),
        tx_client_sweep=(16, 32, 64, 96, 128, 160, 224),
        warmup_s=1.0,
        duration_s=5.0,
    ),
}


def get_scale(name: str) -> FigureScale:
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        ) from None
