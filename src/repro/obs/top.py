"""``repro-top``: a cluster-wide live observer over the metrics endpoints.

Polls the ``/vars.json`` endpoint of every process in a deployment and
renders one table row per process/partition — throughput (from counter
deltas between polls), visibility-latency p99, GSS/stable lag, wait-queue
and replication-batch depth, event-loop lag, WAL fsync p99 and fault
drops — refreshed every ``--interval`` seconds.  ``--json`` emits the
aggregated document instead (one poll with ``--once``), which is what
the CI probe asserts against.

Endpoint discovery, most-specific first:

* ``--endpoints host:port,host:port`` — explicit list;
* ``--children children.json`` — a ``repro-supervise`` placement file
  (each child records its ``metrics_port``);
* ``--config cluster.json [--metrics-port BASE]`` — derive the
  deterministic metrics port map exactly as the serving processes do
  (``metrics_base_port + i`` in ``Topology.all_servers()`` order).

Examples::

    repro-top --children supervise-logs/children.json
    repro-top --config cluster.json --json --once
    repro-top --endpoints 127.0.0.1:7990,127.0.0.1:7991 --interval 2
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

#: Per-endpoint scrape timeout; a hung process must not freeze the table.
SCRAPE_TIMEOUT_S = 2.0


def _fetch_vars(host: str, port: int) -> dict | None:
    url = f"http://{host}:{port}/vars.json"
    try:
        with urllib.request.urlopen(url, timeout=SCRAPE_TIMEOUT_S) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return None


def _family(doc: dict, name: str) -> dict:
    return doc.get("metrics", {}).get(name, {})


def _sum_family(doc: dict, name: str) -> float:
    return sum(v for v in _family(doc, name).values()
               if isinstance(v, (int, float)))


def _max_family(doc: dict, name: str) -> float:
    values = [v for v in _family(doc, name).values()
              if isinstance(v, (int, float))]
    return max(values) if values else 0.0


def _summary_merge(doc: dict, name: str) -> dict:
    """Fold a summary family's label-sets into one count-weighted view
    (p99 folds as the max — the conservative tail estimate)."""
    merged = {"count": 0, "sum": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
    for value in _family(doc, name).values():
        if not isinstance(value, dict):
            continue
        count = value.get("count", 0)
        merged["count"] += count
        merged["sum"] += value.get("mean", 0.0) * count
        merged["p50"] = max(merged["p50"], value.get("p50", 0.0))
        merged["p99"] = max(merged["p99"], value.get("p99", 0.0))
        merged["max"] = max(merged["max"], value.get("max", 0.0))
    return merged


def endpoint_row(label: str, doc: dict,
                 prev: tuple[float, float] | None) -> dict:
    """One endpoint's table row; ``prev`` is (poll time, ops total) from
    the previous poll for the throughput delta."""
    ops_total = _sum_family(doc, "repro_client_ops_total")
    now = time.monotonic()
    ops_s = None
    if prev is not None:
        prev_t, prev_ops = prev
        if now > prev_t:
            ops_s = (ops_total - prev_ops) / (now - prev_t)
    visibility = _summary_merge(doc, "repro_visibility_lag_seconds")
    fsync = _summary_merge(doc, "repro_wal_fsync_seconds")
    return {
        "endpoint": label,
        "servers": doc.get("servers", []),
        "protocol": doc.get("protocol", ""),
        "ops_total": ops_total,
        "ops_s": ops_s,
        "visibility_p99_s": visibility["p99"],
        "visibility_samples": visibility["count"],
        "stable_lag_s": _max_family(doc, "repro_stable_lag_seconds"),
        "view_epoch": _max_family(doc, "repro_view_epoch"),
        "wait_queue_depth": _sum_family(doc, "repro_wait_queue_depth"),
        "repl_batch_depth": _sum_family(doc,
                                        "repro_repl_batch_occupancy"),
        "loop_lag_s": _max_family(doc, "repro_event_loop_lag_seconds"),
        "wal_fsync_p99_s": fsync["p99"],
        "wal_fsyncs": fsync["count"],
        "fault_drops": _sum_family(doc, "repro_link_fault_drops_total"),
        "messages_total": _sum_family(doc, "repro_messages_total"),
        "uptime_seconds": doc.get("uptime_seconds", 0.0),
        "_poll": (now, ops_total),
    }


def aggregate_rows(rows: list[dict]) -> dict:
    """The cluster-wide roll-up ``--json`` leads with."""
    reachable = [r for r in rows if not r.get("down")]
    ops_rates = [r["ops_s"] for r in reachable if r.get("ops_s") is not None]
    return {
        "endpoints": len(rows),
        "reachable": len(reachable),
        "ops_total": sum(r["ops_total"] for r in reachable),
        "ops_s": sum(ops_rates) if ops_rates else None,
        "visibility_p99_s": max(
            (r["visibility_p99_s"] for r in reachable), default=0.0),
        "visibility_samples": sum(
            r["visibility_samples"] for r in reachable),
        "stable_lag_s": max(
            (r["stable_lag_s"] for r in reachable), default=0.0),
        "view_epoch": max(
            (r.get("view_epoch", 0.0) for r in reachable), default=0.0),
        "wait_queue_depth": sum(r["wait_queue_depth"] for r in reachable),
        "repl_batch_depth": sum(r["repl_batch_depth"] for r in reachable),
        "loop_lag_s": max((r["loop_lag_s"] for r in reachable),
                          default=0.0),
        "wal_fsync_p99_s": max(
            (r["wal_fsync_p99_s"] for r in reachable), default=0.0),
        "fault_drops": sum(r["fault_drops"] for r in reachable),
    }


def render_table(rows: list[dict]) -> str:
    header = (f"{'endpoint':<16} {'ops/s':>8} {'ops':>9} "
              f"{'vis p99':>9} {'lag':>8} {'waitq':>6} {'batchq':>7} "
              f"{'loop':>7} {'fsync p99':>10} {'drops':>6} {'epoch':>6}")
    lines = [header, "-" * len(header)]
    for row in rows:
        if row.get("down"):
            lines.append(f"{row['endpoint']:<16} {'DOWN':>8}")
            continue
        ops_s = f"{row['ops_s']:,.0f}" if row["ops_s"] is not None else "-"
        lines.append(
            f"{row['endpoint']:<16} {ops_s:>8} {row['ops_total']:>9,.0f} "
            f"{row['visibility_p99_s'] * 1000:>7.2f}ms "
            f"{row['stable_lag_s'] * 1000:>6.1f}ms "
            f"{row['wait_queue_depth']:>6.0f} "
            f"{row['repl_batch_depth']:>7.0f} "
            f"{row['loop_lag_s'] * 1000:>5.1f}ms "
            f"{row['wal_fsync_p99_s'] * 1000:>8.2f}ms "
            f"{row['fault_drops']:>6.0f} "
            f"{row.get('view_epoch', 0):>6.0f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Endpoint discovery
# ----------------------------------------------------------------------
def _endpoints_from_children(path: str) -> list[tuple[str, str, int]]:
    with open(path, "r", encoding="utf-8") as handle:
        children = json.load(handle)
    endpoints = []
    for child in children:
        port = child.get("metrics_port")
        if port:
            label = f"dc{child['dc']}-p{child['partition']}"
            endpoints.append((label, "127.0.0.1", port))
    if not endpoints:
        raise SystemExit(
            f"{path}: no child records a metrics_port — was the "
            f"supervised cluster started with --metrics-port?"
        )
    return endpoints


def _endpoints_from_config(path: str, host: str,
                           base_port: int | None) -> list[tuple[str, str, int]]:
    from repro.cluster.topology import Topology
    from repro.runtime.configfile import load_experiment_config
    from repro.runtime.transport import metrics_port_map

    config = load_experiment_config(path)
    telemetry = config.cluster.telemetry
    base = base_port if base_port is not None \
        else telemetry.metrics_base_port
    if not base:
        raise SystemExit(
            "the config carries no telemetry.metrics_base_port; pass "
            "--metrics-port BASE (the value the servers were started "
            "with)"
        )
    topology = Topology(config.cluster.num_dcs,
                        config.cluster.num_partitions)
    ports = metrics_port_map(topology, base, host=host)
    return [(f"dc{addr.dc}-p{addr.partition}", entry[0], entry[1])
            for addr, entry in ports.items()]


def _endpoints_explicit(spec: str) -> list[tuple[str, str, int]]:
    endpoints = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        host, _, port = item.rpartition(":")
        endpoints.append((item, host or "127.0.0.1", int(port)))
    return endpoints


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live per-partition observer over a deployment's "
                    "metrics endpoints (see docs/observability.md).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--children", metavar="PATH",
                        help="repro-supervise children.json (each child "
                             "records its metrics_port)")
    source.add_argument("--config", metavar="PATH",
                        help="cluster JSON; derives the deterministic "
                             "metrics port map")
    source.add_argument("--endpoints", metavar="H:P,H:P",
                        help="explicit comma-separated endpoint list")
    parser.add_argument("--host", default="127.0.0.1",
                        help="scrape host for --config (default: "
                             "127.0.0.1)")
    parser.add_argument("--metrics-port", type=int, metavar="BASE",
                        help="metrics base port override for --config")
    parser.add_argument("--interval", type=float, default=2.0, metavar="S",
                        help="poll period in seconds (default: 2)")
    parser.add_argument("--once", action="store_true",
                        help="poll once and exit (ops/s needs two polls; "
                             "--once reports totals)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit one JSON document per poll instead of "
                             "the table")
    return parser


def _poll(endpoints: list[tuple[str, str, int]],
          previous: dict[str, tuple[float, float]]) -> list[dict]:
    rows = []
    for label, host, port in endpoints:
        doc = _fetch_vars(host, port)
        if doc is None:
            rows.append({"endpoint": label, "host": host, "port": port,
                         "down": True})
            continue
        row = endpoint_row(label, doc, previous.get(label))
        previous[label] = row.pop("_poll")
        row.update(host=host, port=port)
        rows.append(row)
    return rows


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.children:
        endpoints = _endpoints_from_children(args.children)
    elif args.config:
        endpoints = _endpoints_from_config(args.config, args.host,
                                           args.metrics_port)
    else:
        endpoints = _endpoints_explicit(args.endpoints)

    previous: dict[str, tuple[float, float]] = {}
    clear = "\x1b[H\x1b[2J" if sys.stdout.isatty() else ""
    while True:
        rows = _poll(endpoints, previous)
        if args.as_json:
            document = {"aggregate": aggregate_rows(rows),
                        "endpoints": rows}
            print(json.dumps(document, sort_keys=True))
        else:
            if clear:
                print(clear, end="")
            print(render_table(rows))
        if args.once:
            # The CI probe: every endpoint must answer.
            return 0 if not any(r.get("down") for r in rows) else 1
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
