"""The runnable examples must stay runnable (fast ones, end to end)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_social_network_example(capsys):
    out = _run("social_network.py", capsys)
    assert "--- eventual ---" in out
    assert out.count("anomaly") == 3
    # The unsafe protocol shows the anomaly, the causal ones do not.
    eventual, pocc, cure = out.split("---")[2::2]
    assert "YES" in eventual
    assert "YES" not in pocc
    assert "YES" not in cure


def test_partition_failover_example(capsys):
    out = _run("partition_failover.py", capsys)
    assert "PARTITION" in out
    assert "demoted" in out
    assert "promoted back" in out
    assert "stayed available" in out


def test_dc_failure_recovery_example(capsys):
    out = _run("dc_failure_recovery.py", capsys)
    assert "lost updates discarded" in out
    assert "diverge on 0 key(s) after recovery" in out
    assert "healthy" in out


def test_okapi_universal_stability_example(capsys):
    out = _run("okapi_universal_stability.py", capsys)
    assert "--- cure ---" in out
    assert "--- okapi ---" in out
    assert "never became visible" not in out
    assert "uniform visibility" in out


def test_metadata_spectrum_example(capsys):
    out = _run("metadata_spectrum.py", capsys)
    for protocol in ("pocc", "occ_scalar", "cure", "gentlerain", "okapi",
                     "cops"):
        assert protocol in out
    assert "How to read this" in out


@pytest.mark.skipif(sys.platform == "win32", reason="paths")
def test_examples_exist_and_have_docstrings():
    import ast

    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 5
    for script in scripts:
        text = script.read_text(encoding="utf-8")
        module = ast.parse(text)
        assert ast.get_docstring(module), (
            f"{script.name} lacks a module docstring"
        )
        assert "__main__" in text, f"{script.name} is not runnable"
