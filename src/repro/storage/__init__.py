"""Multiversion key-value storage.

Section IV-A's item metadata: a version is the tuple ⟨k, v, sr, ut, dv⟩.
Versions of a key form a chain ordered by the last-writer-wins total order
(highest update time wins; ties broken by lowest source replica).  The
partition store holds one chain per key and implements the transaction-aware
garbage collection rule of Section IV-B.
"""

from repro.storage.chain import VersionChain
from repro.storage.gc import GcStats, collect_chain
from repro.storage.store import PartitionStore
from repro.storage.version import Version

__all__ = [
    "GcStats",
    "PartitionStore",
    "Version",
    "VersionChain",
    "collect_chain",
]
