"""GentleRain*: scalar-GST visibility, O(1) metadata, coarser freshness."""

import pytest

import helpers
from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.harness.experiment import run_experiment


@pytest.fixture
def built():
    return helpers.make_cluster(protocol="gentlerain")


def test_put_then_get_local(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "local")
    reply = helpers.get(built, client, key)
    assert reply.value == "local"


def test_gst_advances(built):
    helpers.settle(built, 0.5)
    for server in built.servers.values():
        assert server.gst > 0
        assert server.gst <= min(server.vv)


def test_remote_version_hidden_until_gst_covers(built):
    """Scalar stability: the injected remote version stays invisible while
    its timestamp exceeds the GST."""
    from repro.protocols import messages as m
    from repro.storage.version import Version

    helpers.settle(built, 0.5)
    key = helpers.key_on_partition(built, 0)
    server1 = built.servers[built.topology.server(1, 0)]
    ut = server1.gst + 300_000
    server1.apply_replicate(m.Replicate(
        version=Version(key=key, value="fresh", sr=0, ut=ut, dv=(0, 0, 0))
    ))
    reader = helpers.client_at(built, dc=1)
    reply = helpers.get(built, reader, key, timeout_s=0.2)
    assert reply.value == 0  # hidden
    helpers.settle(built, 0.6)
    reply = helpers.get(built, reader, key)
    assert reply.value == "fresh"


def test_client_tracks_scalars_not_vectors(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    put_reply = helpers.put(built, client, key, "x")
    assert client.dt == put_reply.ut
    helpers.settle(built, 0.3)
    helpers.get(built, client, key)
    assert client.gst_seen > 0


def test_metadata_smaller_than_vector_protocols(built):
    """The whole point of the scalar design: smaller messages."""
    from repro.protocols import messages as m

    gr_req = m.GetReq(key="k", rdv=[1, 2], client=built.clients[0].address,
                      op_id=1)
    vec_req = m.GetReq(key="k", rdv=[1, 2, 3],
                       client=built.clients[0].address, op_id=1)
    assert gr_req.size_bytes() < vec_req.size_bytes()


def test_lww_convergence(built):
    key = helpers.key_on_partition(built, 0)
    for dc in range(3):
        helpers.put(built, helpers.client_at(built, dc=dc), key, f"dc{dc}")
    helpers.settle(built, 1.0)
    heads = {
        built.servers[built.topology.server(dc, 0)].store.freshest(key)
        .identity()
        for dc in range(3)
    }
    assert len(heads) == 1


def test_tx_snapshot_consistent_cut(built):
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0)
    key_b = helpers.key_on_partition(built, 1)
    helpers.put(built, client, key_a, "a1")
    helpers.put(built, client, key_b, "b1")
    helpers.settle(built, 0.5)  # let the GST cover both writes
    reader = helpers.client_at(built, dc=0, partition=1)
    reply = helpers.ro_tx(built, reader, [key_a, key_b])
    values = {item.key: item.value for item in reply.versions}
    assert values == {key_a: "a1", key_b: "b1"}


def test_randomized_history_causally_consistent():
    config = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=40,
                              protocol="gentlerain"),
        workload=WorkloadConfig(kind="get_put", gets_per_put=3,
                                clients_per_partition=3,
                                think_time_s=0.004),
        warmup_s=0.2,
        duration_s=1.2,
        verify=True,
        name="gentlerain-audit",
    )
    result = run_experiment(config)
    assert result.verification["violations"] == 0
    assert result.divergences == 0


def test_staler_than_cure_on_same_workload():
    """One slow link gates every DC under a scalar GST, so GentleRain*
    should be at least as stale as Cure* on identical workloads."""
    results = {}
    for protocol in ("gentlerain", "cure"):
        config = ExperimentConfig(
            cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                                  keys_per_partition=60, protocol=protocol),
            workload=WorkloadConfig(kind="get_put", gets_per_put=3,
                                    clients_per_partition=4,
                                    think_time_s=0.004),
            warmup_s=0.3,
            duration_s=1.5,
            seed=17,
        )
        results[protocol] = run_experiment(config)
    gr_old = results["gentlerain"].get_staleness["pct_old"]
    cure_old = results["cure"].get_staleness["pct_old"]
    assert gr_old >= cure_old * 0.8  # scalar horizon is never finer


def test_gc_trims_with_scalar_rule(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    for i in range(15):
        helpers.put(built, client, key, i)
    helpers.settle(built, 1.2)
    server = built.servers[built.topology.server(0, 0)]
    assert len(server.store.chain(key)) <= 3
    assert server.store.chain(key).head().value == 14
