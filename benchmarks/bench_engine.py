"""Micro-benchmarks of the simulation substrate itself.

These justify the substrate substitution: the event engine must push
hundreds of thousands of events per second for paper-scale sweeps to be
tractable, and zipf sampling / vector ops are on the per-operation hot
path.  The network send/deliver, storage chain-read and full-experiment
benches cover the remaining hot paths that ``benchmarks/perf_trajectory.py``
tracks across PRs (see ``BENCH_*.json``)."""

import random

from repro.clocks.vector import vec_covers, vec_leq, vec_max
from repro.common.config import (
    ExperimentConfig,
    LatencyConfig,
    WorkloadConfig,
    smoke_scale_cluster,
)
from repro.common.types import Address
from repro.harness.experiment import run_experiment
from repro.sim.engine import Simulator
from repro.sim.latency import GeoLatencyModel
from repro.sim.network import Network
from repro.storage.store import PartitionStore
from repro.storage.version import Version
from repro.workload.zipf import ZipfGenerator


def test_engine_event_throughput(benchmark):
    """Schedule-and-run cost of one million chained events."""

    def run() -> int:
        sim = Simulator()
        remaining = [200_000]

        def tick() -> None:
            if remaining[0] > 0:
                remaining[0] -= 1
                sim.schedule(0.001, tick)

        for _ in range(5):
            sim.schedule(0.0, tick)
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events >= 200_000


def test_zipf_sampling_throughput(benchmark):
    zipf = ZipfGenerator(10_000, 0.99, random.Random(1))

    def run() -> int:
        return sum(zipf.sample() for _ in range(50_000))

    total = benchmark(run)
    assert total > 0


class _Sink:
    """A minimal endpoint: counts deliveries, no CPU model."""

    __slots__ = ("address", "received")

    def __init__(self, address):
        self.address = address
        self.received = 0

    def on_message(self, msg) -> None:
        self.received += 1


class _SizedMsg:
    __slots__ = ()

    def size_bytes(self) -> int:
        return 64


def build_geo_network(num_dcs: int = 3, num_partitions: int = 4):
    """A 3-DC geo network with sink endpoints (shared with perf_trajectory)."""
    sim = Simulator()
    latency = GeoLatencyModel(LatencyConfig(), random.Random(7))
    network = Network(sim, latency)
    endpoints = []
    for dc in range(num_dcs):
        for partition in range(num_partitions):
            endpoint = _Sink(Address(dc=dc, partition=partition))
            network.register(endpoint)
            endpoints.append(endpoint)
    return sim, network, endpoints


def drive_network(sim, network, endpoints, rounds: int = 5_000) -> int:
    """All-to-all sends through the FIFO channels, then drain delivery."""
    msg = _SizedMsg()
    sent = 0
    for round_no in range(rounds):
        src = endpoints[round_no % len(endpoints)]
        for dst in endpoints:
            if dst is not src:
                network.send(src.address, dst.address, msg)
                sent += 1
    sim.run()
    return sent


def test_network_send_deliver_throughput(benchmark):
    """Cost of send (size + byte accounting + FIFO channel bookkeeping +
    latency sample) plus heap-driven delivery, the per-message hot path."""

    def run() -> int:
        sim, network, endpoints = build_geo_network()
        sent = drive_network(sim, network, endpoints)
        assert network.stats.messages_delivered == sent
        return sent

    assert benchmark(run) > 0


def build_loaded_store(num_keys: int = 200, chain_depth: int = 40):
    """A partition store whose chains are ``chain_depth`` versions deep
    (shared with perf_trajectory)."""
    store = PartitionStore()
    keys = [f"k{i}" for i in range(num_keys)]
    store.preload(keys, num_dcs=3)
    for i in range(1, chain_depth):
        ut = i * 1000
        for key in keys:
            store.insert(Version(key=key, value=i, sr=i % 3, ut=ut,
                                 dv=(ut, ut - 1, ut - 2)))
    return store, keys


def scan_store(store, keys, rounds: int = 50, horizon: int = 20_000) -> int:
    """Chain-head reads plus snapshot scans below ``horizon`` (the Cure*
    read path the paper bills for chain traversal)."""

    def visible(version) -> bool:
        return version.ut <= horizon

    scanned = 0
    for _ in range(rounds):
        for key in keys:
            store.freshest(key)
            _, steps = store.chain(key).find_freshest(visible)
            scanned += steps
    return scanned


def test_storage_chain_read_throughput(benchmark):
    store, keys = build_loaded_store()

    def run() -> int:
        return scan_store(store, keys)

    assert benchmark(run) > 0


def perf_reference_config(seed: int = 42) -> ExperimentConfig:
    """The full-experiment reference point tracked in ``BENCH_*.json``."""
    return ExperimentConfig(
        cluster=smoke_scale_cluster("pocc"),
        workload=WorkloadConfig(kind="get_put", gets_per_put=4,
                                clients_per_partition=8,
                                think_time_s=0.005),
        warmup_s=0.3,
        duration_s=0.8,
        seed=seed,
        name="perf-reference",
    )


def test_full_experiment_wall_clock(benchmark):
    """One small end-to-end experiment: everything above composed."""

    def run() -> int:
        return run_experiment(perf_reference_config()).total_ops

    assert benchmark(run) > 0


def build_batched_chunk(target_bytes: int = 256 * 1024) -> bytes:
    """One coalesced transport write: ~100-byte frames up to the cap.

    This is the worst case for per-frame buffer compaction — thousands
    of small frames arriving as a single ``feed``.
    """
    from repro.common.types import Address as Addr
    from repro.protocols import messages as m
    from repro.runtime import codec

    parts: list[bytes] = []
    size = 0
    op_id = 0
    while size < target_bytes:
        frame = codec.encode_frame(m.PutReq(
            key=f"key-{op_id % 997:06d}", value="x" * 40,
            dv=[op_id, op_id + 1], client=Addr(0, 0), op_id=op_id))
        parts.append(frame)
        size += len(frame)
        op_id += 1
    return b"".join(parts)


class CompactPerFrameDecoder:
    """The pre-PR-8 compaction strategy, pinned as the ≥2x baseline.

    Identical payload-decode stack (``codec.loads``) — the *only*
    variable is buffer compaction: this decoder reclaims the consumed
    prefix after every frame, the shipped ``FrameDecoder`` keeps a read
    offset and compacts once per ``feed``.  Per-frame compaction is
    O(batch²) on a coalesced chunk of small frames.  One honesty note:
    the old code spelled it ``del buffer[:end]``, which CPython ≥3.4
    happens to shield by advancing the bytearray's internal start
    offset; the baseline here spells the same strategy as the slice
    reallocation it costs on any buffer without that CPython-specific
    shield, so the pin captures the algorithmic class being fixed
    rather than one interpreter's escape hatch.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list:
        from repro.runtime import codec

        self._buffer.extend(data)
        buffer = self._buffer
        out: list = []
        while True:
            if len(buffer) < 4:
                return out
            length = int.from_bytes(buffer[:4], "big")
            end = 4 + length
            if len(buffer) < end:
                return out
            out.append(codec.loads(bytes(buffer[4:end])))
            self._buffer = buffer = buffer[end:]


def frame_decoder_speedup(target_bytes: int = 256 * 1024,
                          repeats: int = 3) -> dict:
    """Time one batched chunk through both decoders (best of N)."""
    import time

    from repro.runtime import codec

    chunk = build_batched_chunk(target_bytes)

    def best_of(factory) -> tuple[float, int]:
        best = float("inf")
        frames = 0
        for _ in range(repeats):
            decoder = factory()
            start = time.perf_counter()
            frames = len(decoder.feed(chunk))
            best = min(best, time.perf_counter() - start)
        return best, frames

    new_s, new_frames = best_of(codec.FrameDecoder)
    legacy_s, legacy_frames = best_of(CompactPerFrameDecoder)
    assert new_frames == legacy_frames > 0
    return {
        "chunk_bytes": len(chunk),
        "frames": new_frames,
        "read_offset_s": new_s,
        "compact_per_frame_s": legacy_s,
        "speedup": legacy_s / new_s if new_s else None,
    }


def test_frame_decoder_batched_chunk_speedup(benchmark):
    """PR-8 pin: the read-offset decoder must be ≥2x the per-frame
    compaction baseline on one 256KiB chunk of ~100-byte frames."""
    stats = benchmark.pedantic(frame_decoder_speedup, rounds=1,
                               iterations=1)
    assert stats["speedup"] >= 2.0, stats


def test_vector_ops_throughput(benchmark):
    a = [1_000_000, 2_000_000, 3_000_000]
    b = [2_000_000, 1_000_000, 3_000_001]

    def run() -> int:
        hits = 0
        for _ in range(100_000):
            if vec_leq(a, b):
                hits += 1
            if vec_covers(b, a, skip=1):
                hits += 1
            vec_max(a, b)
        return hits

    assert benchmark(run) >= 0
