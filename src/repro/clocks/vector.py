"""Vector-clock algebra over per-DC timestamp vectors.

The protocols track dependencies at DC granularity (Section IV): a vector
has M entries of physical timestamps.  Hot protocol paths use plain Python
lists with the free functions below (no object overhead); the
:class:`VectorClock` wrapper offers an immutable, comparable value type for
public APIs, histories and tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.common.errors import ProtocolError
from repro.common.types import Micros

# ----------------------------------------------------------------------
# List-based operations (hot paths)
# ----------------------------------------------------------------------


def vec_zero(num_entries: int) -> list[Micros]:
    """A fresh all-zero vector with one entry per DC."""
    return [0] * num_entries


def vec_max(a: Sequence[Micros], b: Sequence[Micros]) -> list[Micros]:
    """Entry-wise maximum, as a new list."""
    return [x if x >= y else y for x, y in zip(a, b, strict=True)]


def vec_max_inplace(a: list[Micros], b: Sequence[Micros]) -> None:
    """Entry-wise maximum of ``b`` into ``a``."""
    for i, y in enumerate(b):
        if y > a[i]:
            a[i] = y


def vec_min(a: Sequence[Micros], b: Sequence[Micros]) -> list[Micros]:
    """Entry-wise minimum, as a new list."""
    return [x if x <= y else y for x, y in zip(a, b, strict=True)]


def vec_leq(a: Sequence[Micros], b: Sequence[Micros]) -> bool:
    """True iff ``a[i] <= b[i]`` for every entry."""
    for x, y in zip(a, b, strict=True):
        if x > y:
            return False
    return True


def vec_covers(
    vv: Sequence[Micros], deps: Sequence[Micros], skip: int | None = None
) -> bool:
    """True iff ``vv[i] >= deps[i]`` for every entry except ``skip``.

    This is the waiting condition of Algorithm 2 lines 2 and 6: the server's
    version vector must cover the client's dependency vector on every entry
    except the local DC's (local dependencies are trivially satisfied).
    """
    for i, needed in enumerate(deps):
        if i == skip:
            continue
        if vv[i] < needed:
            return False
    return True


def vec_aggregate_min(vectors: Iterable[Sequence[Micros]]) -> list[Micros]:
    """Entry-wise minimum across a non-empty collection of vectors.

    Used by the stabilization protocol (GSS) and the garbage-collection
    vector (GV) computations.
    """
    iterator = iter(vectors)
    try:
        first = next(iterator)
    except StopIteration:
        raise ProtocolError("aggregate min over empty vector set") from None
    result = list(first)
    for vec in iterator:
        for i, value in enumerate(vec):
            if value < result[i]:
                result[i] = value
    return result


# ----------------------------------------------------------------------
# Immutable wrapper (public API / histories / tests)
# ----------------------------------------------------------------------


class VectorClock:
    """An immutable per-DC timestamp vector with partial-order semantics.

    ``a <= b`` is entry-wise; ``a < b`` means ``a <= b`` and ``a != b``;
    vectors where neither holds are *concurrent*.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[Micros]):
        self._entries = tuple(int(e) for e in entries)
        if any(e < 0 for e in self._entries):
            raise ProtocolError("vector clock entries must be >= 0")

    @classmethod
    def zero(cls, num_entries: int) -> "VectorClock":
        return cls((0,) * num_entries)

    # -- access --------------------------------------------------------
    @property
    def entries(self) -> tuple[Micros, ...]:
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: int) -> Micros:
        return self._entries[index]

    def __iter__(self):
        return iter(self._entries)

    # -- algebra --------------------------------------------------------
    def merge(self, other: "VectorClock") -> "VectorClock":
        """Entry-wise maximum (the causal join)."""
        self._check_compatible(other)
        return VectorClock(vec_max(self._entries, other._entries))

    def meet(self, other: "VectorClock") -> "VectorClock":
        """Entry-wise minimum."""
        self._check_compatible(other)
        return VectorClock(vec_min(self._entries, other._entries))

    def advanced(self, index: int, value: Micros) -> "VectorClock":
        """A copy with ``entries[index] = max(entries[index], value)``."""
        if value <= self._entries[index]:
            return self
        entries = list(self._entries)
        entries[index] = value
        return VectorClock(entries)

    # -- order ----------------------------------------------------------
    def __le__(self, other: "VectorClock") -> bool:
        self._check_compatible(other)
        return vec_leq(self._entries, other._entries)

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self._entries != other._entries

    def __ge__(self, other: "VectorClock") -> bool:
        return other <= self

    def __gt__(self, other: "VectorClock") -> bool:
        return other < self

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VectorClock) and self._entries == other._entries
        )

    def __hash__(self) -> int:
        return hash(self._entries)

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither dominates the other."""
        return not (self <= other) and not (other <= self)

    # -- misc -----------------------------------------------------------
    def _check_compatible(self, other: "VectorClock") -> None:
        if len(self._entries) != len(other._entries):
            raise ProtocolError(
                f"vector length mismatch: {len(self)} vs {len(other)}"
            )

    def __repr__(self) -> str:
        return f"VectorClock({list(self._entries)})"
