"""Operation generators for the paper's workload families.

A generator produces :class:`OpSpec` records; the closed-loop driver turns
them into protocol operations.  The first two follow Section V:

* :class:`GetPutWorkload` — "a GET:PUT ratio of N:M means that each client
  issues N consecutive GETs followed by one PUT.  Each GET operation targets
  a different partition.  The PUT operation is issued against a key in a
  partition chosen uniformly at random."
* :class:`RoTxWorkload` — "each client first issues a RO-TX to read p items
  corresponding to p distinct partitions, and then performs a random PUT."

:class:`MixedWorkload` extends the family with an i.i.d. operation mix
(read/write/transaction ratios, optional read-own-writes locality) so the
production presets of :mod:`repro.workload.presets` — and YCSB-style
mixes — can be expressed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.config import WorkloadConfig
from repro.common.errors import ConfigError
from repro.cluster.topology import KeyPools
from repro.workload.keydist import ZipfRanks, make_rank_chooser


@dataclass(frozen=True, slots=True)
class OpSpec:
    """One operation to issue: kind is "get", "put" or "ro_tx"."""

    kind: str
    keys: tuple[str, ...]

    @property
    def key(self) -> str:
        return self.keys[0]


class _PartitionKeyChooser:
    """Shared helper: rank-sample a key inside a chosen partition."""

    def __init__(
        self,
        pools: KeyPools,
        theta: float,
        rng: random.Random,
        ranks=None,
    ):
        self._pools = pools
        self._rng = rng
        self._ranks = ranks or ZipfRanks(pools.keys_per_partition, theta, rng)
        # Clients only target partitions that own keys.  Without a
        # cluster view this is ``(0, 1, ..., num_partitions - 1)`` and
        # every draw below is bit-identical to indexing by partition id.
        self.members = pools.topology.members()
        self.num_members = len(self.members)

    def key_in(self, partition: int) -> str:
        return self._pools.key(partition, self._ranks.sample())

    def uniform_partition(self) -> int:
        return self.members[self._rng.randrange(self.num_members)]


class GetPutWorkload:
    """N GETs on distinct partitions, then one uniform PUT, repeating."""

    def __init__(
        self,
        pools: KeyPools,
        gets_per_put: int,
        zipf_theta: float,
        rng: random.Random,
        ranks=None,
    ):
        if gets_per_put < 0:
            raise ConfigError("gets_per_put must be >= 0")
        self._chooser = _PartitionKeyChooser(pools, zipf_theta, rng, ranks)
        self._rng = rng
        self.gets_per_put = gets_per_put
        self._cycle_position = 0
        # GETs walk distinct partitions starting from a random point, so
        # concurrent clients do not hammer partition 0 in lock-step.
        # The cursor indexes into the member list, not the partition id
        # space — identical when no cluster view restricts membership.
        self._partition_cursor = rng.randrange(
            self._chooser.num_members
        )

    def next_op(self) -> OpSpec:
        if self._cycle_position < self.gets_per_put:
            self._cycle_position += 1
            partition = self._chooser.members[self._partition_cursor]
            self._partition_cursor = (
                (self._partition_cursor + 1) % self._chooser.num_members
            )
            return OpSpec(kind="get", keys=(self._chooser.key_in(partition),))
        self._cycle_position = 0
        partition = self._chooser.uniform_partition()
        return OpSpec(kind="put", keys=(self._chooser.key_in(partition),))


class RoTxWorkload:
    """One RO-TX over ``tx_partitions`` distinct partitions, then a PUT."""

    def __init__(
        self,
        pools: KeyPools,
        tx_partitions: int,
        zipf_theta: float,
        rng: random.Random,
        ranks=None,
    ):
        chooser = _PartitionKeyChooser(pools, zipf_theta, rng, ranks)
        if not 1 <= tx_partitions <= chooser.num_members:
            raise ConfigError(
                f"tx_partitions must be in [1, {chooser.num_members}]"
            )
        self._chooser = chooser
        self._rng = rng
        self.tx_partitions = tx_partitions
        self._next_is_tx = True

    def next_op(self) -> OpSpec:
        if self._next_is_tx:
            self._next_is_tx = False
            partitions = self._rng.sample(
                self._chooser.members, self.tx_partitions
            )
            keys = tuple(self._chooser.key_in(p) for p in partitions)
            return OpSpec(kind="ro_tx", keys=keys)
        self._next_is_tx = True
        partition = self._chooser.uniform_partition()
        return OpSpec(kind="put", keys=(self._chooser.key_in(partition),))


class MixedWorkload:
    """An i.i.d. operation mix: RO-TX / GET / PUT per configured ratios.

    With probability ``rmw_locality`` a GET re-reads the key of the
    client's most recent PUT instead of sampling a fresh key — the
    read-own-writes pattern that exercises session guarantees without
    changing the op mix.
    """

    def __init__(
        self,
        pools: KeyPools,
        read_ratio: float,
        tx_ratio: float,
        tx_partitions: int,
        rmw_locality: float,
        zipf_theta: float,
        rng: random.Random,
        ranks=None,
    ):
        if not 0.0 <= read_ratio <= 1.0 or not 0.0 <= tx_ratio <= 1.0:
            raise ConfigError("ratios must be in [0, 1]")
        if read_ratio + tx_ratio > 1.0:
            raise ConfigError("read_ratio + tx_ratio must be <= 1")
        if not 0.0 <= rmw_locality <= 1.0:
            raise ConfigError("rmw_locality must be in [0, 1]")
        chooser = _PartitionKeyChooser(pools, zipf_theta, rng, ranks)
        if not 1 <= tx_partitions <= chooser.num_members:
            raise ConfigError(
                f"tx_partitions must be in [1, {chooser.num_members}]"
            )
        self._chooser = chooser
        self._rng = rng
        self.read_ratio = read_ratio
        self.tx_ratio = tx_ratio
        self.tx_partitions = tx_partitions
        self.rmw_locality = rmw_locality
        self._last_put_key: str | None = None

    def next_op(self) -> OpSpec:
        draw = self._rng.random()
        if draw < self.tx_ratio:
            partitions = self._rng.sample(
                self._chooser.members, self.tx_partitions
            )
            keys = tuple(self._chooser.key_in(p) for p in partitions)
            return OpSpec(kind="ro_tx", keys=keys)
        if draw < self.tx_ratio + self.read_ratio:
            if (
                self._last_put_key is not None
                and self._rng.random() < self.rmw_locality
            ):
                return OpSpec(kind="get", keys=(self._last_put_key,))
            partition = self._chooser.uniform_partition()
            return OpSpec(kind="get", keys=(self._chooser.key_in(partition),))
        partition = self._chooser.uniform_partition()
        key = self._chooser.key_in(partition)
        self._last_put_key = key
        return OpSpec(kind="put", keys=(key,))


def make_workload(
    config: WorkloadConfig, pools: KeyPools, rng: random.Random
):
    """Instantiate the generator described by a :class:`WorkloadConfig`."""
    ranks = make_rank_chooser(
        config.key_distribution,
        pools.keys_per_partition,
        rng,
        zipf_theta=config.zipf_theta,
        hotspot_ops=config.hotspot_ops,
        hotspot_keys=config.hotspot_keys,
    )
    if config.kind == "get_put":
        return GetPutWorkload(pools, config.gets_per_put,
                              config.zipf_theta, rng, ranks=ranks)
    if config.kind == "ro_tx":
        return RoTxWorkload(pools, config.tx_partitions,
                            config.zipf_theta, rng, ranks=ranks)
    if config.kind == "mixed":
        return MixedWorkload(
            pools,
            read_ratio=config.read_ratio,
            tx_ratio=config.tx_ratio,
            tx_partitions=config.tx_partitions,
            rmw_locality=config.rmw_locality,
            zipf_theta=config.zipf_theta,
            rng=rng,
            ranks=ranks,
        )
    raise ConfigError(f"unknown workload kind {config.kind!r}")
