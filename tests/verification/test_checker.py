"""Unit tests for the online causal-consistency checker."""

import pytest

from repro.common.errors import ReproError
from repro.verification.checker import (
    CAUSAL_GET,
    TX_CAUSAL,
    TX_SNAPSHOT,
    CausalChecker,
)


def vid(key, sr, ut):
    return (key, sr, ut)


@pytest.fixture
def checker():
    checker = CausalChecker()
    for client in ("c1", "c2"):
        checker.register_client(client)
    return checker


def test_clean_session_passes(checker):
    checker.on_write("c1", "x", vid("x", 0, 10), 1.0)
    checker.on_read("c1", "x", vid("x", 0, 10), 2.0)
    assert checker.ok
    assert checker.summary()["violations"] == 0


def test_read_your_writes_violation_detected(checker):
    checker.on_write("c1", "x", vid("x", 0, 10), 1.0)
    checker.on_read("c1", "x", vid("x", 0, 5), 2.0)  # older than own write
    assert not checker.ok
    assert checker.violations[0].kind == CAUSAL_GET
    assert checker.violations[0].key == "x"


def test_monotonic_reads_violation_detected(checker):
    checker.on_read("c1", "x", vid("x", 0, 20), 1.0)
    checker.on_read("c1", "x", vid("x", 0, 10), 2.0)  # went backwards
    assert len(checker.violations) == 1


def test_reading_newer_version_is_fine(checker):
    checker.on_read("c1", "x", vid("x", 0, 10), 1.0)
    checker.on_read("c1", "x", vid("x", 1, 20), 2.0)
    assert checker.ok


def test_lww_tiebreak_order_respected(checker):
    # Same ut: lower source replica wins, so (x,0,10) is newer than (x,2,10).
    checker.on_read("c1", "x", vid("x", 0, 10), 1.0)
    checker.on_read("c1", "x", vid("x", 2, 10), 2.0)
    assert not checker.ok


def test_transitive_dependency_via_reads_from(checker):
    """c1 writes X then Y; c2 reads Y then an old x -> violation, even
    though c2 never read X directly."""
    checker.on_write("c1", "x", vid("x", 0, 10), 1.0)
    checker.on_write("c1", "y", vid("y", 0, 20), 2.0)
    checker.on_read("c2", "y", vid("y", 0, 20), 3.0)
    checker.on_read("c2", "x", vid("x", 0, 5), 4.0)  # older than X
    assert len(checker.violations) == 1
    violation = checker.violations[0]
    assert violation.client == "c2"
    assert violation.expected_at_least == vid("x", 0, 10)


def test_depth_three_transitivity(checker):
    checker.on_write("c1", "a", vid("a", 0, 10), 1.0)
    checker.on_write("c1", "b", vid("b", 0, 20), 2.0)   # b deps a
    checker.on_read("c2", "b", vid("b", 0, 20), 3.0)
    checker.on_write("c2", "c", vid("c", 1, 30), 4.0)   # c deps b, a
    checker.register_client("c3")
    checker.on_read("c3", "c", vid("c", 1, 30), 5.0)
    checker.on_read("c3", "a", vid("a", 0, 5), 6.0)     # misses a@10
    assert len(checker.violations) == 1


def test_preloaded_versions_have_no_deps(checker):
    checker.on_read("c1", "x", vid("x", 0, 0), 1.0)  # ut=0: preloaded
    assert checker.ok
    assert checker.unknown_dependency_reads == 0


def test_unknown_version_counted_not_fatal(checker):
    checker.on_read("c1", "x", vid("x", 2, 999), 1.0)  # writer unseen
    assert checker.ok
    assert checker.unknown_dependency_reads == 1


def test_tx_causal_check(checker):
    checker.on_write("c1", "x", vid("x", 0, 10), 1.0)
    checker.on_tx_read("c1", [("x", vid("x", 0, 5))], 2.0)
    assert checker.violations[0].kind == TX_CAUSAL


def test_tx_snapshot_closure_violation(checker):
    """Proposition 4's obligation: returning Y (which depends on X') next
    to an older version of x is a broken snapshot."""
    checker.on_write("c1", "x", vid("x", 0, 10), 1.0)   # X'
    checker.on_write("c1", "y", vid("y", 0, 20), 2.0)   # Y deps X'
    checker.on_tx_read(
        "c2",
        [("y", vid("y", 0, 20)), ("x", vid("x", 0, 5))],  # stale x
        3.0,
    )
    kinds = {v.kind for v in checker.violations}
    assert TX_SNAPSHOT in kinds


def test_tx_consistent_snapshot_passes(checker):
    checker.on_write("c1", "x", vid("x", 0, 10), 1.0)
    checker.on_write("c1", "y", vid("y", 0, 20), 2.0)
    checker.on_tx_read(
        "c2",
        [("y", vid("y", 0, 20)), ("x", vid("x", 0, 10))],
        3.0,
    )
    assert checker.ok


def test_tx_returning_concurrent_fresh_items_ok(checker):
    checker.on_write("c1", "x", vid("x", 0, 10), 1.0)
    checker.on_write("c2", "y", vid("y", 1, 15), 1.5)  # concurrent with x
    checker.register_client("c3")
    checker.on_tx_read(
        "c3",
        [("x", vid("x", 0, 10)), ("y", vid("y", 1, 15))],
        2.0,
    )
    assert checker.ok


def test_tx_absorbs_results_into_causal_past(checker):
    checker.on_write("c1", "x", vid("x", 0, 10), 1.0)
    checker.on_tx_read("c2", [("x", vid("x", 0, 10))], 2.0)
    checker.on_read("c2", "x", vid("x", 0, 5), 3.0)  # older than tx result
    assert len(checker.violations) == 1


def test_duplicate_registration_rejected(checker):
    with pytest.raises(ReproError):
        checker.register_client("c1")


def test_unregistered_client_rejected(checker):
    with pytest.raises(ReproError):
        checker.on_read("ghost", "x", vid("x", 0, 1), 1.0)


def test_summary_counts_by_kind(checker):
    checker.on_write("c1", "x", vid("x", 0, 10), 1.0)
    checker.on_read("c1", "x", vid("x", 0, 5), 2.0)
    checker.on_read("c1", "x", vid("x", 0, 3), 3.0)
    summary = checker.summary()
    assert summary["violations"] == 2
    assert summary[CAUSAL_GET] == 2
    assert summary["reads_checked"] == 2
    assert summary["writes_seen"] == 1


def test_history_recording_optional():
    checker = CausalChecker(record_history=True)
    checker.register_client("c1")
    checker.on_write("c1", "x", vid("x", 0, 10), 1.0)
    checker.on_read("c1", "x", vid("x", 0, 10), 2.0)
    checker.on_tx_read("c1", [("x", vid("x", 0, 10))], 3.0)
    assert len(checker.history) == 3
    assert len(list(checker.history.reads())) == 1
    assert len(list(checker.history.writes())) == 1
    assert len(list(checker.history.tx_reads())) == 1
    assert len(list(checker.history.by_client("c1"))) == 3


def test_violation_describe_is_informative(checker):
    checker.on_write("c1", "x", vid("x", 0, 10), 1.0)
    checker.on_read("c1", "x", vid("x", 0, 5), 2.0)
    text = checker.violations[0].describe()
    assert "c1" in text and "x" in text and "causal_get" in text
