"""Command-line entry point: regenerate the paper's figures.

Examples::

    repro-figures --list
    repro-figures --list-protocols
    repro-figures --figure 1a --scale smoke
    repro-figures --all --scale bench --md EXPERIMENTS_RUN.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.figures import FIGURES
from repro.harness.reportmd import render_markdown
from repro.harness.scales import SCALES
from repro.protocols.registry import list_protocols, protocol_summary


def _parallelism(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("parallelism must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Regenerate the evaluation figures of 'Optimistic "
                    "Causal Consistency for Geo-Replicated Key-Value "
                    "Stores' (ICDCS 2017) on the simulated substrate.",
    )
    parser.add_argument("--figure", action="append", default=[],
                        choices=sorted(FIGURES), dest="figures",
                        help="figure id to run (repeatable)")
    parser.add_argument("--all", action="store_true",
                        help="run every figure")
    parser.add_argument("--scale", default="bench",
                        choices=sorted(SCALES),
                        help="experiment scale preset (default: bench)")
    parser.add_argument("--md", metavar="PATH",
                        help="also write a markdown report to PATH")
    parser.add_argument("--list", action="store_true",
                        help="list available figures and exit")
    parser.add_argument("--list-protocols", action="store_true",
                        help="list registered protocol names and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-point progress output")
    parser.add_argument("--parallelism", type=_parallelism, default=None,
                        metavar="N",
                        help="worker processes for the experiment fan-out "
                             "(default: all cores; 1 = serial)")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for figure_id, fn in FIGURES.items():
            first_line = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {figure_id}: {first_line}")
        return 0

    if args.list_protocols:
        for name in list_protocols():
            print(f"  {name}: {protocol_summary(name)}")
        return 0

    figure_ids = sorted(FIGURES) if args.all else args.figures
    if not figure_ids:
        parser.error(
            "choose --all, --list, --list-protocols or at least one --figure"
        )

    collected = []
    for figure_id in figure_ids:
        started = time.time()
        data = FIGURES[figure_id](scale=args.scale, verbose=not args.quiet,
                                  parallelism=args.parallelism)
        elapsed = time.time() - started
        collected.append(data)
        print(data.table_text())
        print(f"  ({elapsed:.1f}s wall)\n")

    if args.md:
        with open(args.md, "w", encoding="utf-8") as handle:
            handle.write(render_markdown(collected, scale=args.scale))
        print(f"wrote {args.md}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
