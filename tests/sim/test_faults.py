"""Tests for network partition injection."""

import pytest

from repro.common.errors import SimulationError
from repro.common.types import server_address
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network

from tests.sim.test_network import Recorder


def _setup():
    sim = Simulator()
    network = Network(sim, ConstantLatency(0.010))
    endpoints = {}
    for dc in range(3):
        endpoint = Recorder(sim, server_address(dc, 0))
        network.register(endpoint)
        endpoints[dc] = endpoint
    return sim, network, FaultInjector(sim, network), endpoints


def test_partition_blocks_both_directions():
    sim, network, faults, nodes = _setup()
    faults.partition_dcs([0], [1])
    network.send(nodes[0].address, nodes[1].address, "a->b")
    network.send(nodes[1].address, nodes[0].address, "b->a")
    sim.run()
    assert nodes[0].received == [] and nodes[1].received == []
    assert faults.active


def test_partition_leaves_third_dc_reachable():
    sim, network, faults, nodes = _setup()
    faults.partition_dcs([0], [1])
    network.send(nodes[0].address, nodes[2].address, "a->c")
    network.send(nodes[1].address, nodes[2].address, "b->c")
    sim.run()
    assert len(nodes[2].received) == 2


def test_heal_delivers_held_messages():
    sim, network, faults, nodes = _setup()
    faults.partition_dcs([0], [1, 2])
    network.send(nodes[0].address, nodes[1].address, 1)
    network.send(nodes[0].address, nodes[1].address, 2)
    sim.run()
    assert nodes[1].received == []
    faults.heal_all()
    sim.run()
    assert [msg for _, msg in nodes[1].received] == [1, 2]
    assert not faults.active


def test_isolate_dc_cuts_everything():
    sim, network, faults, nodes = _setup()
    faults.isolate_dc(2, all_dcs=range(3))
    assert faults.is_cut(2, 0) and faults.is_cut(0, 2)
    assert faults.is_cut(2, 1) and faults.is_cut(1, 2)
    assert not faults.is_cut(0, 1)


def test_overlapping_groups_rejected():
    sim, network, faults, nodes = _setup()
    with pytest.raises(SimulationError):
        faults.partition_dcs([0, 1], [1, 2])


def test_scheduled_partition_and_heal():
    sim, network, faults, nodes = _setup()
    faults.schedule_partition(at=1.0, group_a=[0], group_b=[1],
                              heal_after=2.0)

    def try_send():
        network.send(nodes[0].address, nodes[1].address, sim.now)

    for t in (0.5, 1.5, 2.5, 3.5):
        sim.schedule_at(t, try_send)
    sim.run()
    times = [msg for _, msg in nodes[1].received]
    # 0.5 delivered pre-partition; 1.5/2.5 held until the heal at 3.0;
    # 3.5 delivered normally.
    assert times == [0.5, 1.5, 2.5, 3.5]
    delivery_times = [t for t, _ in nodes[1].received]
    assert delivery_times[0] == pytest.approx(0.510)
    assert all(t >= 3.0 for t in delivery_times[1:3])
    assert faults.partitions_started == 1
    assert faults.partitions_healed == 1
