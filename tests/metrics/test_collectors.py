"""Tests for the metrics registry and blocking/staleness accounting."""

import pytest

from repro.common.types import OpType
from repro.metrics.collectors import (
    ALL_BLOCK_CAUSES,
    BLOCK_GET_VV,
    BLOCK_PUT_DEPS,
    BlockingStats,
    MetricsRegistry,
)


def test_registry_disabled_by_default():
    registry = MetricsRegistry()
    registry.record_op(OpType.GET, 0.001)
    registry.record_block_attempt(BLOCK_GET_VV)
    registry.record_get_staleness(1, 1)
    assert registry.total_ops() == 0
    assert registry.blocking[BLOCK_GET_VV].attempts == 0
    assert registry.get_staleness.reads == 0


def test_arm_disarm_window():
    registry = MetricsRegistry()
    registry.arm(1.0)
    registry.record_op(OpType.GET, 0.001)
    registry.disarm(3.0)
    registry.record_op(OpType.GET, 0.001)  # after the window: ignored
    assert registry.total_ops() == 1
    assert registry.window_duration_s == 2.0
    assert registry.throughput_ops_s() == pytest.approx(0.5)


def test_all_block_causes_present():
    registry = MetricsRegistry()
    assert set(registry.blocking) == set(ALL_BLOCK_CAUSES)


def test_blocking_probability():
    stats = BlockingStats()
    for _ in range(10):
        stats.record_attempt()
    stats.record_block(0.002)
    stats.record_block(0.004)
    assert stats.probability == pytest.approx(0.2)
    assert stats.mean_block_time_s == pytest.approx(0.003)


def test_blocking_empty_probability_zero():
    stats = BlockingStats()
    assert stats.probability == 0.0
    assert stats.mean_block_time_s == 0.0


def test_combined_blocking_merges_causes():
    registry = MetricsRegistry()
    registry.arm(0.0)
    for _ in range(4):
        registry.record_block_attempt(BLOCK_GET_VV)
    registry.record_block(BLOCK_GET_VV, 0.001)
    for _ in range(6):
        registry.record_block_attempt(BLOCK_PUT_DEPS)
    registry.record_block(BLOCK_PUT_DEPS, 0.003)
    combined = registry.combined_blocking((BLOCK_GET_VV, BLOCK_PUT_DEPS))
    assert combined.attempts == 10
    assert combined.blocked == 2
    assert combined.probability == pytest.approx(0.2)
    assert combined.mean_block_time_s == pytest.approx(0.002)


def test_op_latency_recorded_per_type():
    registry = MetricsRegistry()
    registry.arm(0.0)
    registry.record_op(OpType.GET, 0.001)
    registry.record_op(OpType.PUT, 0.002)
    registry.record_op(OpType.RO_TX, 0.010)
    assert registry.ops[OpType.GET].completed == 1
    assert registry.ops[OpType.PUT].completed == 1
    assert registry.ops[OpType.RO_TX].latency.max_seen == 0.010
    assert registry.total_ops() == 3


def test_gss_lag_ignores_negative():
    registry = MetricsRegistry()
    registry.arm(0.0)
    registry.record_gss_lag(-0.001)
    registry.record_gss_lag(0.004)
    assert registry.gss_lag.count == 1


def test_throughput_zero_without_window():
    assert MetricsRegistry().throughput_ops_s() == 0.0
