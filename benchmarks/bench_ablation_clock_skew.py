"""Ablation — clock synchronization precision (Section IV).

The paper: "The correctness of our protocol does not depend on the
synchronization precision."  We dial the NTP offset bound from 0 to 5 ms
and assert (a) the independent checker still finds zero violations and
(b) only waiting times move (PUT clock waits grow with skew)."""

from repro.common.config import (
    ClockConfig,
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.harness.experiment import run_experiment

OFFSETS_US = (0, 500, 5000)


def _config(offset_us: int) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(
            num_dcs=3,
            num_partitions=2,
            keys_per_partition=100,
            protocol="pocc",
            clocks=ClockConfig(max_offset_us=offset_us,
                               max_drift_ppm=20.0),
        ),
        workload=WorkloadConfig(kind="get_put", gets_per_put=2,
                                clients_per_partition=4,
                                think_time_s=0.005),
        warmup_s=0.3,
        duration_s=1.2,
        verify=True,
        name=f"skew-{offset_us}",
    )


def test_ablation_clock_skew(benchmark):
    results = {}

    def run() -> None:
        for offset in OFFSETS_US:
            results[offset] = run_experiment(_config(offset))

    benchmark.pedantic(run, rounds=1, iterations=1)

    # Correctness is skew-independent.
    for offset in OFFSETS_US:
        assert results[offset].verification["violations"] == 0, offset
        assert results[offset].divergences == 0, offset

    # Waiting is not: heavy skew induces more PUT clock waits.
    clock_blocks = [
        results[o].blocking["put_clock"]["blocked"] for o in OFFSETS_US
    ]
    assert clock_blocks[-1] >= clock_blocks[0], clock_blocks
