"""The eventual-consistency strawman: fast, convergent, causally unsafe."""

import pytest

import helpers


@pytest.fixture
def built():
    return helpers.make_cluster(protocol="eventual")


def test_put_get_roundtrip(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "v")
    assert helpers.get(built, client, key).value == "v"


def test_versions_carry_no_dependencies(built):
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0)
    key_b = helpers.key_on_partition(built, 1)
    helpers.put(built, client, key_a, "a")
    helpers.put(built, client, key_b, "b")
    server = built.servers[built.topology.server(0, 1)]
    assert list(server.store.freshest(key_b).dv) == [0, 0, 0]


def test_client_vectors_never_advance(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "v")
    helpers.get(built, client, key)
    assert client.dv == [0, 0, 0]
    assert client.rdv == [0, 0, 0]


def test_reads_never_block_even_with_poisoned_vectors(built):
    built.metrics.arm(built.sim.now)
    client = helpers.client_at(built, dc=1)
    client.rdv[0] = 10**12  # a dependency no server could ever satisfy
    reply = helpers.get(built, client, helpers.key_on_partition(built, 0),
                        timeout_s=0.1)
    assert reply is not None  # served immediately, consistency be damned


def test_still_converges_via_lww(built):
    key = helpers.key_on_partition(built, 0)
    for dc in range(3):
        helpers.put(built, helpers.client_at(built, dc=dc), key, f"dc{dc}")
    helpers.settle(built, 1.0)
    heads = {
        built.servers[built.topology.server(dc, 0)].store.freshest(key)
        .identity()
        for dc in range(3)
    }
    assert len(heads) == 1


def test_tx_reads_heads_without_snapshot(built):
    client = helpers.client_at(built, dc=0)
    keys = [helpers.key_on_partition(built, 0),
            helpers.key_on_partition(built, 1)]
    for key in keys:
        helpers.put(built, client, key, "x")
    reply = helpers.ro_tx(built, client, keys)
    assert len(reply.versions) == 2


def test_causal_violation_observable(built):
    """The reason this protocol exists: with a partition delaying X but a
    roundabout path delivering Y (X -> Y), a client can read Y then stale
    x — which POCC would block on and Cure* would hide Y from."""
    key_x = helpers.key_on_partition(built, 0)
    key_y = helpers.key_on_partition(built, 1)
    built.faults.partition_dcs([0], [1])
    helpers.put(built, helpers.client_at(built, dc=0), key_x, "X")
    helpers.settle(built, 0.3)
    client2 = helpers.client_at(built, dc=2)
    helpers.get(built, client2, key_x)
    helpers.put(built, client2, key_y, "Y")
    helpers.settle(built, 0.3)

    client1 = helpers.client_at(built, dc=1, partition=1)
    got_y = helpers.get(built, client1, key_y)
    got_x = helpers.get(built, client1, key_x, timeout_s=0.5)
    assert got_y.value == "Y"
    assert got_x.value == 0  # stale: causality between X and Y broken
