"""The Okapi* server: HLC stamping + universally-stable visibility.

Operation rules (Section-by-section mapping to the Okapi design):

* **PUT** — never blocks.  The server merges the client's dependency time
  into its hybrid clock (the logical component jumps past it) and stamps
  the new version strictly above every dependency.  POCC/Cure*/GentleRain*
  all wait here for the physical clock instead.
* **GET** — never blocks.  Local versions are immediately visible (the
  origin DC serves read-your-writes); remote versions only once the UST
  covers them.  The client's observed UST is merged first, so a session
  never sees its causal past "un-happen" when it switches servers.
* **RO-TX** — never blocks.  The snapshot is two scalars ``[s, l]``: the
  stable cut ``s = max(UST, client UST)`` gating remote versions and the
  local cut ``l = max(VV[m], client dependency time)`` gating local ones.
  Slices need no waiting: everything below ``s`` is universally stable
  (hence present) and local versions live only on their own partition.

Version metadata is one scalar, ``rdep`` (stored in the ``dv`` slot as a
1-entry vector, which makes the byte accounting reflect the O(1) wire
cost):  the newest *stability bound* the writer had observed.  Every
version in a version's causal past either has a smaller timestamp from the
same origin or is covered by ``rdep`` — the invariant behind the snapshot
closure of transactions (read replies carry ``max(UST, rdep)`` so the
bound propagates through sessions transitively).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.clocks.hlc import HybridLogicalClock
from repro.common.errors import ProtocolError
from repro.common.types import Micros
from repro.metrics.collectors import BLOCK_PUT_CLOCK
from repro.protocols import messages as m
from repro.protocols.base import CausalServer
from repro.protocols.okapi.stabilization import UniversalStabilizationMixin
from repro.storage.version import Version


class OkapiServer(UniversalStabilizationMixin, CausalServer):
    """Server ``p^m_n`` running the universal-stabilization protocol."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        #: All local stamps come from one hybrid clock, so they are
        #: strictly increasing and dominate every merged dependency.
        self.hlc = HybridLogicalClock(self.clock)
        #: Remote versions received but not yet universally stable,
        #: awaiting their visibility-latency sample.
        self._pending_visibility: list[Version] = []
        self.init_universal_stabilization(
            self._protocol.stabilization_interval_s,
            self._protocol.ust_gossip_interval_s,
        )

    # ------------------------------------------------------------------
    # Hybrid-clock discipline (all timestamps are packed HLC values)
    # ------------------------------------------------------------------
    def _heartbeat_tick(self) -> None:
        """Heartbeats in HLC space: broadcast the clock if write-idle."""
        delta = (int(self._protocol.heartbeat_interval_s * 1_000_000)
                 << HybridLogicalClock.LOGICAL_BITS)
        if self.hlc.peek() >= self.vv[self.m] + delta:
            if self._batcher is not None and self._batcher.pending:
                # Same rule as the base tick: a heartbeat would overtake
                # the buffered versions; the armed flush deadline ships
                # them (with a fresh HLC stamp) within flush_ms instead.
                pass
            else:
                ts = self.hlc.now()
                self.vv[self.m] = ts
                self.send_fanout(self._peer_replicas,
                                 m.Heartbeat(ts=ts, src_dc=self.m))
        self.rt.schedule(self._protocol.heartbeat_interval_s,
                          self._heartbeat_tick)

    def _stamp_flush_clock(self) -> Micros:
        """Batch heartbeat piggybacks are packed HLC values here."""
        ts = self.hlc.now()
        if ts > self.vv[self.m]:
            self.vv[self.m] = ts
        return ts

    def _batch_dst(self) -> Micros:
        """Aggregators amortize UST gossip over outgoing batches.

        A partition-0 server's peer replicas are exactly the other DCs'
        aggregators, so its batches reach the same audience as explicit
        :class:`~repro.protocols.messages.UstGossip` — piggybacking the
        current DST on them lets the gossip tick stay silent while
        replication traffic flows (``_dst_piggybacked`` in the mixin).
        """
        if not self._is_aggregator:
            return 0
        dst = self._dst.get(self.m)
        if dst is None:
            return 0
        if dst > self._dst_piggybacked:
            self._dst_piggybacked = dst
        return dst

    def apply_heartbeat(self, msg: m.Heartbeat) -> None:
        self.hlc.update(msg.ts)
        super().apply_heartbeat(msg)

    def _install_replicated(self, version: Version) -> None:
        self.hlc.update(version.ut)
        super()._install_replicated(version)

    def apply_replicate_batch(self, msg: m.ReplicateBatch) -> None:
        # The flush clock is the newest HLC value in the batch; merge it
        # first so every local stamp dominates the whole batch.
        self.hlc.update(msg.clock_ts)
        super().apply_replicate_batch(msg)
        if msg.dst and self._is_aggregator:
            # The piggybacked DST replaces an explicit gossip message.
            self.receive_ust_gossip(
                m.UstGossip(dst=msg.dst, src_dc=msg.src_dc)
            )

    def _ae_window_ticks(self, window_s: float) -> int:
        """Okapi* timestamps are packed HLC values: shift the physical
        window up past the logical bits or it covers ~0 wall time."""
        return (int(window_s * 1_000_000)
                << HybridLogicalClock.LOGICAL_BITS)

    def _advance_clock_past(self, floor_us: Micros) -> None:
        """Okapi* timestamps are packed HLC values, so the recovery floor
        must be merged into the hybrid clock (feeding a packed value to
        the physical clock would skew it by the 16-bit logical shift)."""
        if floor_us > 0:
            self.hlc.update(floor_us)

    def version_received(self, version: Version) -> None:
        """Visibility starts when the version is *universally* stable."""
        if version.ut <= self.ust:
            self._sample_visibility(version)
        else:
            self._pending_visibility.append(version)

    def _sample_visibility(self, version: Version) -> None:
        physical, _ = HybridLogicalClock.unpack(version.ut)
        self.metrics.record_visibility_lag(self.rt.now - physical / 1e6)
        self._trace_visible(version)

    def stable_lag_seconds(self) -> float:
        """Okapi*'s horizon is the UST — a *packed* hybrid timestamp, so
        it must be unpacked before it can meet the microsecond clock (a
        raw comparison would be off by the 16-bit logical shift)."""
        if self.ust <= 0:
            return 0.0
        physical, _ = HybridLogicalClock.unpack(self.ust)
        return max(self.clock.peek_micros() - physical, 0) / 1e6

    def ust_advanced(self) -> None:
        if not self._pending_visibility:
            return
        still_hidden = []
        for version in self._pending_visibility:
            if version.ut <= self.ust:
                self._sample_visibility(version)
            else:
                still_hidden.append(version)
        self._pending_visibility = still_hidden

    def dispatch(self, msg: Any) -> None:
        if isinstance(msg, m.StabPush):
            self.receive_lst_push(msg)
        elif isinstance(msg, m.StabBroadcast):
            self.receive_ust_broadcast(msg)
        elif isinstance(msg, m.UstGossip):
            self.receive_ust_gossip(msg)
        else:
            super().dispatch(msg)

    # ------------------------------------------------------------------
    # Visibility
    # ------------------------------------------------------------------
    def _visible(self, version: Version) -> bool:
        return version.sr == self.m or version.ut <= self.ust

    def _count_unmerged(self, chain) -> int:
        """Chain versions not yet readable (received but unstable)."""
        return chain.count_matching(lambda v: not self._visible(v))

    def _stable_bound(self, version: Version) -> Micros:
        """The UST value covering this version's whole remote causal past
        (returned to clients so the bound propagates transitively)."""
        return max(self.ust, version.dv[0])

    # ------------------------------------------------------------------
    # GET: freshest local-or-stable version; never blocks
    # ------------------------------------------------------------------
    def handle_get(self, msg: m.GetReq) -> None:
        _, ust_c = msg.rdv
        self.advance_ust(ust_c)
        chain = self.store.chain(msg.key)
        if chain is None:
            self.send(msg.client, self.nil_reply(msg.key, msg.op_id))
            return
        version, scanned = chain.find_freshest(self._visible)
        if version is None:
            # Cannot happen once keys are preloaded (preloaded versions
            # have ut=0, below any UST); fall back to oldest for safety.
            version = next(reversed(list(chain)))
            scanned = len(chain)
        self.metrics.record_get_staleness(
            chain.versions_newer_than(version), self._count_unmerged(chain)
        )
        reply = m.GetReply(key=version.key, value=version.value,
                           ut=version.ut, dv=(self._stable_bound(version),),
                           sr=version.sr, op_id=msg.op_id)
        scan_cost = self._service.chain_scan_per_version_s * scanned
        self.submit_local(scan_cost, self.send, msg.client, reply)

    def nil_reply(self, key: str, op_id: int) -> m.GetReply:
        return m.GetReply(key=key, value=None, ut=0, dv=(self.ust,),
                          sr=self.m, op_id=op_id)

    # ------------------------------------------------------------------
    # PUT: merge the dependency into the hybrid clock; never blocks
    # ------------------------------------------------------------------
    def handle_put(self, msg: m.PutReq) -> None:
        # Recorded under the clock-wait cause so the blocking series of
        # the figure benches show Okapi*'s zero alongside the others' waits.
        self.metrics.record_block_attempt(BLOCK_PUT_CLOCK)
        dt_c, ust_c = msg.dv
        self.advance_ust(ust_c)
        ts = self.hlc.update(dt_c)
        if ts <= self.vv[self.m]:
            raise ProtocolError(
                f"{self.address}: HLC stamp {ts} not beyond "
                f"VV[m]={self.vv[self.m]}"
            )
        self.vv[self.m] = ts
        version = Version(key=msg.key, value=msg.value, sr=self.m, ut=ts,
                          dv=(max(self.ust, ust_c),))
        self.store.insert(version)
        self.rt.persist(version)
        self.replicate(version)
        self.send(msg.client, m.PutReply(ut=ts, op_id=msg.op_id))

    # ------------------------------------------------------------------
    # RO-TX: two-scalar snapshot [stable cut, local cut]; never blocks
    # ------------------------------------------------------------------
    def handle_ro_tx(self, msg: m.RoTxReq) -> None:
        dt_c, ust_c = msg.rdv
        s = max(self.ust, ust_c)
        local_cut = max(self.vv[self.m], dt_c)
        self.coordinate_tx(msg, [s, local_cut])

    def handle_slice(self, msg: m.SliceReq) -> None:
        s, local_cut = msg.tv
        self.advance_ust(s)  # s descends from UST broadcasts: safe merge

        def visible(version: Version) -> bool:
            if version.ut <= s:
                # Universally stable: present everywhere, closed under
                # causal dependency (rdep < ut <= s).
                return True
            # Fresh local versions enter the snapshot only when the stable
            # cut covers their remote causal past, so a returned item can
            # never drag an invisible dependency into the snapshot.
            return (version.sr == self.m and version.ut <= local_cut
                    and version.dv[0] <= s)

        replies = []
        scanned_total = 0
        for key in msg.keys:
            chain = self.store.chain(key)
            if chain is None:
                replies.append(self.nil_reply(key, 0))
                continue
            version, scanned = chain.find_freshest(visible)
            scanned_total += scanned
            if version is None:
                version = next(reversed(list(chain)))
            self.metrics.record_tx_staleness(
                chain.versions_newer_than(version),
                self._count_unmerged(chain),
            )
            replies.append(m.GetReply(key=version.key, value=version.value,
                                      ut=version.ut,
                                      dv=(self._stable_bound(version),),
                                      sr=version.sr, op_id=0))
        response = m.SliceResp(versions=replies, tx_id=msg.tx_id)
        scan_cost = self._service.chain_scan_per_version_s * scanned_total
        self.submit_local(scan_cost, self.send_slice_resp, msg, response)

    # ------------------------------------------------------------------
    # Garbage collection: scalar retention at the DC-aggregated UST
    # ------------------------------------------------------------------
    # The base class's aggregation rounds (GcPush/GcBroadcast) are kept:
    # a slice is served on a *different* partition than the coordinator
    # holding the transaction open, and that partition's own UST can run
    # ahead of the snapshot's stable cut — GC'ing locally at the local UST
    # could then collect the very version a pending slice must return.
    # Aggregating min(UST, active snapshot cuts) across the DC caps every
    # partition's horizon by every coordinator's in-flight transaction,
    # exactly as the vector protocols do.

    def _gc_report_vector(self) -> list[Micros]:
        horizon = self.ust
        for state in self._active_tx.values():
            tv = state.get("tv")
            if tv:
                horizon = min(horizon, tv[0])
        return [horizon]

    def _apply_gc(self, gv: list[Micros]) -> None:
        horizon: Micros = gv[0]
        covered: Callable[[Version], bool] = lambda v: v.ut <= horizon
        self.store.collect_by(covered, [horizon])
