"""Deterministic named random streams.

Every stochastic component (clock skew, network jitter, each client's
workload, ...) draws from its own named stream derived from the experiment
seed, so adding a component or reordering initialization never perturbs the
randomness seen by the others.  This is what makes experiments reproducible
bit-for-bit, which the test suite relies on.
"""

from __future__ import annotations

import random
import zlib

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Stable 63-bit seed for a named stream under a root seed."""
    digest = zlib.crc32(name.encode("utf-8"))
    return (root_seed * 0x9E3779B97F4A7C15 + digest) & 0x7FFF_FFFF_FFFF_FFFF


class RngRegistry:
    """A factory of named, independent, reproducible random streams."""

    def __init__(self, root_seed: int):
        self._root_seed = int(root_seed)
        self._py_streams: dict[str, random.Random] = {}
        self._np_streams: dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> random.Random:
        """A ``random.Random`` stream (cheap scalar sampling)."""
        rng = self._py_streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self._root_seed, name))
            self._py_streams[name] = rng
        return rng

    def numpy_stream(self, name: str) -> np.random.Generator:
        """A NumPy generator stream (vectorized sampling)."""
        rng = self._np_streams.get(name)
        if rng is None:
            rng = np.random.default_rng(_derive_seed(self._root_seed, name))
            self._np_streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(_derive_seed(self._root_seed, f"fork:{name}"))
