"""Durability for the live runtime: write-ahead log, snapshots, recovery.

The simulation backend models no disks — its determinism contract is
"re-run the seed" — but the live asyncio backend
(:mod:`repro.runtime`) serves real clients whose acknowledged writes
must survive a killed process.  This package gives every live partition
server a per-partition WAL (framed with the wire codec, so versions
round-trip exactly), periodic version-chain snapshots with log
truncation, and the boot-time recovery that rebuilds chains, version
vector and clock floor — tolerating a torn final record.

See ``docs/persistence.md`` for the on-disk format and the recovery
walkthrough, and ``repro-recover`` for offline inspection.
"""

from repro.persistence.manager import (
    PartitionDurability,
    RecoveredState,
    partition_dirname,
    recover_directory,
)
from repro.persistence.snapshot import (
    SnapshotState,
    load_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.persistence.wal import WalError, WriteAheadLog

__all__ = [
    "PartitionDurability",
    "RecoveredState",
    "SnapshotState",
    "WalError",
    "WriteAheadLog",
    "load_snapshot",
    "partition_dirname",
    "recover_directory",
    "snapshot_path",
    "write_snapshot",
]
