"""Experiment harness: build a simulated deployment, run it, report.

* :mod:`repro.harness.builders` — wire simulator, network, clocks, servers,
  clients and workloads from an :class:`repro.common.config.ExperimentConfig`.
* :mod:`repro.harness.experiment` — warmup / measure / drain lifecycle and
  the :class:`ExperimentResult` record.
* :mod:`repro.harness.figures` — one experiment definition per paper figure.
* :mod:`repro.harness.sweeps` — generic parameter sweeps.
* :mod:`repro.harness.cli` — ``repro-figures`` command-line entry point.
"""

from repro.harness.builders import BuiltCluster, build_cluster
from repro.harness.experiment import ExperimentResult, run_experiment

__all__ = [
    "BuiltCluster",
    "ExperimentResult",
    "build_cluster",
    "run_experiment",
]
