"""Cure* semantics: stabilization, GSS visibility, stale-but-safe reads."""

import pytest

import helpers
from repro.metrics.collectors import BLOCK_GSS_WAIT


@pytest.fixture
def built():
    return helpers.make_cluster(protocol="cure")


def test_put_then_get_local(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "local")
    reply = helpers.get(built, client, key)
    assert reply.value == "local"  # local items immediately visible


def test_gss_advances_via_stabilization(built):
    helpers.settle(built, 0.5)
    for address, server in built.servers.items():
        assert all(entry > 0 for entry in server.gss), (
            f"GSS never advanced on {address}"
        )


def test_gss_is_lower_bound_of_vv(built):
    helpers.settle(built, 0.5)
    for server in built.servers.values():
        assert all(g <= v for g, v in zip(server.gss, server.vv))


def _inject_remote_version(built, dc, key, value, ahead_s=0.3):
    """Deliver a remote version to one DC through the real replication
    handler, stamped ``ahead_s`` beyond the current GSS so it stays
    unstable (deterministically) until clocks catch up."""
    from repro.protocols import messages as m
    from repro.storage.version import Version

    server = built.servers[built.topology.server(dc, 0)]
    ut = server.gss[0] + int(ahead_s * 1_000_000)
    version = Version(key=key, value=value, sr=0, ut=ut, dv=(0, 0, 0))
    server.apply_replicate(m.Replicate(version=version))
    return server, version


def test_remote_version_hidden_until_stable(built):
    """The pessimism: a received-but-unstable remote version is not
    returned until the stabilization protocol covers it."""
    helpers.settle(built, 0.5)  # let clocks/GSS reach a steady state first
    key = helpers.key_on_partition(built, 0)
    server1, version = _inject_remote_version(built, dc=1, key=key,
                                              value="fresh", ahead_s=0.3)
    assert server1.store.freshest(key).value == "fresh"  # received...
    reader = helpers.client_at(built, dc=1)
    reply = helpers.get(built, reader, key, timeout_s=0.2)
    assert reply.value == 0, "unstable remote version must stay hidden"

    # Once clocks pass the version's timestamp, heartbeats carry it into
    # the version vectors and stabilization makes it visible.
    helpers.settle(built, 0.6)
    reply = helpers.get(built, reader, key)
    assert reply.value == "fresh"


def test_stale_read_counts_old_and_unmerged(built):
    helpers.settle(built, 0.5)
    built.metrics.arm(built.sim.now)
    key = helpers.key_on_partition(built, 0)
    _inject_remote_version(built, dc=1, key=key, value="fresh")
    reader = helpers.client_at(built, dc=1)
    helpers.get(built, reader, key, timeout_s=0.2)
    stale = built.metrics.get_staleness
    assert stale.old_reads == 1
    assert stale.unmerged_reads == 1
    assert stale.fresher_versions_total >= 1


def test_read_your_writes_across_partitions(built):
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0)
    key_b = helpers.key_on_partition(built, 1)
    helpers.put(built, client, key_a, "a")
    put_b = helpers.put(built, client, key_b, "b")
    reply = helpers.get(built, client, key_b)
    assert reply.ut == put_b.ut


def test_causal_read_waits_for_gss(built):
    """A client whose dependencies outrun the GSS blocks briefly instead of
    reading inconsistently."""
    built.metrics.arm(built.sim.now)
    client = helpers.client_at(built, dc=1)
    server = built.servers[built.topology.server(1, 0)]
    client.rdv[0] = server.gss[0] + 20_000
    reply = helpers.get(built, client, helpers.key_on_partition(built, 0),
                        timeout_s=2.0)
    assert reply is not None
    stats = built.metrics.blocking[BLOCK_GSS_WAIT]
    assert stats.blocked == 1


def test_tx_snapshot_uses_stable_boundary(built):
    """Cure* transactions read below the GSS: a fresh remote write is not
    in the snapshot even though POCC would return it."""
    helpers.settle(built, 0.5)
    key = helpers.key_on_partition(built, 0)
    _inject_remote_version(built, dc=1, key=key, value="fresh")
    reader = helpers.client_at(built, dc=1, partition=1)
    reply = helpers.ro_tx(built, reader, [key], timeout_s=1.0)
    assert reply.versions[0].value == 0  # preloaded, not "fresh"


def test_lww_convergence_across_dcs(built):
    key = helpers.key_on_partition(built, 0)
    for dc in range(3):
        helpers.put(built, helpers.client_at(built, dc=dc), key, f"dc{dc}")
    helpers.settle(built, 1.0)
    heads = {
        built.servers[built.topology.server(dc, 0)].store.freshest(key)
        .identity()
        for dc in range(3)
    }
    assert len(heads) == 1


def test_gss_lag_metric_sampled(built):
    built.metrics.arm(built.sim.now)
    helpers.settle(built, 0.5)
    assert built.metrics.gss_lag.count > 0
    # Lag should be roughly the slowest one-way latency plus a few
    # stabilization rounds -- tens of milliseconds, not seconds.
    assert built.metrics.gss_lag.mean < 0.5


def test_gc_report_capped_by_gss(built):
    helpers.settle(built, 0.5)
    server = built.servers[built.topology.server(0, 0)]
    report = server._gc_report_vector()
    assert all(r <= g for r, g in zip(report, server.gss))
