"""Tests for the partition-local multiversion store."""

from repro.storage.store import PartitionStore
from repro.storage.version import Version


def _version(key, ut, sr=0, dv=(0, 0, 0)):
    return Version(key=key, value=ut, sr=sr, ut=ut, dv=dv)


def test_insert_and_freshest():
    store = PartitionStore()
    store.insert(_version("a", 10))
    store.insert(_version("a", 20))
    store.insert(_version("b", 5))
    assert store.freshest("a").ut == 20
    assert store.freshest("b").ut == 5
    assert store.freshest("missing") is None


def test_contains_and_len():
    store = PartitionStore()
    store.insert(_version("a", 1))
    assert "a" in store
    assert "b" not in store
    assert len(store) == 1


def test_total_versions_counts_chain_entries():
    store = PartitionStore()
    store.insert(_version("a", 1))
    store.insert(_version("a", 2))
    store.insert(_version("b", 1))
    assert store.total_versions() == 3


def test_preload_installs_stable_initial_versions():
    store = PartitionStore()
    store.preload(["a", "b"], num_dcs=3, initial_value="init")
    assert store.freshest("a").ut == 0
    assert store.freshest("a").value == "init"
    assert store.freshest("a").dv == (0, 0, 0)
    assert store.versions_inserted == 0  # preload is not workload traffic


def test_versions_inserted_counts_writes():
    store = PartitionStore()
    store.preload(["a"], num_dcs=3)
    store.insert(_version("a", 5))
    assert store.versions_inserted == 1


def test_keys_iterates_all():
    store = PartitionStore()
    store.preload(["a", "b", "c"], num_dcs=3)
    assert sorted(store.keys()) == ["a", "b", "c"]
