"""Tests for the closed-loop client driver."""

import pytest

import helpers
from repro.common.errors import ReproError
from repro.verification.checker import CausalChecker
from repro.workload.driver import ClosedLoopClient
from repro.workload.generators import make_workload


def _driver(built, client_index=0, think_time_s=0.010, checker=None,
            kind="get_put"):
    from repro.common.config import WorkloadConfig
    client = built.clients[client_index]
    workload = make_workload(
        WorkloadConfig(kind=kind, gets_per_put=2, tx_partitions=2),
        built.pools, built.rng.stream("test-driver"),
    )
    return ClosedLoopClient(
        sim=built.sim, client=client, workload=workload,
        think_time_s=think_time_s, rng=built.rng.stream("test-driver-rng"),
        checker=checker,
    )


def test_closed_loop_pacing():
    built = helpers.make_cluster(protocol="pocc")
    driver = _driver(built, think_time_s=0.010)
    driver.start(stagger_s=0.0)
    built.sim.run(until=1.0)
    # Each cycle = response (~1ms) + think (10ms): roughly 90 ops/second.
    assert 60 <= driver.ops_issued <= 110
    assert driver.client.ops_completed >= driver.ops_issued - 1


def test_zero_think_time_saturates_loop():
    built = helpers.make_cluster(protocol="pocc")
    driver = _driver(built, think_time_s=0.0)
    driver.start(stagger_s=0.0)
    built.sim.run(until=0.5)
    assert driver.ops_issued > 200  # bounded only by response times


def test_stop_halts_after_inflight_op():
    built = helpers.make_cluster(protocol="pocc")
    driver = _driver(built)
    driver.start(stagger_s=0.0)
    built.sim.run(until=0.3)
    issued_at_stop = driver.ops_issued
    driver.stop()
    built.sim.run(until=1.0)
    assert driver.ops_issued <= issued_at_stop + 1


def test_double_start_rejected():
    built = helpers.make_cluster(protocol="pocc")
    driver = _driver(built)
    driver.start()
    with pytest.raises(ReproError):
        driver.start()


def test_checker_hooks_invoked_for_gets_and_puts():
    built = helpers.make_cluster(protocol="pocc")
    checker = CausalChecker()
    driver = _driver(built, checker=checker)
    driver.start(stagger_s=0.0)
    built.sim.run(until=0.5)
    assert checker.reads_checked > 10
    assert checker.writes_seen > 3
    assert checker.ok


def test_checker_hooks_invoked_for_transactions():
    built = helpers.make_cluster(protocol="pocc")
    checker = CausalChecker()
    driver = _driver(built, checker=checker, kind="ro_tx")
    driver.start(stagger_s=0.0)
    built.sim.run(until=0.5)
    assert checker.tx_reads_checked > 5
    assert checker.ok


def test_put_values_identify_writer():
    built = helpers.make_cluster(protocol="pocc")
    driver = _driver(built, think_time_s=0.001)
    driver.start(stagger_s=0.0)
    built.sim.run(until=0.3)
    server = built.servers[built.topology.server(0, 0)]
    tagged = [
        v for key in server.store.keys()
        for v in server.store.chain(key)
        if isinstance(v.value, tuple)
    ]
    assert tagged, "driver writes carry (client, seq) values"
    client_id, seq = tagged[0].value
    assert client_id.startswith("c[")
    assert seq >= 1
