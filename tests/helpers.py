"""Shared test utilities: tiny clusters and synchronous-looking op drivers."""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.common.config import (
    ClockConfig,
    ClusterConfig,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.harness.builders import BuiltCluster, build_cluster


def make_cluster(
    protocol: str = "pocc",
    num_dcs: int = 3,
    num_partitions: int = 2,
    keys_per_partition: int = 50,
    clients_per_partition: int = 1,
    seed: int = 7,
    verify: bool = False,
    zero_skew: bool = False,
    cluster_overrides: dict[str, Any] | None = None,
) -> BuiltCluster:
    """A small deployment with manually drivable clients.

    Drivers are *not* started: tests issue operations directly on
    ``built.clients`` and advance ``built.sim`` themselves.
    """
    clocks = ClockConfig(max_offset_us=0, max_drift_ppm=0.0) if zero_skew \
        else ClockConfig()
    cluster = ClusterConfig(
        num_dcs=num_dcs,
        num_partitions=num_partitions,
        keys_per_partition=keys_per_partition,
        protocol=protocol,
        clocks=clocks,
    )
    if cluster_overrides:
        cluster = replace(cluster, **cluster_overrides)
    config = ExperimentConfig(
        cluster=cluster,
        workload=WorkloadConfig(
            clients_per_partition=clients_per_partition,
        ),
        warmup_s=0.0,
        duration_s=1.0,
        seed=seed,
        verify=verify,
    )
    return build_cluster(config)


class OpResult:
    """Captures one operation's completion."""

    def __init__(self) -> None:
        self.reply = None
        self.done = False

    def __call__(self, reply) -> None:
        self.reply = reply
        self.done = True


def run_op(built: BuiltCluster, issue, timeout_s: float = 5.0):
    """Issue one operation and run the simulator until it completes.

    ``issue`` is called with a completion callback; returns the reply.
    Raises AssertionError if the op does not complete within ``timeout_s``
    of simulated time (e.g. blocked forever by a partition).
    """
    result = OpResult()
    issue(result)
    deadline = built.sim.now + timeout_s
    # Step in small increments so we stop soon after completion.
    while not result.done and built.sim.now < deadline:
        built.sim.run(until=min(built.sim.now + 0.01, deadline))
    assert result.done, "operation did not complete within the timeout"
    return result.reply


def get(built: BuiltCluster, client, key: str, timeout_s: float = 5.0):
    return run_op(built, lambda cb: client.get(key, cb), timeout_s)


def put(built: BuiltCluster, client, key: str, value,
        timeout_s: float = 5.0):
    return run_op(built, lambda cb: client.put(key, value, cb), timeout_s)


def ro_tx(built: BuiltCluster, client, keys, timeout_s: float = 5.0):
    return run_op(built, lambda cb: client.ro_tx(keys, cb), timeout_s)


def client_at(built: BuiltCluster, dc: int, partition: int = 0, index: int = 0):
    """The client collocated with server (dc, partition)."""
    for client in built.clients:
        address = client.address
        if (address.dc, address.partition, address.index) == (
            dc, partition, index
        ):
            return client
    raise AssertionError(f"no client at dc={dc} partition={partition}")


def key_on_partition(built: BuiltCluster, partition: int, rank: int = 0) -> str:
    """A workload key that hashes to the given partition."""
    return built.pools.key(partition, rank)


def settle(built: BuiltCluster, seconds: float = 1.0) -> None:
    """Advance simulated time (replication / heartbeats / stabilization)."""
    built.sim.run(until=built.sim.now + seconds)
