"""Ablation — the metadata/visibility design matrix (Section III-A).

The paper argues OCC "can be implemented with any dependency tracking
mechanism".  This bench runs the full 2x2 matrix on one workload:

=============  ==============  =============
metadata       pessimistic     optimistic
=============  ==============  =============
scalar O(1)    gentlerain      occ_scalar
vector O(M)    cure            pocc
=============  ==============  =============

and checks the qualitative trade-offs each axis buys:

* optimistic column: reads are never stale (always the chain head) but
  can block; pessimistic column: reads never block on versions but
  return stale data;
* scalar row: smaller messages, coarser dependency cuts — the optimistic
  scalar blocks more than the optimistic vector (false blocking across
  DCs), and the pessimistic scalar is at least as stale as the
  pessimistic vector.
"""

from pathlib import Path

from repro.common.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.harness.experiment import run_experiment

RESULTS_DIR = Path(__file__).parent / "results"

#: The 2x2 matrix plus okapi — off the grid: universally-pessimistic
#: visibility (stalest cut of all) bought with O(1) metadata and
#: fully non-blocking writes (hybrid clocks).
MATRIX = ("pocc", "cure", "occ_scalar", "gentlerain", "okapi")


def _config(protocol: str) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=4,
                              keys_per_partition=200, protocol=protocol),
        workload=WorkloadConfig(kind="get_put", gets_per_put=4,
                                clients_per_partition=6,
                                think_time_s=0.005),
        warmup_s=0.4,
        duration_s=1.6,
        name=f"metadata-{protocol}",
    )


def test_ablation_metadata_matrix(benchmark):
    results = {}

    def run() -> None:
        for protocol in MATRIX:
            results[protocol] = run_experiment(_config(protocol))

    benchmark.pedantic(run, rounds=1, iterations=1)

    pocc = results["pocc"]
    cure = results["cure"]
    occ_scalar = results["occ_scalar"]
    gentlerain = results["gentlerain"]
    okapi = results["okapi"]

    # Optimistic visibility: reads are never old, in both variants.
    assert pocc.get_staleness["pct_old"] == 0.0
    assert occ_scalar.get_staleness["pct_old"] == 0.0
    # Pessimistic visibility returns old data under write load.
    assert cure.get_staleness["pct_old"] > 0.0
    assert gentlerain.get_staleness["pct_old"] > 0.0
    # The scalar horizon (one GST gated by the slowest link) is at least
    # as stale as the vector GSS.
    assert (gentlerain.get_staleness["pct_old"]
            >= cure.get_staleness["pct_old"] * 0.5)

    # The optimistic protocols pay in blocking instead; the scalar's
    # coarse cut makes it block at least as often as the vector.
    assert occ_scalar.extras["blocking_blocked"] >= \
        pocc.extras["blocking_blocked"]

    # Scalar metadata shrinks the wire footprint vs the vector twin.
    assert occ_scalar.bytes_per_op < pocc.bytes_per_op
    assert gentlerain.bytes_per_op < cure.bytes_per_op

    # Okapi: the stalest visibility horizon of the spectrum (universal
    # stability waits for the slowest DC), paid back with O(1) metadata
    # (replication ships a single scalar cut) and zero blocked writes.
    assert okapi.get_staleness["pct_old"] >= cure.get_staleness["pct_old"]
    assert okapi.bytes_per_op < gentlerain.bytes_per_op
    assert okapi.extras["blocking_blocked"] == 0

    # Neither optimistic variant runs a stabilization protocol.
    assert pocc.gss_lag["count"] == 0
    assert occ_scalar.gss_lag["count"] == 0
    assert cure.gss_lag["count"] > 0
    assert gentlerain.gss_lag["count"] > 0

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"{'protocol':<12} {'thr(ops/s)':>11} {'B/op':>8} "
        f"{'block_p':>10} {'%old':>7} {'vis_lag(ms)':>12}"
    ]
    for protocol in MATRIX:
        r = results[protocol]
        lines.append(
            f"{protocol:<12} {r.throughput_ops_s:>11.0f} "
            f"{r.bytes_per_op:>8.0f} {r.blocking_probability:>10.2e} "
            f"{r.get_staleness['pct_old']:>7.2f} "
            f"{r.visibility_lag['mean'] * 1000:>12.2f}"
        )
    (RESULTS_DIR / "ablation_metadata.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
