"""Tests (incl. property-based) for version chains."""

from hypothesis import given
from hypothesis import strategies as st

from repro.storage.chain import VersionChain
from repro.storage.version import Version


def _version(ut, sr=0, key="k"):
    return Version(key=key, value=f"{sr}:{ut}", sr=sr, ut=ut, dv=(0, 0, 0))


def _chain(*versions):
    chain = VersionChain()
    for version in versions:
        chain.insert(version)
    return chain


def test_empty_chain():
    chain = VersionChain()
    assert chain.head() is None
    assert len(chain) == 0
    assert list(chain) == []


def test_head_is_freshest():
    chain = _chain(_version(10), _version(30), _version(20))
    assert chain.head().ut == 30


def test_iteration_is_freshest_first():
    chain = _chain(_version(10), _version(30), _version(20))
    assert [v.ut for v in chain] == [30, 20, 10]


def test_lww_tie_break_lowest_sr_first():
    chain = _chain(_version(10, sr=2), _version(10, sr=0), _version(10, sr=1))
    assert [v.sr for v in chain] == [0, 1, 2]


def test_find_freshest_with_visibility():
    chain = _chain(_version(10), _version(20), _version(30))
    version, scanned = chain.find_freshest(lambda v: v.ut <= 20)
    assert version.ut == 20
    assert scanned == 2  # scanned 30 (invisible) then 20


def test_find_freshest_none_visible():
    chain = _chain(_version(10), _version(20))
    version, scanned = chain.find_freshest(lambda v: False)
    assert version is None
    assert scanned == 2


def test_find_freshest_head_visible_scans_one():
    chain = _chain(_version(10), _version(20))
    _, scanned = chain.find_freshest(lambda v: True)
    assert scanned == 1


def test_versions_newer_than():
    chain = _chain(_version(10), _version(20), _version(30))
    assert chain.versions_newer_than(_version(10)) == 2
    assert chain.versions_newer_than(_version(30)) == 0
    assert chain.versions_newer_than(_version(25)) == 1


def test_versions_newer_than_respects_tiebreak():
    chain = _chain(_version(10, sr=0), _version(10, sr=2))
    # sr=2 loses the tie, so one version (sr=0) is "newer" than it.
    assert chain.versions_newer_than(_version(10, sr=2)) == 1
    assert chain.versions_newer_than(_version(10, sr=0)) == 0


def test_count_matching():
    chain = _chain(_version(10), _version(20), _version(30))
    assert chain.count_matching(lambda v: v.ut >= 20) == 2


def test_truncate_to():
    v30, v20, v10 = _version(30), _version(20), _version(10)
    chain = _chain(v10, v20, v30)
    chain.truncate_to([v30, v20])
    assert [v.ut for v in chain] == [30, 20]


@given(st.lists(
    st.tuples(st.integers(min_value=1, max_value=10**6),
              st.integers(min_value=0, max_value=2)),
    min_size=1, max_size=50, unique=True,
))
def test_insert_order_invariance(entries):
    """Any insertion order yields the same (sorted) chain."""
    versions = [_version(ut, sr) for ut, sr in entries]
    forward = _chain(*versions)
    backward = _chain(*reversed(versions))
    assert [v.identity() for v in forward] == [
        v.identity() for v in backward
    ]


@given(st.lists(
    st.tuples(st.integers(min_value=1, max_value=10**6),
              st.integers(min_value=0, max_value=2)),
    min_size=1, max_size=50, unique=True,
))
def test_chain_always_sorted_descending(entries):
    chain = _chain(*[_version(ut, sr) for ut, sr in entries])
    keys = [v.order_key for v in chain]
    assert keys == sorted(keys, reverse=True)
    assert chain.head().order_key == max(keys)
