"""Protocol-level inter-DC replication batching (the Okapi amortization).

One :class:`ReplicationBatcher` per partition server accumulates the
versions the server creates and flushes them to its peer replicas as a
single :class:`~repro.protocols.messages.ReplicateBatch` — one message
per flush instead of one per write, which is what makes inter-DC traffic
scale with *batch* count rather than write count (PAPERS.md: Okapi
batches replication traffic between data centers and amortizes its
stabilization metadata across those batches).

The batcher is pure policy: it decides *when* to flush, while the owning
server supplies the two effects it needs — the runtime's
``schedule_flush`` deadline timer and a ``ship(versions)`` callable that
stamps the flush-time clock and fans the batch out.  Because both
effects go through the :class:`~repro.protocols.core.ProtocolRuntime`
seam, the policy behaves identically under the deterministic simulation
and the live asyncio backend.

Flush triggers:

* **size** — ``max_versions`` buffered, or their modeled wire size
  reaching ``max_bytes`` (whichever first);
* **time** — ``flush_ms`` after the *first* buffered version.  The
  deadline is armed when a version enters an empty buffer and cancelled
  whenever a size threshold flushes first, so an idle server keeps no
  timer alive;
While the buffer is non-empty the owning server's heartbeat tick stays
*silent*: a heartbeat's fresher clock must never overtake buffered
versions on the FIFO channel, and none is needed — the armed deadline
ships the buffer, flush-clock stamp included, within ``flush_ms`` (see
``CausalServer._heartbeat_tick``).  Batching therefore coarsens the
effective heartbeat granularity to ``flush_ms`` — the visibility-latency
side of the amortization trade.
"""

from __future__ import annotations

from typing import Callable

from repro.common.config import ReplicationBatchConfig
from repro.protocols.messages import version_bytes
from repro.storage.version import Version


class ReplicationBatcher:
    """Buffers locally created versions until a flush trigger fires."""

    __slots__ = ("rt", "config", "_ship", "_buffer", "_bytes", "_timer",
                 "batches_flushed", "versions_flushed")

    def __init__(
        self,
        rt,
        config: ReplicationBatchConfig,
        ship: Callable[[list], None],
    ):
        self.rt = rt
        self.config = config
        self._ship = ship
        self._buffer: list[Version] = []
        self._bytes = 0
        self._timer = None
        self.batches_flushed = 0
        self.versions_flushed = 0

    @property
    def pending(self) -> int:
        """Versions buffered but not yet shipped."""
        return len(self._buffer)

    @property
    def pending_bytes(self) -> int:
        """Modeled wire size of the buffered versions."""
        return self._bytes

    def add(self, version: Version) -> None:
        """Buffer one newly created version; flush if a threshold trips."""
        self._buffer.append(version)
        self._bytes += version_bytes(version)
        config = self.config
        if (len(self._buffer) >= config.max_versions
                or self._bytes >= config.max_bytes):
            self.flush()
        elif self._timer is None:
            self._timer = self.rt.schedule_flush(
                config.flush_ms / 1000.0, self._deadline
            )

    def _deadline(self) -> None:
        self._timer = None
        if self._buffer:
            self.flush()

    def flush(self) -> None:
        """Ship everything buffered now (no-op on an empty buffer)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._buffer:
            return
        buffered = self._buffer
        self._buffer = []
        self._bytes = 0
        self.batches_flushed += 1
        self.versions_flushed += len(buffered)
        self._ship(buffered)
