"""Shared machinery for causal servers and clients.

:class:`CausalServer` implements everything POCC and Cure* have in common —
update replication in timestamp order, heartbeats (Algorithm 2 lines 19-28),
version-vector bookkeeping, predicate wait-queues for blocked operations
(with per-cause metrics), and the intra-DC garbage-collection rounds of
Section IV-B.  Protocol subclasses add their read/write visibility rules.

:class:`CausalClient` implements the session metadata of Algorithm 1, which
is *identical* for POCC and Cure* (the paper's fairness argument: both
exchange the same metadata).

Both classes are I/O-free :class:`~repro.protocols.core.ProtocolCore`
subclasses: every send, timer and CPU charge goes through the runtime
adapter in ``self.rt``, so the same protocol logic runs on the
deterministic simulation backend and on the live asyncio TCP backend
(:mod:`repro.runtime`).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.clocks.physical import PhysicalClock
from repro.clocks.vector import (
    vec_aggregate_min,
    vec_covers,
    vec_leq,
    vec_max,
    vec_max_inplace,
    vec_min,
    vec_zero,
)
from repro.common.config import ClusterConfig
from repro.common.errors import ProtocolError
from repro.common.types import Address, Micros, OpType
from repro.cluster.ring import ClusterView, initial_view
from repro.cluster.topology import Topology
from repro.metrics.collectors import MetricsRegistry
from repro.protocols import messages as m
from repro.protocols.batching import ReplicationBatcher
from repro.protocols.core import ProtocolCore, ProtocolRuntime
from repro.storage.store import PartitionStore
from repro.storage.version import Version

#: Replication catch-up (crash recovery, live backend): versions per
#: :class:`~repro.protocols.messages.ReplCatchup` chunk, and how long a
#: recovering server holds client traffic waiting for peers that may
#: themselves be down.
CATCHUP_CHUNK = 256
CATCHUP_TIMEOUT_S = 10.0

#: Requests a recovering server parks until replication catch-up ends —
#: everything a client (or a coordinator acting for one) can observe
#: state through.  Server-to-server machinery keeps flowing.
_CLIENT_FACING = (m.GetReq, m.PutReq, m.RoTxReq, m.SliceReq, m.CopsPutReq)


class _Waiter:
    """One blocked operation: a predicate over server state + continuation.

    ``payload`` carries the original request message so the HA protocol can
    identify (and abort) the session behind an over-age waiter.
    """

    __slots__ = ("predicate", "resume", "cause", "blocked_at", "cancelled",
                 "payload")

    def __init__(
        self,
        predicate: Callable[[], bool],
        resume: Callable[[], None],
        cause: str,
        blocked_at: float,
        payload: Any = None,
    ):
        self.predicate = predicate
        self.resume = resume
        self.cause = cause
        self.blocked_at = blocked_at
        self.cancelled = False
        self.payload = payload


class WaitQueue:
    """Predicate-indexed queue of blocked operations.

    Blocked operations hold no CPU (the paper's key efficiency argument for
    POCC under load); they re-run only when :meth:`notify` finds their
    predicate satisfied, paying a small resumption cost.
    """

    __slots__ = ("_server", "_waiters")

    def __init__(self, server: "CausalServer"):
        self._server = server
        self._waiters: list[_Waiter] = []

    def wait(
        self,
        predicate: Callable[[], bool],
        resume: Callable[[], None],
        cause: str,
        payload: Any = None,
    ) -> _Waiter:
        """Park ``resume`` until ``predicate()`` holds (checked on notify)."""
        waiter = _Waiter(predicate, resume, cause, self._server.rt.now,
                         payload)
        self._waiters.append(waiter)
        return waiter

    def notify(self) -> None:
        """Re-check all waiters; wake (and charge resume CPU for) the
        satisfied ones."""
        if not self._waiters:
            return
        still_blocked: list[_Waiter] = []
        for waiter in self._waiters:
            if waiter.cancelled:
                continue
            if waiter.predicate():
                self._server.wake(waiter)
            else:
                still_blocked.append(waiter)
        self._waiters = still_blocked

    def drop(self, waiter: _Waiter) -> None:
        waiter.cancelled = True

    def expired(self, older_than_s: float) -> list[_Waiter]:
        """Waiters blocked longer than ``older_than_s`` (HA detection)."""
        now = self._server.rt.now
        return [
            w for w in self._waiters
            if not w.cancelled and now - w.blocked_at >= older_than_s
        ]

    def __len__(self) -> int:
        return sum(1 for w in self._waiters if not w.cancelled)


class CausalServer(ProtocolCore):
    """Base server ``p^m_n``: replication, heartbeats, waiting, GC."""

    def __init__(
        self,
        runtime: ProtocolRuntime,
        clock: PhysicalClock,
        topology: Topology,
        config: ClusterConfig,
        metrics: MetricsRegistry,
    ):
        super().__init__(runtime, clock)
        address = self.address
        self.topology = topology
        self.config = config
        self.metrics = metrics
        self.store = PartitionStore()
        self.m = address.dc  # local replica id (paper superscript)
        self.n = address.partition  # partition id (paper subscript)
        #: Version vector VV^m_n: one physical timestamp per DC.
        self.vv: list[Micros] = vec_zero(topology.num_dcs)
        self.waiters = WaitQueue(self)
        self._peer_replicas = tuple(
            topology.replicas_of(self.n, except_dc=self.m)
        )
        self._service = config.service
        self._protocol = config.protocol_config
        # Replication batching (off by default): one ReplicateBatch per
        # flush instead of one Replicate per write.  When disabled the
        # batcher does not exist and replicate() takes the per-write
        # fan-out path bit-for-bit, keeping per-seed reports identical.
        batch_config = config.repl_batch
        self._batcher = (
            ReplicationBatcher(self.rt, batch_config, self._ship_batch)
            if batch_config.enabled and self._peer_replicas else None
        )
        # Transactions this node currently coordinates: tx_id -> state.
        self._active_tx: dict[int, dict] = {}
        self._next_tx_id = (self.m << 20) | (self.n << 12)
        # GC aggregation state (partition 0 of each DC aggregates).
        self._gc_reports: dict[int, list[Micros]] = {}
        # Replication catch-up state (crash recovery, live backend):
        # None = normal operation; a set = DCs whose final ReplCatchup
        # chunk is still outstanding, client traffic parked meanwhile.
        self._catching_up: set[int] | None = None
        self._parked_during_catchup: list[Any] = []
        # Anti-entropy accounting (chaos runs assert repair happened).
        self.ae_digests_sent = 0
        self.ae_repairs_applied = 0
        # Elastic membership (off by default): the manager owns the
        # epoch-versioned view and the reshard handoff state machine;
        # disabled, it does not exist and placement stays the boot-frozen
        # hash.  The counters always exist (telemetry reads them).
        self.keys_migrated = 0
        self.migration_bytes = 0
        self.not_owner_redirects = 0
        if config.membership.enabled:
            from repro.protocols.membership import MembershipManager
            self._membership = MembershipManager(self, topology.view)
        else:
            self._membership = None
        self._start_timers()

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _start_timers(self) -> None:
        heartbeat = self._protocol.heartbeat_interval_s
        self.rt.schedule(heartbeat, self._heartbeat_tick)
        gc = self._protocol.gc_interval_s
        # Stagger GC rounds so all nodes do not report at the same instant.
        self.rt.schedule(gc * (1.0 + 0.01 * self.n), self._gc_tick)
        ae = self.config.anti_entropy
        if ae.enabled and self._peer_replicas:
            # Anti-entropy digests (off by default — when disabled this
            # timer never exists and per-seed reports stay byte-identical).
            # Staggered like GC so sibling digests do not collide.
            self.rt.schedule(ae.interval_s * (1.0 + 0.01 * self.m),
                             self._ae_tick)

    def _heartbeat_tick(self) -> None:
        """Algorithm 2 lines 19-26: broadcast the clock if write-idle."""
        delta_us = int(self._protocol.heartbeat_interval_s * 1_000_000)
        ct = self.clock.peek_micros()
        if ct >= self.vv[self.m] + delta_us:
            if self._batcher is not None and self._batcher.pending:
                # A fresher clock must never overtake buffered versions
                # on the FIFO channel (the remote VV entry would advance
                # past undelivered updates), so no heartbeat goes out.
                # Nothing needs to: the armed flush deadline ships the
                # buffer — clock stamp included — within flush_ms.  The
                # batch *is* the heartbeat, at the batching granularity.
                pass
            else:
                ct = self.clock.micros()
                self.vv[self.m] = ct
                self.send_fanout(self._peer_replicas,
                                 m.Heartbeat(ts=ct, src_dc=self.m))
                self.waiters.notify()
        self.rt.schedule(self._protocol.heartbeat_interval_s,
                         self._heartbeat_tick)

    # ------------------------------------------------------------------
    # Waiting / waking
    # ------------------------------------------------------------------
    def wait_for_clock(
        self, target_us: Micros, resume: Callable[[], None]
    ) -> None:
        """Run ``resume`` once the local clock strictly exceeds
        ``target_us`` (the Algorithm 2 line 7 clock wait).

        The wake-up instant is computed from the clock's *current*
        offset.  An injected skew step between scheduling and firing can
        invalidate it: after a negative step the clock may still be at or
        below ``target_us`` when the wake-up fires, and stamping then
        would put an update below its own dependency cut.  The epoch
        check catches exactly that case and re-arms; without steps it
        never triggers, so event counts — and per-seed reports — are
        unchanged.
        """
        clock = self.clock
        epoch = clock.step_epoch

        def fire() -> None:
            if (clock.step_epoch != epoch
                    and clock.peek_micros() <= target_us):
                self.wait_for_clock(target_us, resume)
                return
            resume()

        self.rt.schedule_at(clock.sim_time_when(target_us), fire)

    def wake(self, waiter: _Waiter) -> None:
        """Charge resumption CPU and record the blocking duration."""
        duration = self.rt.now - waiter.blocked_at
        self.metrics.record_block_started(waiter.cause, waiter.blocked_at,
                                          duration)
        self.submit_local(self._service.resume_s, waiter.resume)

    def block_or_run(
        self,
        cause: str,
        predicate: Callable[[], bool],
        action: Callable[[], None],
        payload: Any = None,
    ) -> None:
        """Run ``action`` now if ``predicate`` holds, else park it.

        Records one blocking *attempt* either way, so
        ``blocked / attempts`` is the paper's blocking probability.
        """
        self.metrics.record_block_attempt(cause)
        if predicate():
            action()
        else:
            self.waiters.wait(predicate, action, cause, payload)

    # ------------------------------------------------------------------
    # Update creation & replication
    # ------------------------------------------------------------------
    def create_version(self, key: str, value: Any, dv: Sequence[Micros],
                       optimistic: bool = True) -> Version:
        """Algorithm 2 lines 8-14: stamp, store and replicate an update."""
        ts = self.clock.micros()
        if ts <= self.vv[self.m]:
            # Clock reads are strictly monotonic, so this means a protocol
            # bug (e.g. VV advanced past the local clock).
            raise ProtocolError(
                f"{self.address}: update timestamp {ts} not beyond "
                f"VV[m]={self.vv[self.m]}"
            )
        self.vv[self.m] = ts
        version = Version(key=key, value=value, sr=self.m, ut=ts, dv=dv,
                          optimistic=optimistic)
        self.store.insert(version)
        if self._trace is not None:
            self._span("put", version, key=key)
        # Durability before acknowledgement: the caller replies to the
        # client only after this returns, and the fan-out below is what
        # makes the version observable remotely — both must trail the
        # log.  Under the live backend's group commit the log *sync* is
        # deferred to the end of the tick, and the runtime holds this
        # fan-out (and the caller's reply) until the batched fsync
        # completes, so the ordering holds on the wire, not just here.
        self.rt.persist(version)
        self.replicate(version)
        return version

    def replicate(self, version: Version) -> None:
        """Ship one locally created version to the peer replicas.

        The single choke point of outbound replication: per-write
        fan-out when batching is off (the default, byte-identical to the
        pre-batching engine), or a buffered add that the batcher flushes
        as one :class:`~repro.protocols.messages.ReplicateBatch`.
        """
        if self._trace is not None:
            self._span("replicate_sent", version)
        if self._batcher is not None:
            self._batcher.add(version)
        else:
            self.send_fanout(self._peer_replicas,
                             m.Replicate(version=version))

    def _ship_batch(self, versions: list[Version]) -> None:
        """Stamp and fan out one batch (the batcher's ship effect).

        The flush-time clock read doubles as a heartbeat: it advances
        the local VV entry exactly like Algorithm 2 line 22, and —
        because it is stamped strictly after the newest buffered version
        and channels are FIFO — the receiver may advance its VV entry to
        it once the batch is applied.  The existing write-idle check in
        :meth:`_heartbeat_tick` then suppresses the explicit heartbeat
        while batches keep the clock fresh.

        A flush carrying exactly one version degenerates to the plain
        per-write ``Replicate`` — no envelope, no clock stamp — so
        ``max_versions=1`` reproduces the batching-off engine
        bit-for-bit (the equivalence anchor the regression tests pin).
        """
        if len(versions) == 1:
            self.send_fanout(self._peer_replicas,
                             m.Replicate(version=versions[0]))
            return
        ts = self._stamp_flush_clock()
        self.send_fanout(self._peer_replicas, m.ReplicateBatch(
            versions=versions, src_dc=self.m, clock_ts=ts,
            dst=self._batch_dst(),
        ))

    def _stamp_flush_clock(self) -> Micros:
        """Read the clock for a batch's heartbeat piggyback."""
        ts = self.clock.micros()
        if ts > self.vv[self.m]:
            self.vv[self.m] = ts
            self.waiters.notify()
        return ts

    def _batch_dst(self) -> Micros:
        """Okapi* hook: DC stable time piggybacked on outgoing batches
        (0 = nothing to piggyback; only its aggregators override this)."""
        return 0

    def apply_replicate(self, msg: m.Replicate) -> None:
        """Algorithm 2 lines 16-18 + notify blocked operations."""
        self._install_replicated(msg.version)
        self.waiters.notify()

    def _install_replicated(self, version: Version) -> None:
        """Install one replicated version — without waking waiters, so a
        batch runs one notify pass however many versions it carried."""
        if (self._membership is not None
                and not self._membership.route_replicated(version)):
            # A straggler for a key this partition handed off: forwarded
            # to the local new owner instead of resurrecting the chain.
            return
        self.store.insert(version)
        if version.ut > self.vv[version.sr]:
            self.vv[version.sr] = version.ut
        self.rt.persist(version)
        if self._trace is not None:
            self._span("installed", version)
        self.version_received(version)

    def apply_replicate_batch(self, msg: m.ReplicateBatch) -> None:
        """Apply one flush of a peer's replication batcher.

        Versions install in their creation (timestamp) order; the
        piggybacked flush clock then advances ``VV[src_dc]`` like a
        heartbeat (safe: FIFO channels mean nothing older from that
        source is still in flight); blocked operations get exactly one
        re-check pass for the whole batch.
        """
        for version in msg.versions:
            self._install_replicated(version)
        if msg.clock_ts > self.vv[msg.src_dc]:
            self.vv[msg.src_dc] = msg.clock_ts
        self.waiters.notify()

    def version_received(self, version: Version) -> None:
        """Hook: a remote version was installed locally.

        Optimistic protocols make remote updates readable the instant they
        arrive, so the base implementation records the visibility latency
        (creation at the source to readability here) right away.
        Pessimistic subclasses override this to defer the sample until
        their stability horizon (GSS / GST) covers the version.

        ``version.ut`` is micros on the *source* clock; the bounded clock
        skew makes the conversion to simulated seconds accurate to within
        the configured offset (clamped at zero in the recorder).
        """
        self.metrics.record_visibility_lag(self.rt.now - version.ut / 1e6)
        self._trace_visible(version)

    # ------------------------------------------------------------------
    # Observability (live backend only; no-ops when hooks are absent)
    # ------------------------------------------------------------------
    def _span(self, event: str, version: Version, **fields: Any) -> None:
        """Emit one causal-lifecycle span for ``version`` if it is
        sampled.  Hot call sites pre-check ``self._trace is not None``
        so the tracing-off path pays nothing."""
        trace = self._trace
        if trace is not None and trace.sampled(version.ut):
            trace.span(event, version.sr, version.ut,
                       node=f"dc{self.m}-p{self.n}", **fields)

    def _trace_visible(self, version: Version) -> None:
        """The ``visible`` span: called at the exact point a protocol
        lets reads observe a remote version — immediately here (the
        optimistic base), at the stability horizon in Cure*/GentleRain*/
        Okapi*, after dependency checks in COPS*."""
        trace = self._trace
        if trace is not None and trace.sampled(version.ut):
            trace.span("visible", version.sr, version.ut,
                       node=f"dc{self.m}-p{self.n}")

    def stable_lag_seconds(self) -> float:
        """How far the replication horizon trails the local clock (the
        ``repro_stable_lag_seconds`` gauge, read at scrape time).

        The base reading is the oldest *remote* version-vector entry
        versus the local physical clock — how stale the least-recently
        heard-from replica is.  Protocols with an explicit stability
        cursor override this with their own horizon: Cure*'s GSS,
        GentleRain*'s GST, Okapi*'s UST (a packed hybrid timestamp that
        needs unpacking before it can meet a microsecond clock).
        """
        vv = self.vv
        if len(vv) <= 1:
            return 0.0
        oldest = min(ts for i, ts in enumerate(vv) if i != self.m)
        return max(self.clock.peek_micros() - oldest, 0) / 1e6

    def apply_heartbeat(self, msg: m.Heartbeat) -> None:
        """Algorithm 2 lines 27-28 + notify blocked operations."""
        if msg.ts > self.vv[msg.src_dc]:
            self.vv[msg.src_dc] = msg.ts
        self.waiters.notify()

    # ------------------------------------------------------------------
    # Anti-entropy backfill (repair path for lossy channels)
    # ------------------------------------------------------------------
    # Replication is fire-and-forget over channels the paper assumes
    # lossless; under injected loss a dropped Replicate leaves a
    # permanent hole — and a later heartbeat advances the receiver's VV
    # entry *past* it, so the hole is invisible to the VV watermark
    # alone.  The digest therefore carries, per source, the update times
    # of the versions actually received inside a trailing window below
    # the watermark; the origin diffs that set against what it created
    # in the same window and re-ships exactly the gap.  Anything newer
    # than the watermark is left alone (it may still be in flight; the
    # advancing watermark pulls it into the window next round).

    def _ae_window_ticks(self, window_s: float) -> int:
        """The digest window in *timestamp units*.  Protocols whose
        timestamps are not plain microseconds (Okapi*'s packed hybrid
        values) override this — a window measured in the wrong unit
        silently degenerates to empty and anti-entropy repairs nothing.
        """
        return int(window_s * 1_000_000)

    def _ae_tick(self) -> None:
        ae = self.config.anti_entropy
        window_us = self._ae_window_ticks(ae.window_s)
        vv = self.vv
        by_source: dict[int, list[Micros]] = {}
        for v in self.store.all_versions():
            if v.sr == self.m:
                continue
            floor = vv[v.sr]
            if floor - window_us < v.ut <= floor:
                by_source.setdefault(v.sr, []).append(v.ut)
        for peer in self._peer_replicas:
            self.ae_digests_sent += 1
            self.send(peer, m.AeDigest(
                vv=list(vv),
                uts=tuple(sorted(by_source.get(peer.dc, ()))),
                requester=self.address,
            ))
        self.rt.schedule(ae.interval_s, self._ae_tick)

    def handle_ae_digest(self, msg: m.AeDigest) -> None:
        """Re-ship our own versions the requester provably missed."""
        ae = self.config.anti_entropy
        window_us = self._ae_window_ticks(ae.window_s)
        floor = msg.vv[self.m] if self.m < len(msg.vv) else 0
        if floor <= 0:
            return
        have = set(msg.uts)
        missing = [v for v in self.store.all_versions()
                   if v.sr == self.m and v.ut not in have
                   and floor - window_us < v.ut <= floor]
        if not missing:
            return
        missing.sort(key=lambda v: v.ut)
        for start in range(0, len(missing), ae.chunk):
            self.send(msg.requester, m.AeRepair(
                versions=missing[start:start + ae.chunk], src_dc=self.m))

    def apply_ae_repair(self, msg: m.AeRepair) -> None:
        """Install repaired versions through the protocol's own
        replication path, skipping what arrived by other means since the
        digest went out (a reconnected channel, a catch-up chunk)."""
        for version in msg.versions:
            if not self.store.has_version(version.key, version.sr,
                                          version.ut):
                self.ae_repairs_applied += 1
                self.apply_replicate(m.Replicate(version=version))

    # ------------------------------------------------------------------
    # Garbage collection (Section IV-B)
    # ------------------------------------------------------------------
    def _gc_tick(self) -> None:
        report = self._gc_report_vector()
        aggregator = self.topology.server(self.m, 0)
        if aggregator == self.address:
            self._gc_receive_report(report, self.n)
        else:
            self.send(aggregator, m.GcPush(vec=report, partition=self.n))
        self.rt.schedule(self._protocol.gc_interval_s, self._gc_tick)

    def _gc_report_vector(self) -> list[Micros]:
        """min over active transaction snapshots, else the node's VV.

        The paper's text says "aggregate maximum" of the active TVs, but
        retaining versions needed by the *oldest* active snapshot requires
        the minimum; we implement the minimum (see DESIGN.md).
        """
        vec = list(self.vv)
        for state in self._active_tx.values():
            tv = state.get("tv")
            if tv is not None:
                vec = vec_min(vec, tv)
        return vec

    def _gc_receive_report(self, vec: list[Micros], partition: int) -> None:
        self._gc_reports[partition] = vec
        if not self._aggregation_complete(self._gc_reports):
            return
        gv = vec_aggregate_min(self._gc_reports.values())
        self._gc_reports.clear()
        self.broadcast_dc(m.GcBroadcast(gv=gv),
                          lambda msg: self._apply_gc(msg.gv))

    def _apply_gc(self, gv: list[Micros]) -> None:
        self.store.collect(gv)

    def _aggregation_complete(self, reports: dict[int, Any]) -> bool:
        """Whether a GC/stabilization aggregation round has heard from
        every partition it can still expect to hear from: all of them
        when membership is off (the seed's length check, byte-identical),
        the view members plus the aggregator itself when it is on — a
        partition resharded out of the view may be dead, and waiting on
        its report would stall every round forever.
        """
        mem = self._membership
        if mem is None:
            return len(reports) >= self.topology.num_partitions
        return mem.quorum_partitions().issubset(reports.keys())

    # ------------------------------------------------------------------
    # Intra-DC broadcast (stabilization / GC rounds)
    # ------------------------------------------------------------------
    def broadcast_dc(
        self, msg: Any, receive_local: Callable[[Any], None]
    ) -> None:
        """Fan ``msg`` to every server of this DC, sizing it only once.

        The broadcaster applies the message to itself via
        ``receive_local`` at its own slot in DC iteration order, which
        preserves the exact event-scheduling order of the per-server loop
        this replaces (the local apply may wake waiters and schedule
        events *before* the remote sends draw latency samples).
        """
        size = self.rt.message_size(msg)
        send = self.rt.send
        src = self.address
        for server in self.topology.dc_servers(self.m):
            if server == src:
                receive_local(msg)
            else:
                send(server, msg, size)

    # ------------------------------------------------------------------
    # Crash recovery: durable-state restore + replication catch-up
    # ------------------------------------------------------------------
    def restore_durable_state(self, recovered) -> int:
        """Rebuild chains, version vector and clock floor from disk.

        ``recovered`` is a :class:`repro.persistence.manager.
        RecoveredState`.  Replaying is insert-by-identity: versions the
        (deterministic) preload already installed, or that both the
        snapshot and the log tail carry, merge instead of duplicating —
        which is what makes "snapshot, then replay the tail" idempotent
        regardless of where the crash fell between the two.  Returns the
        number of versions actually added.
        """
        applied = 0
        store = self.store
        for version in recovered.versions:
            existing = store.find_version(version.key, version.sr,
                                          version.ut)
            if existing is not None:
                self._merge_recovered(existing, version)
                continue
            store.insert(version)
            applied += 1
            if version.ut > self.vv[version.sr]:
                self.vv[version.sr] = version.ut
        for dc, ts in enumerate(recovered.vv):
            if dc < len(self.vv) and ts > self.vv[dc]:
                self.vv[dc] = ts
        # New updates must stamp strictly beyond everything already
        # durable, whatever the OS clock did across the restart.
        self._advance_clock_past(self.vv[self.m])
        return applied

    def _merge_recovered(self, existing: Version, recovered: Version) -> None:
        """Fold a replayed duplicate into the already-present version.

        Nothing to do for immutable vector-clock versions; COPS*
        overrides this to merge the mutable ``visible`` flag (the log
        records a version once hidden and again once its checks passed).
        """

    def _advance_clock_past(self, floor_us: Micros) -> None:
        """Clock-discipline hook: hybrid-clock protocols override."""
        self.clock.advance_past(floor_us)

    def begin_catchup(self, timeout_s: float = CATCHUP_TIMEOUT_S) -> None:
        """Ask every peer replica to re-send what the crash window lost.

        Replication has no retransmit (channels are fire-and-forget
        FIFO), so updates sent while this server was down are gone from
        the wire.  Worse, the first heartbeat from a peer would advance
        ``VV`` *past* those lost updates and a GET could then serve the
        pre-crash past as if it were fresh — so until every peer's final
        catch-up chunk (or ``timeout_s``, for peers that are themselves
        down), client-facing requests are parked.
        """
        peer_dcs = {addr.dc for addr in self._peer_replicas}
        if not peer_dcs:
            return
        self._catching_up = peer_dcs
        self._parked_during_catchup = []
        self.send_fanout(
            self._peer_replicas,
            m.ReplSyncReq(vv=list(self.vv), requester=self.address),
        )
        self.rt.schedule(timeout_s, self._catchup_timeout)

    def handle_repl_sync(self, msg: m.ReplSyncReq) -> None:
        """Re-send our locally created versions newer than the
        requester's recovered vector, in update-time order, chunked."""
        floor = msg.vv[self.m] if self.m < len(msg.vv) else 0
        missed = [v for v in self.store.all_versions()
                  if v.sr == self.m and v.ut > floor]
        missed.sort(key=lambda v: v.ut)
        if not missed:
            self.send(msg.requester,
                      m.ReplCatchup(versions=[], src_dc=self.m, last=True))
            return
        for start in range(0, len(missed), CATCHUP_CHUNK):
            chunk = missed[start:start + CATCHUP_CHUNK]
            self.send(msg.requester, m.ReplCatchup(
                versions=chunk, src_dc=self.m,
                last=start + CATCHUP_CHUNK >= len(missed),
            ))

    def apply_catchup(self, msg: m.ReplCatchup) -> None:
        """Install missed versions through the protocol's own
        replication path (skipping what a reconnected channel already
        delivered), and unpark clients once every peer has answered."""
        for version in msg.versions:
            if not self.store.has_version(version.key, version.sr,
                                          version.ut):
                self.apply_replicate(m.Replicate(version=version))
        if msg.last and self._catching_up is not None:
            self._catching_up.discard(msg.src_dc)
            if not self._catching_up:
                self._finish_catchup()

    def _catchup_timeout(self) -> None:
        if self._catching_up is not None:
            # A peer DC is unreachable (possibly down itself): serve
            # what we have rather than block forever — availability over
            # freshness, exactly the optimistic protocol's stance.
            self._finish_catchup()

    def _finish_catchup(self) -> None:
        self._catching_up = None
        parked = self._parked_during_catchup
        self._parked_during_catchup = []
        for parked_msg in parked:
            self.on_message(parked_msg)
        self.waiters.notify()

    def on_message(self, msg: Any) -> None:
        if self._catching_up is not None and isinstance(msg, _CLIENT_FACING):
            self._parked_during_catchup.append(msg)
            return
        super().on_message(msg)

    # ------------------------------------------------------------------
    # Dispatch plumbing shared by subclasses
    # ------------------------------------------------------------------
    def service_time(self, msg: Any) -> float:
        service = self._service
        if isinstance(msg, m.GetReq):
            return service.get_s
        if isinstance(msg, m.PutReq):
            return service.put_s
        if isinstance(msg, m.Replicate):
            return service.replicate_s
        if isinstance(msg, m.ReplicateBatch):
            # Applying n versions costs n applies; the batch saves
            # messages and bytes, not modeled CPU.
            return service.replicate_s * len(msg.versions)
        if isinstance(msg, m.Heartbeat):
            return service.heartbeat_s
        if isinstance(msg, m.RoTxReq):
            partitions = {self.owner_partition(k) for k in msg.keys}
            return (service.tx_coordinator_s
                    + service.tx_coordinator_per_slice_s * len(partitions))
        if isinstance(msg, m.SliceReq):
            return service.slice_base_s + service.slice_per_key_s * len(msg.keys)
        if isinstance(msg, m.SliceResp):
            return service.tx_coordinator_per_slice_s
        if isinstance(msg, (m.StabPush, m.StabBroadcast, m.UstGossip)):
            return service.stabilization_msg_s
        if isinstance(msg, (m.GcPush, m.GcBroadcast)):
            return service.gc_msg_s
        if isinstance(msg, m.AeDigest):
            return service.stabilization_msg_s
        if isinstance(msg, m.AeRepair):
            # Installing n repaired versions costs n replication applies.
            return service.replicate_s * len(msg.versions)
        if isinstance(msg, m.MigrateChunk):
            # Installing n migrated versions costs n replication applies.
            return service.replicate_s * len(msg.versions)
        if isinstance(msg, (m.ViewPropose, m.ViewCommit, m.ViewGossip,
                            m.MigrateStart, m.MigrateAck)):
            return service.stabilization_msg_s
        return 0.0

    def message_priority(self, msg: Any) -> int:
        """Background machinery (replication apply, heartbeats,
        stabilization, GC) runs behind client-facing work, mirroring the
        request-threads-vs-apply-threads structure of real stores.  Under
        saturation the background class starves — the paper's stated cause
        of load-dependent blocking (POCC) and staleness (Cure*)."""
        from repro.protocols.core import BACKGROUND, FOREGROUND
        if isinstance(msg, (m.Replicate, m.ReplicateBatch, m.Heartbeat,
                            m.StabPush, m.StabBroadcast, m.UstGossip,
                            m.GcPush, m.GcBroadcast,
                            m.AeDigest, m.AeRepair,
                            m.MigrateChunk, m.ViewGossip)):
            # Handoff streams and view gossip are bulk/background work;
            # the reshard *control* messages (propose, start, commit,
            # acks) stay foreground so a saturated node cannot stall a
            # view change indefinitely.
            return BACKGROUND
        return FOREGROUND

    def dispatch(self, msg: Any) -> None:
        mem = self._membership
        if mem is not None and mem.intercept(msg):
            return
        if isinstance(msg, m.GetReq):
            self.handle_get(msg)
        elif isinstance(msg, m.PutReq):
            self.handle_put(msg)
        elif isinstance(msg, m.Replicate):
            self.apply_replicate(msg)
        elif isinstance(msg, m.ReplicateBatch):
            self.apply_replicate_batch(msg)
        elif isinstance(msg, m.Heartbeat):
            self.apply_heartbeat(msg)
        elif isinstance(msg, m.RoTxReq):
            self.handle_ro_tx(msg)
        elif isinstance(msg, m.SliceReq):
            self.handle_slice(msg)
        elif isinstance(msg, m.SliceResp):
            self.handle_slice_resp(msg)
        elif isinstance(msg, m.GcPush):
            self._gc_receive_report(msg.vec, msg.partition)
        elif isinstance(msg, m.GcBroadcast):
            self._apply_gc(msg.gv)
        elif isinstance(msg, m.ReplSyncReq):
            self.handle_repl_sync(msg)
        elif isinstance(msg, m.ReplCatchup):
            self.apply_catchup(msg)
        elif isinstance(msg, m.AeDigest):
            self.handle_ae_digest(msg)
        elif isinstance(msg, m.AeRepair):
            self.apply_ae_repair(msg)
        else:
            self.handle_other(msg)

    # -- protocol-specific hooks ----------------------------------------
    def handle_get(self, msg: m.GetReq) -> None:
        raise NotImplementedError

    def handle_put(self, msg: m.PutReq) -> None:
        raise NotImplementedError

    def handle_ro_tx(self, msg: m.RoTxReq) -> None:
        raise NotImplementedError

    def handle_slice(self, msg: m.SliceReq) -> None:
        raise NotImplementedError

    def handle_other(self, msg: Any) -> None:
        raise ProtocolError(f"{self.address}: unhandled message {msg!r}")

    # ------------------------------------------------------------------
    # Read-only transaction fan-out / fan-in (Algorithm 2 lines 29-38)
    # ------------------------------------------------------------------
    def coordinate_tx(
        self,
        msg: m.RoTxReq,
        tv: list[Micros],
        pessimistic: bool = False,
    ) -> None:
        """Fan a RO-TX out to one slice request per involved partition.

        The protocols differ only in how the snapshot vector ``tv`` is
        computed (received-items boundary for POCC, stable-items boundary
        for Cure*); the coordination is identical.
        """
        groups: dict[int, list[str]] = {}
        for key in msg.keys:
            groups.setdefault(self.owner_partition(key), []).append(key)
        tx_id = self.new_tx_id()
        self._active_tx[tx_id] = {
            "tv": tv,
            "client": msg.client,
            "op_id": msg.op_id,
            "awaiting": len(groups),
            "versions": [],
            # The original request, kept so a view change under the
            # transaction (aborted slice) can regroup and retry it.
            "origin": msg,
        }
        for partition, keys in groups.items():
            slice_req = m.SliceReq(keys=tuple(keys), tv=list(tv),
                                   coordinator=self.address, tx_id=tx_id,
                                   pessimistic=pessimistic)
            target = self.topology.server(self.m, partition)
            if target == self.address:
                # Local slice: skip the network, still pay the CPU.
                self.on_message(slice_req)
            else:
                self.send(target, slice_req)

    def handle_slice_resp(self, msg: m.SliceResp) -> None:
        state = self._active_tx.get(msg.tx_id)
        if state is None:
            return  # transaction aborted (possible under HA recovery)
        if msg.aborted and self._membership is not None:
            # A slice server no longer owns part of the snapshot (the
            # view changed under the transaction): drop this attempt and
            # regroup the whole transaction against the current view.
            # The HA protocol overrides this method and handles its own
            # aborts before reaching here.
            del self._active_tx[msg.tx_id]
            self.handle_ro_tx(state["origin"])
            return
        state["versions"].extend(msg.versions)
        state["awaiting"] -= 1
        if state["awaiting"] == 0:
            del self._active_tx[msg.tx_id]
            self.send(state["client"],
                      m.RoTxReply(versions=state["versions"],
                                  op_id=state["op_id"]))

    def send_slice_resp(self, msg: m.SliceReq, response: m.SliceResp) -> None:
        if msg.coordinator == self.address:
            self.on_message(response)
        else:
            self.send(msg.coordinator, response)

    # ------------------------------------------------------------------
    # Helpers shared by subclasses
    # ------------------------------------------------------------------
    def reply_for(self, version: Version, op_id: int) -> m.GetReply:
        return m.GetReply(
            key=version.key,
            value=version.value,
            ut=version.ut,
            dv=version.dv,
            sr=version.sr,
            op_id=op_id,
        )

    def nil_reply(self, key: str, op_id: int) -> m.GetReply:
        """Reply for a key with no version anywhere (possible only when the
        workload bypasses preloading)."""
        return m.GetReply(
            key=key, value=None, ut=0,
            dv=(0,) * self.topology.num_dcs, sr=self.m, op_id=op_id,
        )

    def owner_partition(self, key: str) -> int:
        """Key placement under the server's *current* view (falls back
        to the topology's boot-frozen placement when membership is off)."""
        mem = self._membership
        if mem is not None:
            return mem.view.owner_of(key)
        return self.topology.partition_of(key)

    @property
    def view_epoch(self) -> int:
        """The committed view epoch (0 when membership is off)."""
        mem = self._membership
        return mem.view.epoch if mem is not None else 0

    def new_tx_id(self) -> int:
        self._next_tx_id += 1
        return self._next_tx_id

    def vv_covers(self, deps: Sequence[Micros], skip_local: bool = True) -> bool:
        """The Algorithm 2 waiting condition: VV >= deps (entry-wise),
        optionally skipping the local entry."""
        return vec_covers(self.vv, deps, skip=self.m if skip_local else None)


class CausalClient(ProtocolCore):
    """Client-side session state and operations (Algorithm 1).

    The driver calls :meth:`get` / :meth:`put` / :meth:`ro_tx` with a
    completion callback; the client maintains ``DV_c`` and ``RDV_c`` exactly
    as the pseudo-code prescribes.  POCC and Cure* clients are identical —
    the paper keeps client metadata the same for fairness — so protocol
    subclasses rarely override anything here.
    """

    def __init__(
        self,
        runtime: ProtocolRuntime,
        clock: PhysicalClock,
        topology: Topology,
        config: ClusterConfig,
        metrics: MetricsRegistry,
    ):
        super().__init__(runtime, clock)
        self.topology = topology
        self.config = config
        self.metrics = metrics
        self.m = self.address.dc
        num_dcs = topology.num_dcs
        #: DV_c: newest potential dependency per DC (reads and writes).
        self.dv: list[Micros] = vec_zero(num_dcs)
        #: RDV_c: dependency cut induced by reads only.
        self.rdv: list[Micros] = vec_zero(num_dcs)
        self._next_op_id = 0
        self._pending: dict[int, tuple[OpType, float, Callable]] = {}
        #: Operations completed since construction (includes warmup).
        self.ops_completed = 0
        self.session_resets = 0
        # Elastic membership: the client tracks its own copy of the view
        # (updated from NotOwner redirects) and stashes each in-flight
        # single-key request so a redirect can re-send the *original*
        # message — its vectors were snapshotted at issue time and stay a
        # correct causal past wherever the key now lives.  Both are None
        # when membership is off.
        membership = config.membership
        if membership.enabled:
            self._view: ClusterView | None = initial_view(
                topology.num_partitions, membership.initial_members,
                membership.vnodes)
            self._inflight: dict[int, Any] | None = {}
        else:
            self._view = None
            self._inflight = None

    # ------------------------------------------------------------------
    # Operations (Algorithm 1)
    # ------------------------------------------------------------------
    def read_dependency_vector(self) -> list[Micros]:
        """The vector attached to read requests.

        POCC sends RDV_c exactly as in Algorithm 1.  The Cure* client
        overrides this to ``max(RDV_c, DV_c)``: Cure's snapshots cover the
        client's whole causal past (including its own writes and the update
        times of items it read), which keeps read-your-writes robust under
        clock skew.  Metadata cost is identical — one M-entry vector.
        """
        return list(self.rdv)

    def get(self, key: str, callback: Callable[[m.GetReply], None]) -> None:
        """GET(k): send ⟨GETReq k, RDV_c⟩ to the responsible local server."""
        op_id = self._register(OpType.GET, callback)
        target = self._server_for(key)
        req = m.GetReq(key=key, rdv=self.read_dependency_vector(),
                       client=self.address, op_id=op_id)
        if self._inflight is not None:
            self._inflight[op_id] = req
        self.send(target, req)

    def put(self, key: str, value: Any,
            callback: Callable[[m.PutReply], None]) -> None:
        """PUT(k, v): send ⟨PUTReq k, v, DV_c⟩."""
        op_id = self._register(OpType.PUT, callback)
        target = self._server_for(key)
        req = m.PutReq(key=key, value=value, dv=list(self.dv),
                       client=self.address, op_id=op_id)
        if self._inflight is not None:
            self._inflight[op_id] = req
        self.send(target, req)

    def ro_tx(self, keys: Sequence[str],
              callback: Callable[[m.RoTxReply], None]) -> None:
        """RO-TX(χ): send ⟨RO-TX-Req χ, RDV_c⟩ to the session's server."""
        op_id = self._register(OpType.RO_TX, callback)
        coordinator = self.topology.server(self.m, self.address.partition)
        self.send(coordinator,
                  m.RoTxReq(keys=tuple(keys),
                            rdv=self.read_dependency_vector(),
                            client=self.address, op_id=op_id))

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def service_time(self, msg: Any) -> float:
        return 0.0  # clients are load generators, not modeled CPUs

    def dispatch(self, msg: Any) -> None:
        if isinstance(msg, m.GetReply):
            self._complete_get(msg)
        elif isinstance(msg, m.PutReply):
            self._complete_put(msg)
        elif isinstance(msg, m.RoTxReply):
            self._complete_ro_tx(msg)
        elif isinstance(msg, m.SessionClosed):
            self._session_closed(msg)
        elif isinstance(msg, m.NotOwner):
            self._handle_not_owner(msg)
        else:
            raise ProtocolError(f"{self.address}: unexpected {msg!r}")

    def absorb_read(self, reply: m.GetReply) -> None:
        """Algorithm 1 lines 4-6: fold a read result into DV_c / RDV_c."""
        vec_max_inplace(self.rdv, reply.dv)
        vec_max_inplace(self.dv, self.rdv)
        if reply.ut > self.dv[reply.sr]:
            self.dv[reply.sr] = reply.ut

    def _complete_get(self, reply: m.GetReply) -> None:
        op_type, started, callback = self._pending.pop(reply.op_id)
        if self._inflight is not None:
            self._inflight.pop(reply.op_id, None)
        self.absorb_read(reply)
        self._finish(op_type, started)
        callback(reply)

    def _complete_put(self, reply: m.PutReply) -> None:
        op_type, started, callback = self._pending.pop(reply.op_id)
        if self._inflight is not None:
            self._inflight.pop(reply.op_id, None)
        # Algorithm 1 line 12: DV_c[m] <- ut.
        self.dv[self.m] = reply.ut
        self._finish(op_type, started)
        callback(reply)

    def _complete_ro_tx(self, reply: m.RoTxReply) -> None:
        op_type, started, callback = self._pending.pop(reply.op_id)
        # Algorithm 1 lines 17-19: read each returned item as a GET result.
        for item in reply.versions:
            self.absorb_read(item)
        self._finish(op_type, started)
        callback(reply)

    def _session_closed(self, msg: m.SessionClosed) -> None:
        """Base clients treat a closed session as fatal; the HA client
        overrides this with the re-initialization protocol."""
        raise ProtocolError(
            f"{self.address}: session closed by server ({msg.reason}); "
            "plain POCC/Cure clients cannot recover"
        )

    # ------------------------------------------------------------------
    # Elastic membership: NotOwner redirects
    # ------------------------------------------------------------------
    def _handle_not_owner(self, msg: m.NotOwner) -> None:
        """Adopt the server's view and re-place the original request.

        The deterministic per-op jitter decorrelates the retry storm a
        view commit releases (every parked op answers NotOwner at once).
        """
        if self._inflight is None:
            raise ProtocolError(
                f"{self.address}: NotOwner redirect with membership off"
            )
        if self._view is None or msg.epoch > self._view.epoch:
            self._view = ClusterView.from_wire(msg.epoch, msg.members,
                                               msg.vnodes)
        if msg.op_id not in self._inflight:
            return  # the operation completed while the redirect flew
        backoff = self.config.membership.redirect_backoff_s
        jitter = 0.5 + ((msg.op_id * 2654435761) & 0xFFFF) / 0xFFFF
        self.rt.schedule(backoff * jitter,
                         lambda: self._resend(msg.op_id))

    def _resend(self, op_id: int) -> None:
        req = self._inflight.get(op_id) if self._inflight else None
        if req is None or op_id not in self._pending:
            return  # completed meanwhile
        self.send(self._server_for(req.key), req)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _register(self, op_type: OpType, callback: Callable) -> int:
        self._next_op_id += 1
        self._pending[self._next_op_id] = (op_type, self.rt.now, callback)
        return self._next_op_id

    def _finish(self, op_type: OpType, started: float) -> None:
        self.ops_completed += 1
        self.metrics.record_op(op_type, self.rt.now - started)

    def _server_for(self, key: str) -> Address:
        if self._view is not None:
            return self.topology.server(self.m, self._view.owner_of(key))
        return self.topology.server(self.m, self.topology.partition_of(key))

    def reset_session(self) -> None:
        """Drop all session metadata (client fail-over / HA demotion).

        Per Section III-B the client "might not be able to see the same
        version of some data items read or written in the optimistic
        session" — causal stickiness restarts from scratch.
        """
        self.dv = vec_zero(len(self.dv))
        self.rdv = vec_zero(len(self.rdv))
        self.session_resets += 1

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)
