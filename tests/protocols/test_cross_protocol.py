"""Cross-protocol properties: randomized workloads through the independent
checker, convergence everywhere, and protocol-registry plumbing."""

import pytest

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    LatencyConfig,
    WorkloadConfig,
)
from repro.common.errors import ConfigError
from repro.harness.experiment import run_experiment
from repro.protocols.registry import PROTOCOLS, client_class, server_class

SAFE_PROTOCOLS = ("pocc", "cure", "ha_pocc", "gentlerain", "occ_scalar")
#: COPS* is causally safe but supports only GET/PUT (no RO-TX).
GET_PUT_PROTOCOLS = SAFE_PROTOCOLS + ("cops",)


def _config(protocol, kind="get_put", seed=11, **workload_kw):
    workload_defaults = dict(
        clients_per_partition=3,
        think_time_s=0.004,
        gets_per_put=3,
        tx_partitions=2,
    )
    workload_defaults.update(workload_kw)
    return ExperimentConfig(
        cluster=ClusterConfig(
            num_dcs=3,
            num_partitions=2,
            keys_per_partition=40,
            protocol=protocol,
        ),
        workload=WorkloadConfig(kind=kind, **workload_defaults),
        warmup_s=0.2,
        duration_s=1.2,
        seed=seed,
        verify=True,
        name=f"xproto-{protocol}",
    )


@pytest.mark.parametrize("protocol", GET_PUT_PROTOCOLS)
def test_get_put_histories_causally_consistent(protocol):
    result = run_experiment(_config(protocol))
    assert result.verification["violations"] == 0
    assert result.verification["reads_checked"] > 100
    assert result.divergences == 0


@pytest.mark.parametrize("protocol", SAFE_PROTOCOLS)
def test_tx_histories_causally_consistent(protocol):
    result = run_experiment(_config(protocol, kind="ro_tx"))
    assert result.verification["violations"] == 0
    assert result.verification["tx_reads_checked"] > 50
    assert result.divergences == 0


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_pocc_consistent_across_seeds(seed):
    result = run_experiment(_config("pocc", seed=seed))
    assert result.verification["violations"] == 0


def test_eventual_violates_causality_under_partition_pressure():
    """The checker is not vacuous: the unsafe protocol fails it when the
    write gap is small relative to WAN jitter."""
    violations = 0
    for seed in range(5):
        config = _config("eventual", seed=seed, think_time_s=0.0,
                         gets_per_put=2)
        config = ExperimentConfig(
            cluster=ClusterConfig(
                num_dcs=3,
                num_partitions=2,
                keys_per_partition=8,  # hot keys -> dependency collisions
                protocol="eventual",
                latency=LatencyConfig(jitter_ratio=0.5),  # messy WAN
            ),
            workload=config.workload,
            warmup_s=0.1,
            duration_s=1.5,
            seed=seed,
            verify=True,
        )
        result = run_experiment(config)
        violations += result.verification["violations"]
    assert violations > 0


def test_all_protocols_converge_after_quiescence():
    for protocol in PROTOCOLS:
        result = run_experiment(_config(protocol))
        assert result.divergences == 0, protocol


def test_registry_lookup():
    for name, (server_cls, client_cls) in PROTOCOLS.items():
        assert server_class(name) is server_cls
        assert client_class(name) is client_cls


def test_registry_unknown_name():
    with pytest.raises(ConfigError):
        server_class("nope")
    with pytest.raises(ConfigError):
        client_class("nope")


def test_identical_config_identical_results():
    a = run_experiment(_config("pocc"))
    b = run_experiment(_config("pocc"))
    assert a.total_ops == b.total_ops
    assert a.throughput_ops_s == b.throughput_ops_s
    assert a.sim_events == b.sim_events
