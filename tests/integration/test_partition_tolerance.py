"""Integration: availability under network partitions.

The paper's trade-off, demonstrated end-to-end:

* Cure* (pessimistic) stays available during a partition, serving stale
  island-local data;
* plain POCC can block indefinitely (unavailable) on dependencies cut off
  by the partition;
* HA-POCC detects, demotes to the pessimistic protocol, stays available,
  and recovers optimism after the heal.
"""

import pytest

import helpers
from repro.common.config import ProtocolConfig


def _scenario(protocol, **overrides):
    """X -> Y with X cut off from DC1: the canonical Section III-B setup."""
    built = helpers.make_cluster(protocol=protocol, cluster_overrides=overrides)
    key_x = helpers.key_on_partition(built, 0)
    key_y = helpers.key_on_partition(built, 1)
    built.faults.partition_dcs([0], [1])
    helpers.put(built, helpers.client_at(built, dc=0), key_x, "X")
    helpers.settle(built, 0.3)
    client2 = helpers.client_at(built, dc=2)
    helpers.get(built, client2, key_x)
    helpers.put(built, client2, key_y, "Y")
    helpers.settle(built, 0.3)
    client1 = helpers.client_at(built, dc=1, partition=1)
    return built, client1, key_x, key_y


def test_cure_stays_available_and_hides_y():
    built, client1, key_x, key_y = _scenario("cure")
    # Pessimistic: Y is not yet stable in DC1 (its dependency X never
    # arrived), so the read completes immediately with the older version.
    reply_y = helpers.get(built, client1, key_y, timeout_s=1.0)
    assert reply_y.value == 0
    reply_x = helpers.get(built, client1, key_x, timeout_s=1.0)
    assert reply_x.value == 0
    assert built.faults.active  # still partitioned, everything served


def test_cure_remains_available_for_minutes_of_partition():
    built, client1, key_x, key_y = _scenario("cure")
    helpers.settle(built, 5.0)
    for _ in range(5):
        reply = helpers.get(built, client1, key_y, timeout_s=1.0)
        assert reply is not None


def test_pocc_blocks_until_heal():
    built, client1, key_x, key_y = _scenario("pocc")
    got_y = helpers.get(built, client1, key_y)  # optimistic: sees fresh Y
    assert got_y.value == "Y"
    result = helpers.OpResult()
    client1.get(key_x, result)
    built.sim.run(until=built.sim.now + 2.0)
    assert not result.done  # unavailable while partitioned
    built.faults.heal_all()
    built.sim.run(until=built.sim.now + 1.0)
    assert result.done
    assert result.reply.value == "X"


def test_ha_pocc_full_cycle():
    built, client1, key_x, key_y = _scenario(
        "ha_pocc",
        protocol_config=ProtocolConfig(
            block_timeout_s=0.3,
            ha_stabilization_interval_s=0.050,
            ha_promotion_retry_s=0.8,
        ),
    )
    got_y = helpers.get(built, client1, key_y)  # optimistic while healthy
    assert got_y.value == "Y"

    # Blocked GET -> timeout -> demotion -> pessimistic completion.
    reply_x = helpers.get(built, client1, key_x, timeout_s=3.0)
    assert reply_x.value == 0
    assert client1.pessimistic

    # Available for further work during the partition (on another key).
    key_local = helpers.key_on_partition(built, 0, rank=1)
    helpers.put(built, client1, key_local, "during-partition", timeout_s=1.0)

    # Heal -> promotion -> optimistic freshness restored.
    built.faults.heal_all()
    helpers.settle(built, 1.5)
    assert not client1.pessimistic
    reply_x2 = helpers.get(built, client1, key_x, timeout_s=1.0)
    assert reply_x2.value == "X"


def test_replication_catches_up_after_heal():
    built, client1, key_x, key_y = _scenario("pocc")
    built.faults.heal_all()
    helpers.settle(built, 1.0)
    from repro.verification.convergence import check_convergence
    assert check_convergence(built.servers, 3, 2) == []


def test_full_dc_failure_releases_other_dcs_under_cure():
    """An unhealed isolation of DC0 models a DC failure; the two healthy
    DCs keep making progress with each other under the pessimistic
    protocol."""
    built = helpers.make_cluster(protocol="cure")
    built.faults.isolate_dc(0, all_dcs=range(3))
    key = helpers.key_on_partition(built, 0)
    writer = helpers.client_at(built, dc=1)
    helpers.put(built, writer, key, "from-dc1")
    helpers.settle(built, 1.0)
    reader = helpers.client_at(built, dc=2)
    reply = helpers.get(built, reader, key, timeout_s=1.0)
    assert reply.value in ("from-dc1", 0)
    # DC2 eventually sees DC1's write (their link is intact).
    helpers.settle(built, 2.0)
    reply = helpers.get(built, reader, key, timeout_s=1.0)
    assert reply.value == "from-dc1"
