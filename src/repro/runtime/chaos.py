"""Kill/restart chaos for the live backend: the durability acceptance rig.

:func:`run_crash_experiment` is ``run_live_experiment`` with a fault
knob: one partition server (the *victim*) runs as a real OS subprocess
(``python -m repro.runtime.serve --dc D --partition P --data-dir …``)
while everything else — the other servers, the clients, the drivers and
the causal checker — runs in-process.  Mid-workload the victim is
**SIGKILLed**, left down for a configured window, restarted from its
data directory (WAL + snapshot recovery, then replication catch-up
against its peers), and finally SIGTERMed so its graceful-shutdown path
(flush the WAL before the transport, exit non-zero on failure) is
exercised too.

The verdict (:class:`CrashReport`) gates on exactly what the paper's
fault-tolerance story needs and nothing the crash legitimately breaks:

* the independent :class:`~repro.verification.checker.CausalChecker`
  reports **zero violations** over the whole run, crash included;
* **no acknowledged write is lost**: every PUT the victim acknowledged
  is present in (or dominated within) its recovered on-disk state;
* the victim **rejoins**: operations complete after the restart;
* the final SIGTERM shutdown exits 0 (WAL flushed cleanly).

Transport errors (dead senders, truncated streams) and stalled in-flight
operations are *expected* collateral of a SIGKILL and are reported, not
gated on.
"""

from __future__ import annotations

import asyncio
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.common.config import ExperimentConfig
from repro.common.errors import ReproError
from repro.common.types import version_order_key
from repro.cluster.topology import Topology
from repro.runtime.cluster import LiveCluster, LiveReport
from repro.runtime.configfile import save_experiment_config

# NOTE: repro.persistence imports are deferred into the functions below:
# persistence depends on the codec (hence on this package's __init__), so
# a module-level import here would be circular.

#: How long the harness waits for the victim subprocess to exit after
#: SIGTERM before declaring the graceful-shutdown gate failed.
TERM_TIMEOUT_S = 15.0


@dataclass(slots=True)
class CrashFault:
    """One SIGKILL + restart of a single partition server."""

    dc: int = 0
    partition: int = 0
    #: Seconds into the measurement window at which the victim dies.
    kill_after_s: float = 1.0
    #: How long the victim stays down before it is restarted.
    downtime_s: float = 1.0


@dataclass(slots=True)
class CrashReport:
    """Everything measured across one kill/restart run."""

    live: LiveReport
    kill_time_s: float
    restart_time_s: float
    #: Exit status of the victim's final (SIGTERM) shutdown.
    server_exit_code: int | None
    #: PUTs the victim acknowledged (observed by the driving process).
    acked_victim_writes: int
    #: Acknowledged victim writes absent from — and not dominated in —
    #: the recovered on-disk state.  Must be empty.
    lost_victim_writes: list[str] = field(default_factory=list)
    #: Operations that completed after the victim came back.
    ops_after_restart: int = 0
    recovered_versions: int = 0
    victim_dir: str = ""

    @property
    def passed(self) -> bool:
        return (not self.live.violations
                and not self.lost_victim_writes
                and self.ops_after_restart > 0
                and self.acked_victim_writes > 0
                and self.server_exit_code == 0)

    def summary_text(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"crash/restart [{self.live.protocol}] "
            f"victim dir {self.victim_dir}: {verdict}",
            f"  checker         : {len(self.live.violations)} violations "
            f"over {self.live.verification['reads_checked']} reads",
            f"  durability      : {self.acked_victim_writes} acked victim "
            f"writes, {len(self.lost_victim_writes)} lost "
            f"({self.recovered_versions} versions recovered on disk)",
            f"  rejoin          : {self.ops_after_restart} ops completed "
            f"after restart",
            f"  graceful stop   : exit code {self.server_exit_code}",
        ]
        for violation in self.live.violations[:5]:
            lines.append(f"    violation: {violation}")
        for lost in self.lost_victim_writes[:5]:
            lines.append(f"    lost: {lost}")
        return "\n".join(lines)


def _serve_command(config_path: Path, fault: CrashFault, host: str,
                   base_port: int) -> list[str]:
    return [
        sys.executable, "-m", "repro.runtime.serve",
        "--config", str(config_path),
        "--dc", str(fault.dc), "--partition", str(fault.partition),
        "--host", host, "--base-port", str(base_port),
    ]


def _subprocess_env() -> dict[str, str]:
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (src_root + os.pathsep + existing
                             if existing else src_root)
    return env


async def _spawn_victim(command: list[str], log_path: Path):
    log = open(log_path, "ab")
    try:
        return await asyncio.create_subprocess_exec(
            *command, stdout=log, stderr=log, env=_subprocess_env(),
        )
    finally:
        log.close()  # the subprocess holds its own descriptor


def _victim_write_check(
    cluster: LiveCluster, fault: CrashFault, data_dir: Path
) -> tuple[int, list[str], int]:
    """Compare acknowledged victim writes against the recovered disk.

    A write is *lost* only if the recovered chain of its key holds
    nothing at or above it in the LWW order — garbage collection and
    overwrites legitimately drop superseded versions without losing
    anything a reader could miss.
    """
    from repro.persistence.manager import (
        partition_dirname,
        recover_directory,
    )
    victim_dir = data_dir / partition_dirname(
        cluster.topology.server(fault.dc, fault.partition)
    )
    recovered = recover_directory(victim_dir, truncate=False,
                                  delete_covered=False)
    best_by_key: dict[Any, tuple[int, int]] = {}
    for version in recovered.versions:
        order = version.order_key
        current = best_by_key.get(version.key)
        if current is None or order > current:
            best_by_key[version.key] = order

    acked = 0
    lost: list[str] = []
    for event in cluster.checker.history.writes():
        key, sr, ut = event.version
        if sr != fault.dc:
            continue
        if cluster.topology.partition_of(key) != fault.partition:
            continue
        acked += 1
        best = best_by_key.get(key)
        if best is None or best < version_order_key(ut, sr):
            lost.append(
                f"acked write {event.version} at t={event.time_s:.3f}s "
                f"not recovered (best on disk: {best})"
            )
    return acked, lost, len(recovered.versions)


async def _run(config: ExperimentConfig, fault: CrashFault, host: str,
               base_port: int) -> CrashReport:
    persistence = config.persistence
    if not persistence.enabled or not persistence.data_dir:
        raise ReproError("crash experiments need persistence enabled "
                         "with a data_dir")
    if base_port <= 0:
        raise ReproError("crash experiments need a deterministic port "
                         "map (base_port > 0): two processes must agree")
    data_dir = Path(persistence.data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    config_path = data_dir / "cluster.json"
    save_experiment_config(config, str(config_path))

    # Host every server except the victim in-process; the victim is a
    # real OS process so a real SIGKILL can take it down.
    topology = Topology(config.cluster.num_dcs,
                        config.cluster.num_partitions)
    victim_address = topology.server(fault.dc, fault.partition)
    cluster = LiveCluster(
        config, host=host, base_port=base_port,
        serve_addresses=[address for address in topology.all_servers()
                         if address != victim_address],
        with_clients=True,
    )

    command = _serve_command(config_path, fault, host, base_port)
    log_path = data_dir / "victim.log"
    # The restart swaps the subprocess mid-run; the cleanup must see the
    # newest one, hence the one-slot holder.
    holder = {"proc": await _spawn_victim(command, log_path)}
    try:
        return await _drive(cluster, holder, config, fault, command,
                            log_path, data_dir, victim_address)
    finally:
        # Never leak a live repro-serve on its fixed port: a failure
        # anywhere above would otherwise poison every later run that
        # reuses the deterministic port map.
        victim = holder["proc"]
        if victim.returncode is None:
            victim.kill()
            await victim.wait()


async def _drive(cluster: LiveCluster, holder: dict,
                 config: ExperimentConfig, fault: CrashFault,
                 command: list[str], log_path: Path, data_dir: Path,
                 victim_address) -> CrashReport:
    from repro.persistence.manager import partition_dirname
    victim = holder["proc"]
    await cluster.start()
    stagger = min(config.workload.think_time_s or 0.01, 0.02)
    for driver in cluster.drivers:
        driver.start(stagger_s=stagger)
    await asyncio.sleep(config.warmup_s)
    cluster.metrics.arm(cluster.hub.now)

    await asyncio.sleep(fault.kill_after_s)
    kill_time = cluster.hub.now
    victim.kill()  # SIGKILL: no flush, no goodbye
    await victim.wait()

    await asyncio.sleep(fault.downtime_s)
    restart_time = cluster.hub.now
    victim = holder["proc"] = await _spawn_victim(command, log_path)

    remaining = config.duration_s - fault.kill_after_s - fault.downtime_s
    await asyncio.sleep(max(remaining, 1.0))
    cluster.metrics.disarm(cluster.hub.now)
    for driver in cluster.drivers:
        driver.stop()
    # Ops in flight at the kill instant died with their frames; a short
    # settle collects everything else without waiting on the casualties.
    await cluster._quiesce(timeout_s=3.0)
    cluster.flush_persistence()

    # Graceful stop *before* the report: the exit code is a gate (the
    # WAL-before-transport shutdown ordering must have flushed cleanly).
    victim.terminate()
    try:
        exit_code = await asyncio.wait_for(victim.wait(), TERM_TIMEOUT_S)
    except asyncio.TimeoutError:
        victim.kill()
        await victim.wait()
        exit_code = None

    report = cluster._report(cluster.hub.clean)
    await cluster.hub.close()
    cluster.close_persistence()

    acked, lost, recovered_count = _victim_write_check(cluster, fault,
                                                       data_dir)
    ops_after_restart = sum(
        1 for event in cluster.checker.history.events
        if event.time_s > restart_time
    )
    return CrashReport(
        live=report,
        kill_time_s=kill_time,
        restart_time_s=restart_time,
        server_exit_code=exit_code,
        acked_victim_writes=acked,
        lost_victim_writes=lost,
        ops_after_restart=ops_after_restart,
        recovered_versions=recovered_count,
        victim_dir=str(data_dir / partition_dirname(victim_address)),
    )


def run_crash_experiment(
    config: ExperimentConfig,
    fault: CrashFault,
    host: str = "127.0.0.1",
    base_port: int = 7500,
) -> CrashReport:
    """SIGKILL one partition server mid-workload, restart it from disk,
    and verify causality plus acknowledged-write durability.

    ``config.verify`` must be on (the checker is the judge) and
    ``config.persistence`` must point at a data directory; the victim
    subprocess shares both through a config file written there.
    """
    if not config.verify:
        raise ReproError("crash experiments require config.verify=True")
    return asyncio.run(_run(config, fault, host, base_port))
