"""Generic parameter sweeps over experiment configurations.

The figure functions hard-code the paper's sweeps; this module is the
generic surface for users who want their own (used by the ablation benches
and the examples).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Iterable, Sequence

from repro.common.config import ExperimentConfig
from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import run_experiments


def run_sweep(
    configs: Iterable[ExperimentConfig],
    progress: Callable[[ExperimentConfig, ExperimentResult], None]
    | None = None,
    parallelism: int | None = None,
) -> list[ExperimentResult]:
    """Run every configuration and collect the results in input order.

    Sweep points are independent runs, so they fan out across worker
    processes (``parallelism=None`` = all cores, ``1`` = the legacy
    serial loop; results and ``progress`` order are identical either
    way — see :mod:`repro.harness.parallel`).
    """
    return run_experiments(configs, parallelism=parallelism,
                           progress=progress)


def protocol_sweep(
    base: ExperimentConfig, protocols: Sequence[str]
) -> list[ExperimentConfig]:
    """The same experiment under different protocols."""
    return [
        replace(
            base,
            cluster=base.cluster.with_protocol(protocol),
            name=f"{base.name or 'sweep'}-{protocol}",
        )
        for protocol in protocols
    ]


def clients_sweep(
    base: ExperimentConfig, client_counts: Sequence[int]
) -> list[ExperimentConfig]:
    """The same experiment under increasing closed-loop client counts."""
    return [
        replace(
            base,
            workload=replace(base.workload, clients_per_partition=count),
            name=f"{base.name or 'sweep'}-c{count}",
        )
        for count in client_counts
    ]


def override_sweep(
    base: ExperimentConfig,
    make_config: Callable[[ExperimentConfig, Any], ExperimentConfig],
    values: Sequence[Any],
) -> list[ExperimentConfig]:
    """Arbitrary one-dimensional sweep via a config-transforming callable."""
    return [make_config(base, value) for value in values]
