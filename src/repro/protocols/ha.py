"""HA-POCC: the highly available variant of Sections III-B and IV-C.

The paper's recovery structure (after Brewer's three phases):

1. **Detect** — a server whose blocked request exceeds a configurable
   timeout suspects a network partition and closes the session
   (``SessionClosed``); transactions blocked on a slice abort the same way.
2. **Partition mode** — the client re-initializes its session in
   *pessimistic* mode: its requests carry ``pessimistic=True`` and are
   served Cure-style from the Global Stable Snapshot, which HA-POCC keeps
   (infrequently) up to date in the background.  A local item written by an
   *optimistic* session is visible to pessimistic sessions only once it is
   stable, because unlike in Cure it may depend on unreplicated remote
   items.
3. **Recover** — after running pessimistically for a while the client
   promotes itself back to the optimistic protocol; if the partition still
   holds, the next blocked operation demotes it again.

The paper evaluates only the normal-operation protocol and leaves the
quantitative partition study to future work; this module makes the
mechanism concrete so the examples/tests can demonstrate the availability
trade-off (plain POCC blocks forever, HA-POCC keeps serving).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.clocks.vector import vec_covers, vec_leq, vec_max
from repro.common.types import OpType
from repro.metrics.collectors import BLOCK_GSS_WAIT
from repro.protocols import messages as m
from repro.protocols.base import WaitQueue
from repro.protocols.cure.stabilization import StabilizationMixin
from repro.protocols.pocc.client import PoccClient
from repro.protocols.pocc.server import PoccServer
from repro.storage.version import Version


class HaPoccServer(StabilizationMixin, PoccServer):
    """POCC + background stabilization + block-timeout session recovery."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.gss_waiters = WaitQueue(self)
        # "Much less frequently than Cure" (Section IV-C).
        self.init_stabilization(self._protocol.ha_stabilization_interval_s)
        self.sessions_closed = 0
        sweep = max(self._protocol.block_timeout_s / 4.0, 0.01)
        self._sweep_interval_s = sweep
        self.rt.schedule(sweep, self._sweep_blocked)

    # ------------------------------------------------------------------
    # Phase 1: detection — abort over-age blocked operations
    # ------------------------------------------------------------------
    def _sweep_blocked(self) -> None:
        timeout = self._protocol.block_timeout_s
        for waiter in self.waiters.expired(timeout):
            self.waiters.drop(waiter)
            self.sessions_closed += 1
            self.metrics.sessions_closed += 1
            self._abort(waiter.payload)
        self.rt.schedule(self._sweep_interval_s, self._sweep_blocked)

    def _abort(self, request: Any) -> None:
        if isinstance(request, (m.GetReq, m.PutReq)):
            self.send(request.client, m.SessionClosed(op_id=request.op_id))
        elif isinstance(request, m.SliceReq):
            self.send_slice_resp(
                request,
                m.SliceResp(versions=[], tx_id=request.tx_id, aborted=True),
            )
        # Waiters without payloads (none in this codebase) vanish silently.

    def handle_slice_resp(self, msg: m.SliceResp) -> None:
        if not msg.aborted:
            super().handle_slice_resp(msg)
            return
        state = self._active_tx.pop(msg.tx_id, None)
        if state is not None:
            self.sessions_closed += 1
            self.metrics.sessions_closed += 1
            self.send(state["client"], m.SessionClosed(op_id=state["op_id"]))

    # ------------------------------------------------------------------
    # Phase 2: partition mode — serve pessimistic sessions from the GSS
    # ------------------------------------------------------------------
    def gss_advanced(self) -> None:
        self.gss_waiters.notify()

    def dispatch(self, msg: Any) -> None:
        if isinstance(msg, m.StabPush):
            self.receive_stab_push(msg)
        elif isinstance(msg, m.StabBroadcast):
            self.receive_stab_broadcast(msg)
        else:
            super().dispatch(msg)

    def handle_get(self, msg: m.GetReq) -> None:
        if not msg.pessimistic:
            super().handle_get(msg)
            return
        self.metrics.record_block_attempt(BLOCK_GSS_WAIT)
        if vec_covers(self.gss, msg.rdv, skip=self.m):
            self._serve_pessimistic_get(msg)
        else:
            self.gss_waiters.wait(
                lambda: vec_covers(self.gss, msg.rdv, skip=self.m),
                lambda: self._serve_pessimistic_get(msg),
                BLOCK_GSS_WAIT,
                payload=msg,
            )

    def _pessimistic_visible(self, version: Version, sv) -> bool:
        """Section IV-C: local items from optimistic sessions are visible
        to pessimistic sessions only once stable."""
        if version.sr == self.m and not version.optimistic:
            return True
        return vec_leq(version.commit_vector(), sv)

    def _apply_gc(self, gv) -> None:
        """Section IV-B's retention rule is calibrated for dv-based
        snapshot visibility; the pessimistic protocol reads commit-vector
        style from snapshots bounded below by the GSS.  A version with
        ``dv <= GV`` can still be invisible to *every* pessimistic
        snapshot when its own update time exceeds the stable cut, so
        plain retention can strip a chain down to versions no pessimistic
        session may read — and the subsequent read would have nothing
        visible at all.  Retention therefore additionally stops only at a
        version whose commit vector is inside the GSS (visible to any
        ``sv >= GSS``, now and forever, since the GSS is monotone)."""
        gss = list(self.gss)
        self.store.collect_by(
            lambda v: vec_leq(v.dv, gv)
            and vec_leq(v.commit_vector(), gss),
            gv,
        )

    def _serve_pessimistic_get(self, msg: m.GetReq) -> None:
        sv = vec_max(self.gss, msg.rdv)
        chain = self.store.chain(msg.key)
        if chain is None:
            self.send(msg.client, self.nil_reply(msg.key, msg.op_id))
            return
        version, scanned = chain.find_freshest(
            lambda v: self._pessimistic_visible(v, sv)
        )
        if version is None:
            # Unreachable once GC retains a stable version per chain (see
            # _apply_gc), but kept as defense in depth.  Serve the *head*:
            # the GSS wait above guarantees every version this session
            # depends on has been received, so the freshest version is
            # never older than the session's history — the oldest can be
            # (a slow link can deliver long-superseded remote versions
            # into the bottom of an already-collected chain).
            version = chain.head()
            scanned = len(chain)
        self.metrics.record_get_staleness(
            chain.versions_newer_than(version), 0
        )
        reply = self.reply_for(version, msg.op_id)
        scan_cost = self._service.chain_scan_per_version_s * scanned
        self.submit_local(scan_cost, self.send, msg.client, reply)

    def handle_put(self, msg: m.PutReq) -> None:
        if not msg.pessimistic:
            super().handle_put(msg)
            return
        # Pessimistic writes skip the dependency wait (their dependencies
        # are stable by construction) but keep the clock discipline; mark
        # the version as pessimistically created.
        self._pessimistic_put(msg)

    def _pessimistic_put(self, msg: m.PutReq) -> None:
        max_dep = max(msg.dv, default=0)
        if self.clock.peek_micros() > max_dep:
            self._apply_pessimistic_put(msg)
            return
        self.wait_for_clock(
            max_dep, lambda: self._apply_pessimistic_put(msg)
        )

    def _apply_pessimistic_put(self, msg: m.PutReq) -> None:
        version = self.create_version(msg.key, msg.value, tuple(msg.dv),
                                      optimistic=False)
        self.send(msg.client, m.PutReply(ut=version.ut, op_id=msg.op_id))

    def handle_ro_tx(self, msg: m.RoTxReq) -> None:
        if not msg.pessimistic:
            super().handle_ro_tx(msg)
            return
        tv = vec_max(self.gss, msg.rdv)
        if self.vv[self.m] > tv[self.m]:
            tv[self.m] = self.vv[self.m]
        self.coordinate_tx(msg, tv, pessimistic=True)

    def handle_slice(self, msg: m.SliceReq) -> None:
        if not msg.pessimistic:
            super().handle_slice(msg)
            return
        self.metrics.record_block_attempt(BLOCK_GSS_WAIT)
        if vec_covers(self.gss, msg.tv, skip=self.m):
            self._serve_pessimistic_slice(msg)
        else:
            self.gss_waiters.wait(
                lambda: vec_covers(self.gss, msg.tv, skip=self.m),
                lambda: self._serve_pessimistic_slice(msg),
                BLOCK_GSS_WAIT,
                payload=msg,
            )

    def _serve_pessimistic_slice(self, msg: m.SliceReq) -> None:
        tv = msg.tv
        replies = []
        scanned_total = 0
        for key in msg.keys:
            chain = self.store.chain(key)
            if chain is None:
                replies.append(self.nil_reply(key, 0))
                continue
            version, scanned = chain.find_freshest(
                lambda v: self._pessimistic_visible(v, tv)
            )
            scanned_total += scanned
            if version is None:
                version = chain.head()  # see _serve_pessimistic_get
            self.metrics.record_tx_staleness(
                chain.versions_newer_than(version), 0
            )
            replies.append(self.reply_for(version, 0))
        response = m.SliceResp(versions=replies, tx_id=msg.tx_id)
        scan_cost = self._service.chain_scan_per_version_s * scanned_total
        self.submit_local(scan_cost, self.send_slice_resp, msg, response)


class HaPoccClient(PoccClient):
    """A POCC client with the session re-initialization protocol."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.pessimistic = False
        #: op_id -> zero-argument re-issue closure, kept for recovery.
        self._op_retry: dict[int, Callable[[], None]] = {}
        self.demotions = 0
        self.promotions = 0

    # -- operations carry the session mode and a retry closure ----------
    def read_dependency_vector(self):
        """Pessimistic sessions behave like Cure clients: the snapshot
        covers reads and writes; optimistic sessions send plain RDV_c."""
        if self.pessimistic:
            return vec_max(self.rdv, self.dv)
        return list(self.rdv)

    def get(self, key: str, callback) -> None:
        op_id = self._register(OpType.GET, callback)
        self._op_retry[op_id] = lambda: self.get(key, callback)
        target = self._server_for(key)
        self.send(target, m.GetReq(key=key,
                                   rdv=self.read_dependency_vector(),
                                   client=self.address, op_id=op_id,
                                   pessimistic=self.pessimistic))

    def put(self, key: str, value: Any, callback) -> None:
        op_id = self._register(OpType.PUT, callback)
        self._op_retry[op_id] = lambda: self.put(key, value, callback)
        target = self._server_for(key)
        self.send(target, m.PutReq(key=key, value=value, dv=list(self.dv),
                                   client=self.address, op_id=op_id,
                                   pessimistic=self.pessimistic))

    def ro_tx(self, keys, callback) -> None:
        op_id = self._register(OpType.RO_TX, callback)
        keys = tuple(keys)
        self._op_retry[op_id] = lambda: self.ro_tx(keys, callback)
        coordinator = self.topology.server(self.m, self.address.partition)
        self.send(coordinator,
                  m.RoTxReq(keys=keys, rdv=self.read_dependency_vector(),
                            client=self.address, op_id=op_id,
                            pessimistic=self.pessimistic))

    # -- completions drop the retry record -------------------------------
    def _complete_get(self, reply: m.GetReply) -> None:
        self._op_retry.pop(reply.op_id, None)
        super()._complete_get(reply)

    def _complete_put(self, reply: m.PutReply) -> None:
        self._op_retry.pop(reply.op_id, None)
        super()._complete_put(reply)

    def _complete_ro_tx(self, reply: m.RoTxReply) -> None:
        self._op_retry.pop(reply.op_id, None)
        super()._complete_ro_tx(reply)

    # -- recovery ---------------------------------------------------------
    def _session_closed(self, msg: m.SessionClosed) -> None:
        """Demote to the pessimistic protocol and replay the failed op."""
        self._pending.pop(msg.op_id, None)
        retry = self._op_retry.pop(msg.op_id, None)
        self.reset_session()
        if not self.pessimistic:
            self.pessimistic = True
            self.demotions += 1
            self.metrics.sessions_demoted += 1
            retry_after = self.config.protocol_config.ha_promotion_retry_s
            self.rt.schedule(retry_after, self._try_promote)
        if retry is not None:
            retry()

    def _try_promote(self) -> None:
        """Optimistically switch back; a still-standing partition will
        demote us again via the next SessionClosed."""
        if not self.pessimistic:
            return
        self.pessimistic = False
        self.promotions += 1
        self.metrics.sessions_promoted += 1
