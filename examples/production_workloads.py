#!/usr/bin/env python3
"""POCC vs Cure* across production-like workload presets, with error bars.

Section V-B argues OCC "is more suited for read intensive workloads.
Luckily, typical production workloads are heavily read dominated" (up to
300:1).  This example runs named presets — Facebook-TAO-like read-heavy
traffic, the memcached ETC mix, YCSB A/B, a session store with
read-own-writes locality — through both systems, replicated over several
seeds, and reports means with 95% confidence intervals.

Run:  python examples/production_workloads.py
"""

import dataclasses

from repro import (
    ClusterConfig,
    ExperimentConfig,
    preset,
    run_replicates,
)

PRESETS = ("facebook-tao", "memcache-etc", "ycsb-b", "ycsb-a",
           "session-store")
SEEDS = 3


def main() -> None:
    header = (f"{'preset':<14} {'proto':<5} {'thr ops/s':>16} "
              f"{'resp ms':>14} {'old %':>7} {'block p':>9}")
    print(header)
    print("-" * len(header))

    for name in PRESETS:
        workload = preset(name, clients_per_partition=4,
                          think_time_s=0.010)
        for protocol in ("pocc", "cure"):
            config = ExperimentConfig(
                cluster=ClusterConfig(num_dcs=3, num_partitions=4,
                                      keys_per_partition=200,
                                      protocol=protocol),
                workload=workload,
                warmup_s=0.4,
                duration_s=1.5,
                seed=1000,
                name=f"{name}-{protocol}",
            )
            agg = run_replicates(config, num_seeds=SEEDS)
            thr = agg.stat("throughput_ops_s")
            resp = agg.stat("mean_response_time_s")
            print(f"{name:<14} {protocol:<5} "
                  f"{thr.mean:>9,.0f} ±{thr.ci95_half_width:<5,.0f} "
                  f"{resp.mean * 1e3:>8.3f} ±{resp.ci95_half_width * 1e3:<4.2f} "
                  f"{agg.mean('get_pct_old'):>7.2f} "
                  f"{agg.mean('blocking_probability'):>9.2e}")
        print()

    print(f"Each row aggregates {SEEDS} seeds (mean ± 95% CI).")
    print("The read-heavier the mix, the smaller POCC's blocking exposure —")
    print("and Cure*'s staleness cost never goes away.")


if __name__ == "__main__":
    main()
