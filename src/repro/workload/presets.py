"""Named workload presets for production-like traffic mixes.

Section V-B motivates the read-heavy sweep with production ratios "even
much higher than the one targeted by our evaluation (up to 300:1)",
citing LinkedIn's Ambry [3], the Facebook memcached workload analysis
[33] and TAO [40].  These presets make those mixes (plus the standard
YCSB points and the paper's own configurations) one import away:

>>> from repro.workload.presets import preset
>>> config = preset("facebook-tao", clients_per_partition=8)
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.config import WorkloadConfig
from repro.common.errors import ConfigError

#: Named workload configurations.  All inherit the paper's 25 ms think
#: time and zipf(0.99) keys unless stated otherwise.
WORKLOAD_PRESETS: dict[str, WorkloadConfig] = {
    # The paper's own evaluation points (Section V).
    "paper-32to1": WorkloadConfig(kind="get_put", gets_per_put=32),
    "paper-1to1": WorkloadConfig(kind="get_put", gets_per_put=1),
    "paper-tx": WorkloadConfig(kind="ro_tx", tx_partitions=2),
    # Facebook TAO reports ~99.8% reads (Bronson et al., ATC'13) —
    # the "up to 300:1" ratio of Section V-B.
    "facebook-tao": WorkloadConfig(kind="mixed", read_ratio=0.997,
                                   tx_ratio=0.0),
    # The memcached ETC pool is ~30:1 read:write (Atikoglu et al.,
    # SIGMETRICS'12 — the paper's reference [33]).
    "memcache-etc": WorkloadConfig(kind="mixed", read_ratio=0.97,
                                   tx_ratio=0.0),
    # YCSB core workloads, mapped onto the mixed generator.
    "ycsb-a": WorkloadConfig(kind="mixed", read_ratio=0.5, tx_ratio=0.0),
    "ycsb-b": WorkloadConfig(kind="mixed", read_ratio=0.95, tx_ratio=0.0),
    "ycsb-c": WorkloadConfig(kind="mixed", read_ratio=1.0, tx_ratio=0.0),
    # A transactional social-feed style mix: mostly reads, some of them
    # multi-key snapshot reads (profile + timeline), few writes.
    "social-feed": WorkloadConfig(kind="mixed", read_ratio=0.75,
                                  tx_ratio=0.20, tx_partitions=2),
    # Session-heavy mix re-reading recent writes (stresses
    # read-your-writes through the dependency machinery).
    "session-store": WorkloadConfig(kind="mixed", read_ratio=0.80,
                                    tx_ratio=0.0, rmw_locality=0.5),
    # A hotspot shape: 90% of traffic on 10% of each partition's keys,
    # uniform within each class.
    "hotspot-90-10": WorkloadConfig(kind="mixed", read_ratio=0.9,
                                    key_distribution="hotspot"),
}


def preset(name: str, **overrides) -> WorkloadConfig:
    """The preset called ``name``, with field overrides applied.

    >>> preset("ycsb-b", clients_per_partition=16, think_time_s=0.005)
    """
    try:
        base = WORKLOAD_PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload preset {name!r}; "
            f"choose from {sorted(WORKLOAD_PRESETS)}"
        ) from None
    return replace(base, **overrides) if overrides else base
