"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An experiment / cluster / workload configuration is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that was
    already stopped, registering two endpoints under the same address.
    """


class ProtocolError(ReproError):
    """A protocol implementation violated one of its internal invariants.

    These indicate bugs in the protocol code (or deliberately broken
    protocols used to exercise the consistency checker), never user error.
    """


class SessionClosedError(ReproError):
    """A client session was closed by the server.

    Raised (delivered via the client's error callback) when an HA-POCC server
    aborts a blocked optimistic session after detecting a network partition,
    per Section III-B of the paper.  The client is expected to re-initialize
    its session, possibly in pessimistic mode.
    """
