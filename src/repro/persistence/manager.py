"""Per-partition durability: WAL + snapshots + the recovery path.

One :class:`PartitionDurability` backs one partition server of a live
process.  Layout under the deployment's ``data_dir``::

    data_dir/
      dc0-p0/
        snapshot.bin          # newest complete snapshot (atomic replace)
        wal-00000007.log      # segments the snapshot does not cover
        wal-00000008.log
      dc0-p1/
        ...

Boot sequence (:meth:`PartitionDurability.recover`):

1. load ``snapshot.bin`` if present (validated header/footer — see
   :mod:`repro.persistence.snapshot`);
2. replay every WAL segment with sequence >= the snapshot's ``wal_seq``
   (older leftovers are covered by the snapshot and deleted);
3. the *newest* segment may end in a torn frame — truncate it at the
   clean boundary reported by the codec's
   :class:`~repro.runtime.codec.FrameDecoder`; a torn frame anywhere
   else is corruption and raises :class:`~repro.persistence.wal.WalError`;
4. merge: later records win per version identity ``(key, sr, ut)`` (the
   COPS* ``visible`` flip re-logs the version), everything else is a
   plain union;
5. open the WAL for appending at the clean tail.

The recovered state is handed to the protocol server's
``restore_durable_state`` (:mod:`repro.protocols.base`), which rebuilds
version chains, the version vector and the clock floor — and then runs
replication catch-up against its peer replicas for whatever the crash
window dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.common.config import PersistenceConfig
from repro.common.types import Address
from repro.persistence import snapshot as snap
from repro.persistence.wal import (
    VERSION_TAG,
    GroupCommit,
    WalError,
    WriteAheadLog,
    check_segment_header,
    iter_version_records,
    list_segments,
    newest_view_record,
    read_segment,
    truncate_segment,
    view_record,
)


def partition_dirname(address: Address) -> str:
    """Directory name for one partition server's durable state."""
    return f"dc{address.dc}-p{address.partition}"


@dataclass(slots=True)
class RecoveredState:
    """What the disk contributed to one server's boot."""

    #: Deduplicated versions, later records superseding earlier ones.
    versions: list[Any] = field(default_factory=list)
    #: Version vector recorded by the snapshot (zeros when none); the
    #: restore path merges it with per-source maxima over ``versions``.
    vv: list[int] = field(default_factory=list)
    #: True when *any* durable state (snapshot or WAL record) was found.
    had_state: bool = False
    #: True when the directory shows evidence of a *prior run* (a
    #: snapshot or any segment file, even header-only/torn).  This — not
    #: ``had_state`` — is the replication-catch-up trigger: a server can
    #: crash before its first record becomes durable (fsync interval/off)
    #: yet still have served pre-crash reads that the catch-up hole is
    #: about.
    prior_boot: bool = False
    snapshot_versions: int = 0
    #: The snapshot's replay-resumes-here segment sequence (0 = none).
    snapshot_wal_seq: int = 0
    wal_records: int = 0
    segments_replayed: int = 0
    #: Newest WAL-logged cluster view (elastic membership); epoch -1
    #: means no view record was found (membership off, or a pre-reshard
    #: crash — the server then boots with its configured initial view).
    view_epoch: int = -1
    view_members: tuple = ()
    view_vnodes: int = 0
    #: Bytes cut off the newest segment's torn tail (0 = clean shutdown).
    torn_bytes_truncated: int = 0
    #: Covered segments deleted during recovery (snapshot superseded them).
    segments_deleted: int = 0

    def max_ut(self, sr: int) -> int:
        """Newest update time among recovered versions from replica ``sr``."""
        return max((v.ut for v in self.versions if v.sr == sr), default=0)


def recover_directory(
    directory: Path | str,
    truncate: bool = True,
    delete_covered: bool = True,
) -> RecoveredState:
    """Read one partition directory into a :class:`RecoveredState`.

    Pure read path (plus the tail truncation / covered-segment cleanup
    unless disabled) — shared by the live boot and ``repro-recover``.
    """
    directory = Path(directory)
    state = RecoveredState()
    merged: dict[tuple, Any] = {}

    snapshot_file = snap.snapshot_path(directory)
    snapshot_seq = 0
    state.prior_boot = snapshot_file.exists() or bool(list_segments(directory))
    if snapshot_file.exists():
        loaded = snap.load_snapshot(snapshot_file)
        snapshot_seq = loaded.wal_seq
        state.snapshot_wal_seq = snapshot_seq
        state.vv = list(loaded.vv)
        state.snapshot_versions = len(loaded.versions)
        state.had_state = True
        for version in loaded.versions:
            merged[version.identity()] = version

    segments = list_segments(directory)
    for index, (seq, path) in enumerate(segments):
        if seq < snapshot_seq:
            # Fully covered by the snapshot: a crash between the
            # snapshot publish and the old segments' deletion left it
            # behind.  Finish the deletion now.
            if delete_covered:
                path.unlink()
                state.segments_deleted += 1
            continue
        records, clean_offset, size = read_segment(path)
        if clean_offset < size:
            if index != len(segments) - 1:
                raise WalError(
                    f"{path}: torn frame in a non-final segment "
                    f"({size - clean_offset} trailing byte(s))"
                )
            if truncate:
                truncate_segment(path, clean_offset)
            state.torn_bytes_truncated = size - clean_offset
        body = check_segment_header(path, records, seq)
        for version in iter_version_records(body, str(path)):
            merged[version.identity()] = version
            state.wal_records += 1
            state.had_state = True
        view = newest_view_record(body)
        if view is not None and view[1] > state.view_epoch:
            _, state.view_epoch, state.view_members, state.view_vnodes = view
            state.had_state = True
        state.segments_replayed += 1

    state.versions = list(merged.values())
    return state


class PartitionDurability:
    """The durability façade one live partition server writes through."""

    def __init__(
        self,
        root: Path | str,
        address: Address,
        config: PersistenceConfig,
    ):
        self.address = address
        self.config = config
        self.directory = Path(root) / partition_dirname(address)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._wal: WriteAheadLog | None = None
        self._group: GroupCommit | None = None
        self.recovered: RecoveredState | None = None
        self.snapshots_written = 0
        #: Newest view record appended this run (or recovered), re-logged
        #: after every snapshot roll so it survives segment deletion.
        self._view_record: tuple | None = None

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    def recover(self) -> RecoveredState:
        """Read the directory and open the WAL at its clean tail."""
        if self._wal is not None:
            raise WalError(f"{self.directory}: recover() called twice")
        self.recovered = recover_directory(self.directory)
        if self.recovered.view_epoch >= 0:
            self._view_record = view_record(self.recovered.view_epoch,
                                            self.recovered.view_members,
                                            self.recovered.view_vnodes)
        self._wal = WriteAheadLog(
            self.directory,
            fsync=self.config.fsync,
            fsync_interval_s=self.config.fsync_interval_s,
            # A fresh segment must never sort *before* the snapshot's
            # replay point, or the next recovery would discard it as
            # covered.
            start_seq=max(1, self.recovered.snapshot_wal_seq),
        )
        return self.recovered

    def enable_group_commit(self, schedule) -> None:
        """Coalesce same-tick appends into one write+fsync (live backend).

        ``schedule`` is a run-this-callback-soon callable
        (``loop.call_soon``); the live cluster attaches it after
        :meth:`recover` and before the listeners start taking traffic.
        """
        if self._wal is None:
            raise WalError(f"{self.directory}: group commit before recover()")
        self._group = GroupCommit(self._wal, schedule)

    # ------------------------------------------------------------------
    # The durability effect (rt.persist)
    # ------------------------------------------------------------------
    def append_version(self, version: Any) -> int | None:
        """Log one version; under deferred-sync group commit, return the
        covering batch id (the caller must withhold the version's
        acknowledgement until :meth:`notify_durable` reports that batch
        synced).  ``None`` means no deferral is needed: either the sync
        already happened (no group commit, or the record is already as
        durable as per-record appends would have made it) or the fsync
        policy never promised sync-before-ack (``interval``/``off``)."""
        if self._wal is None or self._wal.closed:
            return None  # shutting down (or never recovered): no log
        group = self._group
        if group is None:
            self._wal.append_version(version)
            return None
        batch = group.append((VERSION_TAG, version))
        return batch if self.config.fsync == "always" else None

    def append_view(self, epoch: int, members, vnodes: int) -> None:
        """Log one committed cluster view (the ``rt.persist_view``
        target).  Rides the same group-commit batch as the versions of
        its tick, so the commit's durability ordering matches theirs."""
        if self._wal is None or self._wal.closed:
            return
        record = view_record(epoch, members, vnodes)
        if self._group is not None:
            self._group.append(record)
        else:
            self._wal.append(record)
        self._view_record = record

    def notify_durable(self, callback) -> None:
        """Run ``callback(batch_id)`` after the open batch's fsync."""
        if self._group is not None:
            self._group.notify_durable(callback)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, store, vv, num_dcs: int) -> int:
        """Dump the store, publish atomically, truncate covered segments.

        Runs synchronously on the event loop — the store cannot change
        underneath it (protocol handlers are plain synchronous calls on
        the same loop), which is exactly what makes the dump a consistent
        cut without any locking.
        """
        if self._wal is None:
            raise WalError(f"{self.directory}: snapshot before recover()")
        if self._group is not None:
            # Pending batch records belong to the segment being retired;
            # commit them (and release their held acks) before rolling.
            self._group.commit()
        new_seq = self._wal.roll()
        if self._view_record is not None:
            # The snapshot format does not carry the view; re-log it
            # into the fresh segment before the covered ones (holding
            # the only copy) are deleted below.
            self._wal.append(self._view_record)
        count = snap.write_snapshot(
            self.directory, store.all_versions(), vv,
            wal_seq=new_seq, num_dcs=num_dcs,
        )
        for seq, path in list_segments(self.directory):
            if seq < new_seq:
                path.unlink()
        self.snapshots_written += 1
        return count

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Force every appended record onto stable storage."""
        if self._group is not None:
            self._group.commit()
        if self._wal is not None:
            self._wal.flush()

    def close(self) -> None:
        if self._group is not None:
            self._group.commit()
        if self._wal is not None:
            self._wal.close()

    @property
    def wal(self) -> WriteAheadLog | None:
        return self._wal
