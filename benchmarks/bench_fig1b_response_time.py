"""Figure 1b — average response time vs throughput (client sweep).

Paper claim: POCC's response time is at or below Cure*'s up to the
saturation knee, because it runs no stabilization protocol and never
traverses version chains on GETs."""

from benchmarks.common import run_figure


def test_fig1b_response_time(benchmark):
    data = run_figure(benchmark, "1b")
    pocc = data.series["POCC"]
    cure = data.series["Cure*"]

    # Response times rise with load for both systems (queueing).
    assert pocc[-1][1] > pocc[0][1]
    assert cure[-1][1] > cure[0][1]

    # Below saturation (all but the last two points of the sweep), POCC's
    # mean response time does not exceed Cure*'s.
    for (_, pocc_ms), (_, cure_ms) in zip(pocc[:-2], cure[:-2]):
        assert pocc_ms <= cure_ms * 1.10, (pocc_ms, cure_ms)

    # POCC's peak throughput is at least Cure*'s (paper: equal).
    assert max(x for x, _ in pocc) >= 0.9 * max(x for x, _ in cure)
