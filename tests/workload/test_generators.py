"""Tests for the Get-Put and RO-TX workload generators."""

import random

import pytest

from repro.common.config import WorkloadConfig
from repro.common.errors import ConfigError
from repro.cluster.topology import KeyPools, Topology
from repro.workload.generators import (
    GetPutWorkload,
    RoTxWorkload,
    make_workload,
)


def _pools(partitions=4, keys=20):
    return KeyPools(Topology(num_dcs=3, num_partitions=partitions), keys)


def test_getput_cycle_structure():
    """N GETs then one PUT, repeating (Section V-B)."""
    workload = GetPutWorkload(_pools(), gets_per_put=3, zipf_theta=0.99,
                              rng=random.Random(1))
    kinds = [workload.next_op().kind for _ in range(12)]
    assert kinds == ["get", "get", "get", "put"] * 3


def test_getput_gets_target_distinct_partitions():
    pools = _pools(partitions=4)
    topology = pools.topology
    workload = GetPutWorkload(pools, gets_per_put=4, zipf_theta=0.99,
                              rng=random.Random(2))
    ops = [workload.next_op() for _ in range(5)]
    get_partitions = [topology.partition_of(op.key) for op in ops[:4]]
    assert sorted(get_partitions) == [0, 1, 2, 3]


def test_getput_ratio_larger_than_partitions_wraps():
    pools = _pools(partitions=2)
    workload = GetPutWorkload(pools, gets_per_put=6, zipf_theta=0.99,
                              rng=random.Random(3))
    ops = [workload.next_op() for _ in range(7)]
    assert [op.kind for op in ops] == ["get"] * 6 + ["put"]


def test_getput_put_partition_roughly_uniform():
    pools = _pools(partitions=4)
    topology = pools.topology
    workload = GetPutWorkload(pools, gets_per_put=0, zipf_theta=0.0,
                              rng=random.Random(4))
    counts = [0] * 4
    n = 8000
    for _ in range(n):
        op = workload.next_op()
        assert op.kind == "put"
        counts[topology.partition_of(op.key)] += 1
    for count in counts:
        assert abs(count - n / 4) < n * 0.05


def test_getput_zipf_prefers_low_ranks():
    pools = _pools(partitions=2, keys=50)
    workload = GetPutWorkload(pools, gets_per_put=1, zipf_theta=0.99,
                              rng=random.Random(5))
    rank0_keys = {pools.key(p, 0) for p in range(2)}
    hits = sum(
        1 for _ in range(4000) if workload.next_op().key in rank0_keys
    )
    assert hits > 400  # zipf(0.99) over 50 keys gives rank 0 >> 1/50


def test_rotx_cycle_structure():
    workload = RoTxWorkload(_pools(), tx_partitions=3, zipf_theta=0.99,
                            rng=random.Random(6))
    kinds = [workload.next_op().kind for _ in range(6)]
    assert kinds == ["ro_tx", "put"] * 3


def test_rotx_keys_span_distinct_partitions():
    pools = _pools(partitions=4)
    topology = pools.topology
    workload = RoTxWorkload(pools, tx_partitions=3, zipf_theta=0.99,
                            rng=random.Random(7))
    op = workload.next_op()
    assert op.kind == "ro_tx"
    assert len(op.keys) == 3
    partitions = {topology.partition_of(k) for k in op.keys}
    assert len(partitions) == 3


def test_rotx_partitions_bounds_checked():
    with pytest.raises(ConfigError):
        RoTxWorkload(_pools(partitions=2), tx_partitions=3, zipf_theta=0.99,
                     rng=random.Random(8))
    with pytest.raises(ConfigError):
        RoTxWorkload(_pools(), tx_partitions=0, zipf_theta=0.99,
                     rng=random.Random(8))


def test_make_workload_dispatch():
    pools = _pools()
    rng = random.Random(9)
    assert isinstance(
        make_workload(WorkloadConfig(kind="get_put"), pools, rng),
        GetPutWorkload,
    )
    assert isinstance(
        make_workload(WorkloadConfig(kind="ro_tx", tx_partitions=2),
                      pools, rng),
        RoTxWorkload,
    )


def test_generators_deterministic_given_seed():
    def run(seed):
        workload = GetPutWorkload(_pools(), gets_per_put=2, zipf_theta=0.99,
                                  rng=random.Random(seed))
        return [workload.next_op() for _ in range(30)]

    assert run(42) == run(42)
    assert run(42) != run(43)
