"""Live observability end to end: a telemetry-enabled cluster serves
``/metrics`` mid-run, reports its port, and writes causal trace spans.

One short localhost run covers the whole wiring: registry creation at
build time, per-server gauge registration, the scrape endpoint on the
cluster's own event loop, the continuous visibility sink, and the
sampled span lifecycle joined across origin and remote replicas.
"""

import asyncio
import json

import pytest

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    PersistenceConfig,
    TelemetryConfig,
    WorkloadConfig,
)
from repro.obs.tracing import group_by_trace, read_spans
from repro.runtime.cluster import LiveCluster

#: Families every server-hosting endpoint must expose (the CI scrape
#: gate checks the same list).
EXPECTED_FAMILIES = (
    "repro_client_ops_total",
    "repro_messages_total",
    "repro_visibility_lag_seconds",
    "repro_wal_fsync_seconds",
    "repro_stable_lag_seconds",
    "repro_wait_queue_depth",
    "repro_repl_batch_occupancy",
    "repro_event_loop_lag_seconds",
    "repro_link_fault_drops_total",
    "repro_transport_frames_sent_total",
)


def _config(tmp_path, trace: bool) -> ExperimentConfig:
    telemetry = TelemetryConfig(
        enabled=True,
        loop_probe_interval_s=0.05,
        trace=trace,
        trace_dir=str(tmp_path / "traces") if trace else "",
        trace_sample_every=1,  # sample everything: short window
    )
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=2, num_partitions=2,
                              keys_per_partition=40, protocol="pocc",
                              telemetry=telemetry),
        workload=WorkloadConfig(kind="mixed", read_ratio=0.7, tx_ratio=0.1,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.004),
        # Persistence on: WAL fsync summaries and ``wal_synced`` spans
        # need a real log to observe.
        persistence=PersistenceConfig(enabled=True,
                                      data_dir=str(tmp_path / "data"),
                                      fsync="interval",
                                      fsync_interval_s=0.02,
                                      snapshot_interval_s=0.0),
        warmup_s=0.2,
        duration_s=0.8,
        seed=29,
        verify=True,
        name="live-telemetry-smoke",
    )


async def _http_get(port: int, path: str) -> str:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read(-1)
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    assert b"200 OK" in head.split(b"\r\n", 1)[0], head
    return body.decode("utf-8")


async def _run_and_scrape(cluster: LiveCluster):
    """The LiveCluster.run() lifecycle with two mid-run scrapes."""
    await cluster.start()
    assert cluster.metrics_port, "telemetry enabled but no endpoint"
    for driver in cluster.drivers:
        driver.start(stagger_s=0.01)
    await asyncio.sleep(cluster.config.warmup_s)
    cluster.metrics.arm(cluster.hub.now)
    first = await _http_get(cluster.metrics_port, "/metrics")
    await asyncio.sleep(cluster.config.duration_s)
    second = await _http_get(cluster.metrics_port, "/metrics")
    vars_doc = json.loads(
        await _http_get(cluster.metrics_port, "/vars.json"))
    cluster.metrics.disarm(cluster.hub.now)
    for driver in cluster.drivers:
        driver.stop()
    await cluster._quiesce()
    clean = cluster.flush_persistence()
    await cluster.hub.drain()
    report = cluster._report(clean and cluster.hub.clean)
    await cluster.stop_telemetry()
    await cluster.hub.close()
    cluster.close_persistence()
    return first, second, vars_doc, report


def _ops_total(text: str) -> float:
    return sum(float(line.rsplit(" ", 1)[1])
               for line in text.splitlines()
               if line.startswith("repro_client_ops_total{"))


@pytest.fixture(scope="module")
def scraped(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("live-telemetry")
    cluster = LiveCluster(_config(tmp_path, trace=True))
    out = asyncio.run(_run_and_scrape(cluster))
    return (*out, tmp_path)


def test_endpoint_exposes_every_family_mid_run(scraped):
    first, second, _, _ = scraped[:4]
    for family in EXPECTED_FAMILIES:
        assert f"# TYPE {family}" in first, f"{family} missing"
        assert f"# TYPE {family}" in second, f"{family} missing"


def test_throughput_counters_are_live_and_monotone(scraped):
    first, second = scraped[:2]
    assert _ops_total(first) > 0, "no client ops counted by mid-run"
    assert _ops_total(second) >= _ops_total(first)


def test_vars_json_carries_process_identity(scraped):
    vars_doc = scraped[2]
    assert vars_doc["protocol"] == "pocc"
    servers = set(vars_doc["servers"])
    assert servers == {"dc0-p0", "dc0-p1", "dc1-p0", "dc1-p1"}
    metrics = vars_doc["metrics"]
    # Visibility flowed into the always-on sink: remote writes became
    # readable during the window.
    visibility = metrics["repro_visibility_lag_seconds"]["_"]
    assert visibility["count"] > 0
    assert visibility["p99"] >= 0
    # Per-partition WAL fsync summaries observed real syncs.
    fsyncs = metrics["repro_wal_fsync_seconds"]
    assert any(cell["count"] > 0 for cell in fsyncs.values()
               if isinstance(cell, dict))


def test_report_records_the_endpoint_and_passes(scraped):
    report = scraped[3]
    assert report.metrics_port
    assert report.passed, report.summary_text()
    assert report.total_ops > 0
    assert report.violations == []
    # The silent-empty fix: visibility is a real summary here, never {}.
    assert report.visibility.get("count", 0) > 0


def test_trace_spans_cover_the_write_lifecycle(scraped):
    tmp_path = scraped[4]
    trace_dir = tmp_path / "traces"
    files = sorted(trace_dir.glob("trace-*.jsonl"))
    assert files, "tracing enabled but no span files written"
    spans = [span for path in files for span in read_spans(str(path))]
    assert spans
    events = {span["event"] for span in spans}
    # The full origin-side lifecycle plus remote install/visibility.
    assert {"put", "wal_synced", "replicate_sent", "installed",
            "visible"} <= events
    groups = group_by_trace(spans)
    # At least one sampled write completed the whole journey.
    complete = [
        trace for trace, group in groups.items()
        if {"put", "replicate_sent", "installed"}
        <= {s["event"] for s in group}
    ]
    assert complete, "no write's lifecycle joined across span points"
    # Span timestamps share one time axis: put precedes install.
    for trace in complete:
        by_event = {}
        for span in groups[trace]:
            by_event.setdefault(span["event"], span)
        assert by_event["put"]["t"] <= by_event["installed"]["t"]
