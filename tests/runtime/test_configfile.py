"""Config-file hydration: JSON deployment descriptions round-trip."""

import pytest

from repro.common.config import ExperimentConfig
from repro.common.errors import ConfigError
from repro.runtime.configfile import (
    experiment_config_from_dict,
    experiment_config_to_dict,
    load_experiment_config,
    save_experiment_config,
)


def test_minimal_description_takes_defaults():
    config = experiment_config_from_dict({
        "cluster": {"num_dcs": 2, "num_partitions": 2, "protocol": "cure"},
        "duration_s": 5.0,
    })
    assert config.cluster.protocol == "cure"
    assert config.cluster.num_dcs == 2
    assert config.duration_s == 5.0
    # Untouched sections keep the dataclass defaults.
    assert config.workload.think_time_s == ExperimentConfig().workload.think_time_s
    assert config.cluster.protocol_config.heartbeat_interval_s > 0


def test_round_trip_through_dict_is_lossless():
    original = ExperimentConfig()
    tree = experiment_config_to_dict(original)
    restored = experiment_config_from_dict(tree)
    assert restored == original


def test_round_trip_through_file(tmp_path):
    path = tmp_path / "cluster.json"
    original = experiment_config_from_dict({
        "cluster": {
            "num_dcs": 2, "num_partitions": 3, "protocol": "okapi",
            "protocol_config": {"heartbeat_interval_s": 0.002},
        },
        "workload": {"kind": "mixed", "read_ratio": 0.9,
                     "clients_per_partition": 1},
        "seed": 99,
    })
    save_experiment_config(original, str(path))
    assert load_experiment_config(str(path)) == original


def test_unknown_keys_are_rejected_not_ignored():
    with pytest.raises(ConfigError, match="unknown key"):
        experiment_config_from_dict({"cluster": {"num_dsc": 2}})
    with pytest.raises(ConfigError, match="unknown key"):
        experiment_config_from_dict({"wokload": {}})
    with pytest.raises(ConfigError, match="unknown key"):
        experiment_config_from_dict(
            {"cluster": {"protocol_config": {"heartbeats": 1}}}
        )


def test_persistence_block_round_trips(tmp_path):
    path = tmp_path / "cluster.json"
    original = experiment_config_from_dict({
        "cluster": {"num_dcs": 2, "num_partitions": 2},
        "persistence": {"enabled": True, "data_dir": "/var/lib/repro",
                        "fsync": "always", "snapshot_interval_s": 5.0},
    })
    assert original.persistence.enabled
    assert original.persistence.fsync == "always"
    save_experiment_config(original, str(path))
    assert load_experiment_config(str(path)) == original
    # Omitted block means disabled, with defaults.
    assert not experiment_config_from_dict({}).persistence.enabled


def test_persistence_block_is_validated():
    with pytest.raises(ConfigError, match="unknown key"):
        experiment_config_from_dict({"persistence": {"fsnc": "always"}})
    with pytest.raises(ConfigError, match="fsync"):
        experiment_config_from_dict(
            {"persistence": {"enabled": True, "data_dir": "/d",
                             "fsync": "sometimes"}}
        )
    with pytest.raises(ConfigError, match="data_dir"):
        experiment_config_from_dict({"persistence": {"enabled": True}})


def test_invalid_values_fail_validation(tmp_path):
    with pytest.raises(ConfigError):
        experiment_config_from_dict({"cluster": {"num_dcs": 1}})
    path = tmp_path / "broken.json"
    path.write_text("not json")
    with pytest.raises(ConfigError, match="not valid JSON"):
        load_experiment_config(str(path))


def test_repl_batch_cli_flags_enable_protocol_batching():
    from repro.runtime.bench_live import build_parser
    from repro.runtime.cli import config_from_args

    args = build_parser().parse_args(
        ["--protocol", "pocc", "--repl-batch", "32",
         "--repl-flush-ms", "2.5"]
    )
    config = config_from_args(args)
    batch = config.cluster.repl_batch
    assert batch.enabled
    assert batch.max_versions == 32
    assert batch.flush_ms == 2.5

    # Either flag alone turns batching on; the other keeps its default.
    args = build_parser().parse_args(["--repl-flush-ms", "10"])
    batch = config_from_args(args).cluster.repl_batch
    assert batch.enabled and batch.max_versions == 64
    assert batch.flush_ms == 10.0

    # And without the flags it stays off (the sim-report-identical path).
    args = build_parser().parse_args([])
    assert not config_from_args(args).cluster.repl_batch.enabled


def test_transport_block_round_trips(tmp_path):
    path = tmp_path / "cluster.json"
    original = experiment_config_from_dict({
        "cluster": {
            "num_dcs": 2, "num_partitions": 2,
            "transport": {"tcp_nodelay": False, "sndbuf_bytes": 65536,
                          "rcvbuf_bytes": 131072, "event_loop": "asyncio"},
        },
    })
    assert original.cluster.transport.sndbuf_bytes == 65536
    assert not original.cluster.transport.tcp_nodelay
    save_experiment_config(original, str(path))
    assert load_experiment_config(str(path)) == original
    # Omitted block keeps the defaults (nodelay on, auto loop).
    defaults = experiment_config_from_dict({}).cluster.transport
    assert defaults.tcp_nodelay and defaults.event_loop == "auto"
    with pytest.raises(ConfigError, match="unknown key"):
        experiment_config_from_dict(
            {"cluster": {"transport": {"nodelay": True}}}
        )
    with pytest.raises(ConfigError, match="event_loop"):
        experiment_config_from_dict(
            {"cluster": {"transport": {"event_loop": "twisted"}}}
        )


def test_transport_cli_flags_override_the_config():
    from repro.runtime.bench_live import build_parser
    from repro.runtime.cli import config_from_args

    args = build_parser().parse_args(
        ["--event-loop", "asyncio", "--tcp-nodelay", "off",
         "--sndbuf", "65536", "--rcvbuf", "32768"]
    )
    tuning = config_from_args(args).cluster.transport
    assert tuning.event_loop == "asyncio"
    assert not tuning.tcp_nodelay
    assert tuning.sndbuf_bytes == 65536
    assert tuning.rcvbuf_bytes == 32768

    # Without the flags the defaults survive untouched.
    args = build_parser().parse_args([])
    tuning = config_from_args(args).cluster.transport
    assert tuning.event_loop == "auto" and tuning.tcp_nodelay
