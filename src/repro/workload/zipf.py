"""Zipfian rank sampling.

The paper draws keys within each partition from a zipf distribution with
parameter 0.99 (the YCSB default).  Rank probabilities are
``P(rank=i) ∝ 1 / (i+1)^theta``; we precompute the CDF once per pool size
and sample with binary search, which is exact and fast for the pool sizes
the simulation uses.
"""

from __future__ import annotations

import random

import numpy as np

from repro.common.errors import ConfigError


class ZipfGenerator:
    """Samples 0-based ranks from a (truncated) zipf distribution."""

    def __init__(self, num_items: int, theta: float, rng: random.Random):
        if num_items < 1:
            raise ConfigError("zipf needs at least one item")
        if theta < 0:
            raise ConfigError("zipf theta must be >= 0")
        self.num_items = num_items
        self.theta = theta
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, num_items + 1, dtype=float),
                                 theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self) -> int:
        """One rank in [0, num_items)."""
        u = self._rng.random()
        return int(np.searchsorted(self._cdf, u, side="left"))

    def probability(self, rank: int) -> float:
        """The probability mass of a given rank."""
        if not 0 <= rank < self.num_items:
            raise ConfigError(f"rank {rank} out of range")
        lower = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lower)
