"""Parallel experiment execution: fan independent runs across processes.

Every simulated run is deterministic given its ``(config, seed)`` and
shares no state with any other run, so replicate sets and sweep grids are
embarrassingly parallel.  This module is the single fan-out point used by
:func:`repro.harness.replicates.run_replicates`,
:func:`repro.harness.sweeps.run_sweep` and every ``figure_*`` function:
it runs a list of :class:`ExperimentConfig` across a
:class:`~concurrent.futures.ProcessPoolExecutor` and returns results in
**input order**, which makes all downstream aggregation byte-identical to
the serial path.

Determinism contract
--------------------
* ``parallelism=1`` (or a single config) bypasses the pool entirely — the
  exact legacy serial path, same process, same call sequence.
* ``parallelism>1`` forks workers (where the platform allows), so children
  inherit the parent's hash seed and every run computes precisely what it
  would have computed inline; results are gathered by submission index,
  never by completion order.
* ``parallelism=None`` means ``os.cpu_count()``.

The pool pays ~50-100 ms of setup, so callers with a single run should
pass ``parallelism=1`` (the helpers here do this automatically when given
one config).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import replace
from typing import Callable, Iterable, Sequence

from repro.common.config import ExperimentConfig
from repro.common.errors import ConfigError
from repro.harness.experiment import ExperimentResult, run_experiment

ProgressFn = Callable[[ExperimentConfig, ExperimentResult], None]


def resolve_parallelism(
    parallelism: int | None, num_tasks: int | None = None
) -> int:
    """Map the user-facing knob to a worker count.

    ``None`` resolves to ``os.cpu_count()``; the result is clamped to the
    task count (no idle workers) and validated to be >= 1.
    """
    if parallelism is None:
        parallelism = os.cpu_count() or 1
    if parallelism < 1:
        raise ConfigError("parallelism must be >= 1 (or None for auto)")
    if num_tasks is not None and num_tasks >= 1:
        parallelism = min(parallelism, num_tasks)
    return parallelism


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork: cheapest start and children inherit the hash seed, so
    str-keyed iteration in a worker matches the parent exactly."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _run_one(config: ExperimentConfig) -> ExperimentResult:
    """Worker entry point (module-level so it pickles)."""
    return run_experiment(config)


def run_experiments(
    configs: Iterable[ExperimentConfig],
    parallelism: int | None = None,
    progress: ProgressFn | None = None,
) -> list[ExperimentResult]:
    """Run every config and return results in input order.

    With ``parallelism=1`` this is exactly the legacy serial loop
    (``progress`` fires after each run).  With more workers the runs fan
    out across a process pool; ``progress`` then fires for all runs, still
    in input order, once every result is back.

    When ``parallelism`` is not given, the configs' own
    ``ExperimentConfig.parallelism`` knobs apply (the most conservative —
    smallest — set value wins, so one serial-pinned config keeps the whole
    batch serial); all-``None`` means every core.
    """
    configs = list(configs)
    if parallelism is None:
        knobs = [c.parallelism for c in configs if c.parallelism is not None]
        if knobs:
            parallelism = min(knobs)
    workers = resolve_parallelism(parallelism, len(configs))
    if workers <= 1 or len(configs) <= 1:
        results = []
        for config in configs:
            result = run_experiment(config)
            results.append(result)
            if progress is not None:
                progress(config, result)
        return results

    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_pool_context()
    ) as pool:
        futures = [pool.submit(_run_one, config) for config in configs]
        try:
            # Gather by submission index: completion order never leaks
            # into the result list, so aggregation is byte-identical to
            # serial.
            results = [future.result() for future in futures]
        except BaseException:
            # Fail fast: without this, the with-block exit would wait for
            # every queued run of a possibly hours-long sweep.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    if progress is not None:
        for config, result in zip(configs, results):
            progress(config, result)
    return results


def run_seeded(
    config: ExperimentConfig,
    seeds: Sequence[int],
    parallelism: int | None = None,
) -> list[ExperimentResult]:
    """Run one config once per seed (the replicate fan-out), in seed order.

    ``parallelism`` defaults to the config's own knob (the seed-replaced
    copies inherit it, and :func:`run_experiments` honours it).
    """
    return run_experiments(
        [replace(config, seed=seed) for seed in seeds],
        parallelism=parallelism,
    )
