"""Canonical RNG stream names, so components never collide by accident."""

from __future__ import annotations

from repro.common.types import Address

LATENCY = "latency"


def clock_stream(address: Address) -> str:
    return f"clock:{address}"


def workload_stream(address: Address) -> str:
    return f"workload:{address}"


def driver_stream(address: Address) -> str:
    return f"driver:{address}"
