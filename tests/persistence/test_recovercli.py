"""``repro-recover``: offline inspection of a deployment data dir."""

import json

from repro.common.config import PersistenceConfig
from repro.common.types import server_address
from repro.persistence.manager import PartitionDurability
from repro.persistence.recovercli import main
from repro.storage.version import Version


def populate(tmp_path, address, uts=(1, 2, 3)):
    config = PersistenceConfig(enabled=True, data_dir=str(tmp_path),
                               fsync="always")
    durability = PartitionDurability(tmp_path, address, config)
    durability.recover()
    for ut in uts:
        durability.append_version(
            Version(key=f"k{ut}", value=ut, sr=address.dc, ut=ut,
                    dv=(0, 0))
        )
    durability.close()
    return durability


def test_reports_every_partition_and_exits_zero(tmp_path, capsys):
    populate(tmp_path, server_address(0, 0))
    populate(tmp_path, server_address(1, 1), uts=(4, 5))
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "dc0-p0" in out and "dc1-p1" in out
    assert "3 version(s) recoverable" in out


def test_json_report_is_machine_readable(tmp_path, capsys):
    populate(tmp_path, server_address(0, 0))
    assert main([str(tmp_path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["corrupt_partitions"] == 0
    (entry,) = report["partitions"]
    assert entry["recovered_versions"] == 3
    assert entry["wal"]["records"] == 3


def test_torn_tail_reported_and_repaired(tmp_path, capsys):
    durability = populate(tmp_path, server_address(0, 0))
    wal_path = durability.wal.path
    wal_path.write_bytes(wal_path.read_bytes()[:-2])

    assert main([str(tmp_path)]) == 0  # torn tail is not corruption
    assert "torn tail" in capsys.readouterr().out
    assert main([str(tmp_path), "--repair"]) == 0
    capsys.readouterr()
    assert main([str(tmp_path)]) == 0  # tail gone after repair
    assert "torn tail" not in capsys.readouterr().out


def test_corruption_exits_nonzero(tmp_path, capsys):
    durability = populate(tmp_path, server_address(0, 0))
    wal_path = durability.wal.path
    payload = b"\x00garbage"
    wal_path.write_bytes(wal_path.read_bytes()
                         + len(payload).to_bytes(4, "big") + payload)
    assert main([str(tmp_path)]) == 2
    assert "CORRUPT" in capsys.readouterr().out


def test_missing_or_empty_dir_is_an_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert main([str(tmp_path)]) == 2
