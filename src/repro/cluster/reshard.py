"""The view-change driver: online resharding under live traffic.

:class:`ReshardController` is an I/O-free :class:`ProtocolCore` (it runs
unmodified on the sim and live backends) that drives one epoch change
through the phases the :class:`~repro.protocols.membership.
MembershipManager` implements on every server:

1. **propose** — ``ViewPropose(epoch, members, vnodes)`` to every server
   in the address space (joiners included); collect
   ``ViewAck(phase="prepare")`` from all of them.
2. **migrate** — ``MigrateStart``; every server seals the keys whose
   owner changes, donors stream chains to the new owners, and everyone
   reports ``MigrateDone`` (zero totals where nothing moved) once its
   chunks are acked-durable.
3. **drain** — wait ``commit_delay_s`` so in-flight replication crossing
   the cutover settles into the straggler-forwarding path.
4. **commit** — ``ViewCommit``; servers WAL-log and adopt the view,
   purge unowned chains, answer parked ops; collect
   ``ViewAck(phase="commit")`` from everyone.

Every phase retries its outstanding servers each ``retry_interval_s``
forever — a SIGKILLed participant rejoins after restart (recovery +
catch-up) and answers the next retry; the migrate retry re-sends the
propose immediately before the start so a restarted server that lost its
pending view receives both, in order, on the FIFO channel.

``repro-reshard`` is the CLI face (live backend, same config file the
deployment booted from); :func:`start_sim_reshard` attaches a controller
to a simulated cluster for deterministic tests.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.common.errors import ReproError
from repro.common.types import Address, reshard_controller_address
from repro.cluster.ring import ClusterView
from repro.cluster.topology import Topology
from repro.protocols import messages as m
from repro.protocols.core import FOREGROUND, ProtocolCore


@dataclass(slots=True)
class ReshardResult:
    """What one committed view change did."""

    epoch: int
    members: tuple[int, ...]
    keys_moved: int = 0
    bytes_moved: int = 0
    started_at: float = 0.0
    committed_at: float = 0.0
    retries: int = 0
    #: Per-server ``(dc, partition) -> keys_moved`` donor totals.
    moved_by_server: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(self.committed_at - self.started_at, 0.0)

    def summary_text(self) -> str:
        return (
            f"reshard -> epoch {self.epoch} members {list(self.members)}: "
            f"{self.keys_moved} keys / {self.bytes_moved} bytes moved in "
            f"{self.duration_s:.3f}s ({self.retries} retries)"
        )


class ReshardController(ProtocolCore):
    """Drives one view change to commit; see the module docstring."""

    def __init__(
        self,
        runtime,
        topology: Topology,
        target: ClusterView,
        commit_delay_s: float = 0.25,
        retry_interval_s: float = 0.5,
        on_done: Callable[[ReshardResult], None] | None = None,
    ):
        super().__init__(runtime, clock=None)
        self.topology = topology
        self.target = target
        self.commit_delay_s = commit_delay_s
        self.retry_interval_s = retry_interval_s
        self.on_done = on_done
        self._everyone = tuple(topology.all_servers())
        self._prepare_acks: set[Address] = set()
        self._done_reports: dict[Address, tuple[int, int]] = {}
        self._commit_acks: set[Address] = set()
        self.phase = "idle"
        self.result = ReshardResult(epoch=target.epoch,
                                    members=target.members)
        self._retry_timer = None

    # ------------------------------------------------------------------
    # ProtocolCore surface (the controller does no modeled work)
    # ------------------------------------------------------------------
    def service_time(self, msg: Any) -> float:
        return 0.0

    def message_priority(self, msg: Any) -> int:
        return FOREGROUND

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Kick off the propose phase (call with the backend running)."""
        if self.phase != "idle":
            raise ReproError("ReshardController.start() called twice")
        self.phase = "propose"
        self.result.started_at = self.rt.now
        self._send_propose(self._everyone)
        self._retry_timer = self.rt.schedule(self.retry_interval_s,
                                             self._retry_tick)

    def _propose_msg(self) -> m.ViewPropose:
        epoch, members, vnodes = self.target.to_wire()
        return m.ViewPropose(epoch=epoch, members=members, vnodes=vnodes,
                             reply_to=self.address)

    def _send_propose(self, targets: Sequence[Address]) -> None:
        self.rt.send_fanout(targets, self._propose_msg())

    def _send_start(self, targets: Sequence[Address]) -> None:
        self.rt.send_fanout(targets, m.MigrateStart(
            epoch=self.target.epoch, reply_to=self.address))

    def _send_commit(self, targets: Sequence[Address]) -> None:
        epoch, members, vnodes = self.target.to_wire()
        self.rt.send_fanout(targets, m.ViewCommit(
            epoch=epoch, members=members, vnodes=vnodes))

    # ------------------------------------------------------------------
    # Retries: at-least-once per phase, forever (restarts answer later)
    # ------------------------------------------------------------------
    def _retry_tick(self) -> None:
        if self.phase == "done":
            return
        missing = self._missing()
        if missing:
            self.result.retries += 1
            if self.phase == "propose":
                self._send_propose(missing)
            elif self.phase == "migrate":
                # A restarted server lost its pending view with its
                # memory; FIFO channels deliver this propose before the
                # start, so the retry always arrives well-formed.
                self._send_propose(missing)
                self._send_start(missing)
            elif self.phase == "commit":
                # ViewCommit carries no reply address; the commit ack
                # rides on the controller address the propose taught the
                # server.  A participant restarted after the migrate
                # phase never saw one, so re-teach it first (FIFO order:
                # propose lands before the commit, re-arming the ack
                # path; the redundant prepare ack is dropped harmlessly).
                self._send_propose(missing)
                self._send_commit(missing)
        self._retry_timer = self.rt.schedule(self.retry_interval_s,
                                             self._retry_tick)

    def _missing(self) -> list[Address]:
        if self.phase == "propose":
            have: Any = self._prepare_acks
        elif self.phase == "migrate":
            have = self._done_reports
        elif self.phase == "commit":
            have = self._commit_acks
        else:
            return []
        return [address for address in self._everyone
                if address not in have]

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    def dispatch(self, msg: Any) -> None:
        if isinstance(msg, m.ViewAck):
            self._on_ack(msg)
        elif isinstance(msg, m.MigrateDone):
            self._on_done(msg)
        # Anything else (stray gossip, late acks from an older epoch) is
        # dropped: the controller only ever drives self.target.

    def _on_ack(self, msg: m.ViewAck) -> None:
        if msg.epoch != self.target.epoch:
            return
        address = self.topology.server(msg.dc, msg.partition)
        if msg.phase == "prepare":
            self._prepare_acks.add(address)
            if self.phase == "propose" and not self._missing():
                self.phase = "migrate"
                self._send_start(self._everyone)
        elif msg.phase == "commit":
            self._commit_acks.add(address)
            if self.phase == "commit" and not self._missing():
                self._finish()

    def _on_done(self, msg: m.MigrateDone) -> None:
        if msg.epoch != self.target.epoch:
            return
        address = self.topology.server(msg.dc, msg.partition)
        # Overwrite is safe: donors resend identical totals on retries
        # (idempotent _done_stats on the server side).
        self._done_reports[address] = (msg.keys_moved, msg.bytes_moved)
        if self.phase == "migrate" and not self._missing():
            self.phase = "drain"
            self.rt.schedule(self.commit_delay_s, self._begin_commit)

    def _begin_commit(self) -> None:
        self.phase = "commit"
        self._send_commit(self._everyone)

    def _finish(self) -> None:
        self.phase = "done"
        if self._retry_timer is not None:
            self._retry_timer.cancel()
        result = self.result
        result.committed_at = self.rt.now
        result.keys_moved = sum(k for k, _ in self._done_reports.values())
        result.bytes_moved = sum(b for _, b in self._done_reports.values())
        result.moved_by_server = {
            (a.dc, a.partition): keys
            for a, (keys, _) in self._done_reports.items() if keys
        }
        if self.on_done is not None:
            self.on_done(result)


# ----------------------------------------------------------------------
# Harness attachment (both backends)
# ----------------------------------------------------------------------
def start_sim_reshard(
    built,
    members: Sequence[int],
    at_s: float,
    commit_delay_s: float | None = None,
    retry_interval_s: float | None = None,
    on_done: Callable[[ReshardResult], None] | None = None,
) -> ReshardController:
    """Attach a controller to a built sim cluster; starts at ``at_s``.

    ``built`` is a :class:`repro.harness.builders.BuiltCluster` whose
    config enabled membership.  The target view is the current one's
    successor with the given member set.
    """
    from repro.cluster.node import SimNode

    membership = built.config.cluster.membership
    if not membership.enabled:
        raise ReproError("resharding needs cluster.membership.enabled")
    current = built.topology.view
    epoch = (current.epoch if current is not None else 0) + 1
    vnodes = current.vnodes if current is not None else membership.vnodes
    target = ClusterView(epoch=epoch, members=tuple(members),
                         vnodes=vnodes)
    runtime = SimNode(built.sim, built.network,
                      reshard_controller_address(), cores=1)
    controller = ReshardController(
        runtime, built.topology, target,
        commit_delay_s=(commit_delay_s if commit_delay_s is not None
                        else membership.commit_delay_s),
        retry_interval_s=(retry_interval_s if retry_interval_s is not None
                          else membership.retry_interval_s),
        on_done=on_done,
    )
    built.sim.schedule_at(at_s, controller.start)
    return controller


def attach_live_controller(
    hub,
    topology: Topology,
    target: ClusterView,
    commit_delay_s: float,
    retry_interval_s: float,
    on_done: Callable[[ReshardResult], None] | None = None,
) -> ReshardController:
    """Create the controller endpoint on an existing live hub.

    Call *before* ``hub.start()`` so the endpoint's listener binds with
    the others (or start the returned controller's runtime yourself).
    """
    runtime = hub.runtime(reshard_controller_address())
    return ReshardController(runtime, topology, target,
                             commit_delay_s=commit_delay_s,
                             retry_interval_s=retry_interval_s,
                             on_done=on_done)


async def run_reshard_live(
    config,
    members: Sequence[int],
    epoch: int,
    host: str = "127.0.0.1",
    base_port: int = 7400,
    timeout_s: float = 120.0,
) -> ReshardResult:
    """Drive one view change against an already-running live deployment.

    Boots a standalone controller process-half (its own hub, the shared
    deterministic address book) and returns once the commit round-tripped
    through every server.
    """
    from repro.runtime.transport import AddressBook, LiveHub

    cluster = config.cluster
    topology = Topology(cluster.num_dcs, cluster.num_partitions)
    book = AddressBook.for_topology(
        topology,
        clients_per_partition=config.workload.clients_per_partition,
        host=host, base_port=base_port,
    )
    hub = LiveHub(book, tuning=cluster.transport)
    membership = cluster.membership
    target = ClusterView(epoch=epoch, members=tuple(members),
                         vnodes=membership.vnodes)
    done = asyncio.Event()
    controller = attach_live_controller(
        hub, topology, target,
        commit_delay_s=membership.commit_delay_s,
        retry_interval_s=membership.retry_interval_s,
        on_done=lambda _result: done.set(),
    )
    await hub.start()
    try:
        controller.start()
        await asyncio.wait_for(done.wait(), timeout_s)
        await hub.drain()
    finally:
        await hub.close()
    return controller.result


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: ``repro-reshard --config cluster.json --epoch 1
    --members 0,1,2`` against a live deployment's port map."""
    import argparse

    from repro.runtime.configfile import load_experiment_config

    parser = argparse.ArgumentParser(
        description="Drive one causal-safe view change (online reshard) "
                    "against a running live deployment."
    )
    parser.add_argument("--config", required=True,
                        help="the deployment's JSON config file")
    parser.add_argument("--members", required=True,
                        help="comma-separated partition ids of the next "
                             "view, e.g. 0,1,2")
    parser.add_argument("--epoch", type=int, required=True,
                        help="the next view's epoch (current + 1)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--base-port", type=int, default=7400)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args(argv)

    config = load_experiment_config(args.config)
    if not config.cluster.membership.enabled:
        print("error: cluster.membership.enabled is false in this config")
        return 2
    members = tuple(int(p) for p in args.members.split(",") if p != "")
    result = asyncio.run(run_reshard_live(
        config, members, epoch=args.epoch, host=args.host,
        base_port=args.base_port, timeout_s=args.timeout,
    ))
    print(result.summary_text())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
