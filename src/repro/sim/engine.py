"""The discrete-event simulator core: a cancellable event heap.

Design notes
------------
* Time is a float number of simulated seconds, starting at 0.0.
* Events scheduled for the same instant fire in scheduling order (a
  monotonically increasing sequence number breaks ties), which makes runs
  fully deterministic.
* Cancellation is O(1): the heap entry's callback slot is nulled and the
  entry is skipped when popped ("lazy deletion").  Cancelled entries that
  would never be popped soon (far-future timers) can accumulate, so the
  heap is compacted in place once they exceed both an absolute floor and
  half of all entries; see :meth:`Simulator.compact`.
* The hot path avoids object allocation beyond one small list per event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.common.errors import SimulationError

# Heap entry layout: [time, seq, callback, args]; callback is set to None on
# cancellation.  Index constants keep the hot path readable.
_TIME = 0
_SEQ = 1
_CALLBACK = 2
_ARGS = 3

#: Compaction thresholds: rebuild the heap when cancelled-but-unpopped
#: entries exceed the floor AND outnumber half of all heap entries.
COMPACT_FLOOR = 1024
COMPACT_RATIO = 0.5


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: list, sim: "Simulator | None" = None):
        self._entry = entry
        self._sim = sim

    def cancel(self) -> bool:
        """Cancel the event.  Returns False if it already fired/cancelled."""
        if self._entry[_CALLBACK] is None:
            return False
        self._entry[_CALLBACK] = None
        self._entry[_ARGS] = None
        if self._sim is not None:
            self._sim._note_cancellation()
        return True

    @property
    def active(self) -> bool:
        """True while the event is still pending."""
        return self._entry[_CALLBACK] is not None

    @property
    def time(self) -> float:
        """The simulated time the event is (was) scheduled for."""
        return self._entry[_TIME]


class Simulator:
    """A deterministic discrete-event scheduler.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, callback, arg1, arg2)
        sim.run(until=10.0)
    """

    __slots__ = ("_heap", "_now", "_seq", "_events_executed", "_stopped",
                 "_cancelled_pending", "compactions")

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._now = 0.0
        self._seq = 0
        self._events_executed = 0
        self._stopped = False
        self._cancelled_pending = 0
        #: Number of threshold-triggered heap compactions so far.
        self.compactions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of heap entries (including cancelled, not yet popped)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still occupying heap slots (lazy deletion)."""
        return self._cancelled_pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        entry = [self._now + delay, self._seq, callback, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return EventHandle(entry, self)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        entry = [time, self._seq, callback, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return EventHandle(entry, self)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancellation(self) -> None:
        self._cancelled_pending += 1
        cancelled = self._cancelled_pending
        if (cancelled > COMPACT_FLOOR
                and cancelled > COMPACT_RATIO * len(self._heap)):
            self.compact()

    def compact(self) -> int:
        """Drop cancelled entries and re-heapify.  Returns entries removed.

        O(n); called automatically when lazy-deleted entries exceed the
        module thresholds, so a workload that schedules-and-cancels many
        far-future timers (heartbeat resets, request timeouts) keeps the
        heap proportional to the *live* event count.
        """
        before = len(self._heap)
        self._heap = [e for e in self._heap if e[_CALLBACK] is not None]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        removed = before - len(self._heap)
        if removed:
            self.compactions += 1
        return removed

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> int:
        """Run events until the heap drains, ``until`` passes, or
        ``max_events`` fire.  Returns the number of events executed by this
        call.  After returning because of ``until``, ``now`` equals
        ``until`` (time advances even if no event fired exactly then).
        """
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        self._stopped = False
        while heap and not self._stopped:
            if max_events is not None and executed >= max_events:
                break
            entry = heap[0]
            if until is not None and entry[0] > until:
                break
            pop(heap)
            callback = entry[2]
            if callback is None:  # cancelled
                self._cancelled_pending -= 1
                continue
            self._now = entry[0]
            args = entry[3]
            # Clear before invoking so re-entrant cancels are harmless.
            entry[2] = None
            entry[3] = None
            callback(*args)
            executed += 1
            self._events_executed += 1
            heap = self._heap  # compaction may have replaced the list
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return executed

    def step(self) -> bool:
        """Execute exactly one (non-cancelled) event.  Returns False when
        the heap is empty."""
        while True:
            heap = self._heap
            if not heap:
                return False
            entry = heapq.heappop(heap)
            callback = entry[_CALLBACK]
            if callback is None:
                self._cancelled_pending -= 1
                continue
            self._now = entry[_TIME]
            args = entry[_ARGS]
            entry[_CALLBACK] = None
            entry[_ARGS] = None
            callback(*args)
            self._events_executed += 1
            return True

    def stop(self) -> None:
        """Make the current :meth:`run` call return after this event."""
        self._stopped = True

    def peek_next_time(self) -> float | None:
        """Time of the next pending event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0][_CALLBACK] is None:
            heapq.heappop(heap)
            self._cancelled_pending -= 1
        return heap[0][_TIME] if heap else None
