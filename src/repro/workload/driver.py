"""The workload drivers: closed-loop (the paper's) and open-loop.

:class:`ClosedLoopClient` wraps one protocol client the way the paper's
testbed does: issue the next operation, wait for the reply, "think" for
the configured time (25 ms in the paper — "low enough to avoid masking
the blocking dynamics [...] and high enough to fully load the compared
systems"), repeat.  Throughput is therefore capped at
``sessions / think_time`` — fine for reproducing the figures, wrong for
probing a backend's capacity.

:class:`OpenLoopClient` is the pipelined load generator: arrivals are
*scheduled* at a target rate whether or not the previous operation has
completed.  The session itself stays sequential — causal session
guarantees (and the checker's session model) assume one operation in
flight per session — so an arrival that finds the session busy queues,
and **latency is measured from the intended arrival time**: queueing
delay counts, which is what keeps the tail percentiles honest under
overload (no coordinated omission).  Aggregate concurrency comes from
running many sessions (``clients_per_partition``).

Both drivers run unchanged on either backend (they only use the runtime's
``schedule``/``now`` and the client's callback API), feed every completed
operation to the online causal-consistency checker when verification is
on, and record per-operation-type latency into
:class:`repro.metrics.histogram.LogHistogram` (HDR-style log buckets) for
the p50/p90/p99 reporting of the live bench.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional

from repro.common.errors import ReproError
from repro.metrics.histogram import LogHistogram
from repro.protocols import messages as m
from repro.protocols.base import CausalClient
from repro.sim.engine import Simulator
from repro.verification.checker import CausalChecker


class DriverBase:
    """Shared driver plumbing: checker feed + per-op latency histograms."""

    def __init__(
        self,
        sim: Simulator,
        client: CausalClient,
        workload,
        rng: random.Random,
        checker: Optional[CausalChecker] = None,
    ):
        self.sim = sim
        self.client = client
        self.workload = workload
        self._rng = rng
        self.checker = checker
        self.ops_issued = 0
        self._running = False
        self._put_seq = 0
        self._session_resets_seen = client.session_resets
        #: op kind -> latency histogram, measured from the driver's
        #: intended start (== issue time for the closed loop).
        self.latency: dict[str, LogHistogram] = {}
        if checker is not None:
            checker.register_client(str(client.address))

    def stop(self) -> None:
        """Stop after the in-flight operation (if any) completes."""
        self._running = False

    def _record_latency(self, kind: str, seconds: float) -> None:
        hist = self.latency.get(kind)
        if hist is None:
            hist = self.latency[kind] = LogHistogram()
        hist.record(seconds if seconds > 0 else 0.0)

    def reset_latency(self) -> None:
        """Drop samples recorded so far (the measurement-window start).

        The live harness calls this when it arms the metrics window so
        warmup ramp-up ops do not dilute the reported percentiles;
        completions *after* the window still record — they are the tail
        of arrivals the window offered, exactly what honest open-loop
        percentiles must include.
        """
        self.latency = {}

    def _sync_session_resets(self) -> None:
        """Propagate HA session re-initializations to the checker.

        A reset (demotion/fail-over) happens *before* the failed operation
        is re-issued, so it is always observed here before the reply of
        any post-reset operation is recorded.
        """
        if self.client.session_resets != self._session_resets_seen:
            self._session_resets_seen = self.client.session_resets
            if self.checker is not None:
                self.checker.on_session_reset(str(self.client.address),
                                              self.sim.now)

    # -- checker recording (shared by both drivers' reply handlers) ----
    def _checker_read(self, reply: m.GetReply) -> None:
        self._sync_session_resets()
        if self.checker is not None:
            self.checker.on_read(
                str(self.client.address), reply.key,
                (reply.key, reply.sr, reply.ut), self.sim.now,
            )

    def _checker_write(self, key: str, reply: m.PutReply) -> None:
        self._sync_session_resets()
        if self.checker is not None:
            self.checker.on_write(
                str(self.client.address), key,
                (key, self.client.m, reply.ut), self.sim.now,
            )

    def _checker_tx(self, reply: m.RoTxReply) -> None:
        self._sync_session_resets()
        if self.checker is not None:
            items = [
                (item.key, (item.key, item.sr, item.ut))
                for item in reply.versions
            ]
            self.checker.on_tx_read(
                str(self.client.address), items, self.sim.now
            )


class ClosedLoopClient(DriverBase):
    """Drives one protocol client in a closed loop."""

    def __init__(
        self,
        sim: Simulator,
        client: CausalClient,
        workload,
        think_time_s: float,
        rng: random.Random,
        checker: Optional[CausalChecker] = None,
    ):
        super().__init__(sim, client, workload, rng, checker)
        self.think_time_s = think_time_s
        self._last_put_key: str | None = None
        self._issued_kind: str = ""
        self._issued_at: float = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, stagger_s: float = 0.01) -> None:
        """Begin the loop after a random stagger (desynchronizes clients)."""
        if self._running:
            raise ReproError("driver already started")
        self._running = True
        self.sim.schedule(self._rng.uniform(0.0, stagger_s), self._issue_next)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def _issue_next(self) -> None:
        if not self._running:
            return
        spec = self.workload.next_op()
        self.ops_issued += 1
        self._issued_kind = spec.kind
        self._issued_at = self.sim.now
        if spec.kind == "get":
            self.client.get(spec.key, self._on_get_reply)
        elif spec.kind == "put":
            self._put_seq += 1
            self._last_put_key = spec.key
            value = (str(self.client.address), self._put_seq)
            self.client.put(spec.key, value, self._on_put_reply)
        elif spec.kind == "ro_tx":
            self.client.ro_tx(spec.keys, self._on_tx_reply)
        else:
            raise ReproError(f"unknown op kind {spec.kind!r}")

    def _after_reply(self) -> None:
        self._record_latency(self._issued_kind, self.sim.now - self._issued_at)
        if not self._running:
            return
        if self.think_time_s > 0:
            self.sim.schedule(self.think_time_s, self._issue_next)
        else:
            self.sim.schedule(0.0, self._issue_next)

    # ------------------------------------------------------------------
    # Reply handlers
    # ------------------------------------------------------------------
    def _on_get_reply(self, reply: m.GetReply) -> None:
        self._checker_read(reply)
        self._after_reply()

    def _on_put_reply(self, reply: m.PutReply) -> None:
        # Closed loop: the reply always matches the last issued PUT.
        self._checker_write(self._last_put_key, reply)
        self._after_reply()

    def _on_tx_reply(self, reply: m.RoTxReply) -> None:
        self._checker_tx(reply)
        self._after_reply()


class OpenLoopClient(DriverBase):
    """Target-rate open-loop driver over one (sequential) session.

    Arrivals fire every ``1 / rate_ops_s`` seconds from a staggered
    start.  Each arrival is *admitted* immediately when the session is
    idle, queued when it is busy (up to ``max_backlog``; beyond that the
    arrival is counted in :attr:`dropped_arrivals` instead of growing
    memory without bound), and its latency runs from the scheduled
    arrival instant to the reply — so a backend that cannot sustain the
    offered rate shows the queueing in its p90/p99 rather than quietly
    slowing the generator down.
    """

    def __init__(
        self,
        sim: Simulator,
        client: CausalClient,
        workload,
        rate_ops_s: float,
        rng: random.Random,
        checker: Optional[CausalChecker] = None,
        max_backlog: int = 100_000,
    ):
        if rate_ops_s <= 0:
            raise ReproError("open-loop driver needs rate_ops_s > 0")
        super().__init__(sim, client, workload, rng, checker)
        self._interval = 1.0 / rate_ops_s
        self._max_backlog = max_backlog
        self._backlog: deque[float] = deque()  # intended arrival times
        self._busy = False
        self._inflight: tuple[str, str | None, float] | None = None
        self._next_arrival: float | None = None
        #: Arrivals discarded because the backlog cap was hit (the
        #: generator was more than ``max_backlog`` ops ahead of the
        #: system) — nonzero means the offered rate was unsustainable.
        self.dropped_arrivals = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, stagger_s: float = 0.01) -> None:
        """Begin arrivals after a random stagger (desynchronizes clients)."""
        if self._running:
            raise ReproError("driver already started")
        self._running = True
        self._next_arrival = None
        self.sim.schedule(self._rng.uniform(0.0, stagger_s),
                          self._arrival_tick)

    @property
    def backlog(self) -> int:
        """Arrivals admitted but not yet issued (the queue depth)."""
        return len(self._backlog)

    # ------------------------------------------------------------------
    # The arrival schedule
    # ------------------------------------------------------------------
    def _arrival_tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        if self._next_arrival is None:
            self._next_arrival = now
        # Materialize *every* arrival whose intended instant has elapsed
        # in this one tick.  A tick that fires late (the live event loop
        # stalled behind a long callback or an fsync) used to advance the
        # schedule one interval per tick and re-fire at delay 0 — a
        # cascade of zero-delay events that monopolized the loop it was
        # trying to catch up with.  Draining the whole gap here keeps the
        # offered rate nominal (the slip is still charged to the ops'
        # latency) while the backlog cap bounds the burst: overflow is
        # counted, not queued.
        elapsed = []
        while self._next_arrival <= now:
            elapsed.append(self._next_arrival)
            self._next_arrival += self._interval
        self.sim.schedule(self._next_arrival - now, self._arrival_tick)
        for intended in elapsed:
            if self._busy:
                if len(self._backlog) < self._max_backlog:
                    self._backlog.append(intended)
                else:
                    self.dropped_arrivals += 1
            else:
                self._issue(intended)

    def _issue(self, intended: float) -> None:
        spec = self.workload.next_op()
        self.ops_issued += 1
        self._busy = True
        if spec.kind == "get":
            self._inflight = ("get", spec.key, intended)
            self.client.get(spec.key, self._on_get_reply)
        elif spec.kind == "put":
            self._put_seq += 1
            value = (str(self.client.address), self._put_seq)
            self._inflight = ("put", spec.key, intended)
            self.client.put(spec.key, value, self._on_put_reply)
        elif spec.kind == "ro_tx":
            self._inflight = ("ro_tx", None, intended)
            self.client.ro_tx(spec.keys, self._on_tx_reply)
        else:
            raise ReproError(f"unknown op kind {spec.kind!r}")

    def _completed(self) -> None:
        kind, _, intended = self._inflight
        self._inflight = None
        self._busy = False
        self._record_latency(kind, self.sim.now - intended)
        if self._running and self._backlog:
            self._issue(self._backlog.popleft())

    # ------------------------------------------------------------------
    # Reply handlers
    # ------------------------------------------------------------------
    def _on_get_reply(self, reply: m.GetReply) -> None:
        self._checker_read(reply)
        self._completed()

    def _on_put_reply(self, reply: m.PutReply) -> None:
        self._checker_write(self._inflight[1], reply)
        self._completed()

    def _on_tx_reply(self, reply: m.RoTxReply) -> None:
        self._checker_tx(reply)
        self._completed()


def make_driver(
    sim,
    client,
    workload,
    workload_config,
    rng: random.Random,
    checker: Optional[CausalChecker] = None,
):
    """Build the driver the workload config asks for (closed or open)."""
    if workload_config.arrival == "open":
        return OpenLoopClient(
            sim=sim, client=client, workload=workload,
            rate_ops_s=workload_config.rate_ops_s, rng=rng, checker=checker,
        )
    return ClosedLoopClient(
        sim=sim, client=client, workload=workload,
        think_time_s=workload_config.think_time_s, rng=rng, checker=checker,
    )
