"""The protocol-discovery surface: registry helper + CLI flag."""

from repro.harness.cli import main
from repro.protocols.registry import (
    PROTOCOLS,
    list_protocols,
    protocol_summary,
)


def test_list_protocols_matches_registry():
    names = list_protocols()
    assert names == sorted(PROTOCOLS)
    assert "pocc" in names and "cure" in names and "okapi" in names


def test_protocol_summaries_are_nonempty():
    for name in list_protocols():
        assert protocol_summary(name), f"{name} has no server docstring"


def test_cli_list_protocols_flag(capsys):
    assert main(["--list-protocols"]) == 0
    out = capsys.readouterr().out
    for name in list_protocols():
        assert name in out
