"""The closed-loop client driver.

One driver wraps one protocol client: it issues the next operation from its
workload generator, waits for the reply, "thinks" for the configured time
(25 ms in the paper — "low enough to avoid masking the blocking dynamics
[...] and high enough to fully load the compared systems"), and repeats.

When verification is on, the driver feeds every completed operation to the
online causal-consistency checker.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.common.errors import ReproError
from repro.protocols import messages as m
from repro.protocols.base import CausalClient
from repro.sim.engine import Simulator
from repro.verification.checker import CausalChecker


class ClosedLoopClient:
    """Drives one protocol client in a closed loop."""

    def __init__(
        self,
        sim: Simulator,
        client: CausalClient,
        workload,
        think_time_s: float,
        rng: random.Random,
        checker: Optional[CausalChecker] = None,
    ):
        self.sim = sim
        self.client = client
        self.workload = workload
        self.think_time_s = think_time_s
        self._rng = rng
        self.checker = checker
        self.ops_issued = 0
        self._running = False
        self._put_seq = 0
        self._last_put_key: str | None = None
        self._session_resets_seen = client.session_resets
        if checker is not None:
            checker.register_client(str(client.address))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, stagger_s: float = 0.01) -> None:
        """Begin the loop after a random stagger (desynchronizes clients)."""
        if self._running:
            raise ReproError("driver already started")
        self._running = True
        self.sim.schedule(self._rng.uniform(0.0, stagger_s), self._issue_next)

    def stop(self) -> None:
        """Stop after the in-flight operation (if any) completes."""
        self._running = False

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def _issue_next(self) -> None:
        if not self._running:
            return
        spec = self.workload.next_op()
        self.ops_issued += 1
        if spec.kind == "get":
            self.client.get(spec.key, self._on_get_reply)
        elif spec.kind == "put":
            self._put_seq += 1
            self._last_put_key = spec.key
            value = (str(self.client.address), self._put_seq)
            self.client.put(spec.key, value, self._on_put_reply)
        elif spec.kind == "ro_tx":
            self.client.ro_tx(spec.keys, self._on_tx_reply)
        else:
            raise ReproError(f"unknown op kind {spec.kind!r}")

    def _after_reply(self) -> None:
        if not self._running:
            return
        if self.think_time_s > 0:
            self.sim.schedule(self.think_time_s, self._issue_next)
        else:
            self.sim.schedule(0.0, self._issue_next)

    def _sync_session_resets(self) -> None:
        """Propagate HA session re-initializations to the checker.

        A reset (demotion/fail-over) happens *before* the failed operation
        is re-issued, so it is always observed here before the reply of
        any post-reset operation is recorded.
        """
        if self.client.session_resets != self._session_resets_seen:
            self._session_resets_seen = self.client.session_resets
            if self.checker is not None:
                self.checker.on_session_reset(str(self.client.address),
                                              self.sim.now)

    # ------------------------------------------------------------------
    # Reply handlers
    # ------------------------------------------------------------------
    def _on_get_reply(self, reply: m.GetReply) -> None:
        self._sync_session_resets()
        if self.checker is not None:
            self.checker.on_read(
                str(self.client.address), reply.key,
                (reply.key, reply.sr, reply.ut), self.sim.now,
            )
        self._after_reply()

    def _on_put_reply(self, reply: m.PutReply) -> None:
        self._sync_session_resets()
        if self.checker is not None:
            key = self._last_put_key
            # Closed loop: the reply always matches the last issued PUT.
            self.checker.on_write(
                str(self.client.address), key,
                (key, self.client.m, reply.ut), self.sim.now,
            )
        self._after_reply()

    def _on_tx_reply(self, reply: m.RoTxReply) -> None:
        self._sync_session_resets()
        if self.checker is not None:
            items = [
                (item.key, (item.key, item.sr, item.ut))
                for item in reply.versions
            ]
            self.checker.on_tx_read(
                str(self.client.address), items, self.sim.now
            )
        self._after_reply()
