"""Live-backend chaos hooks: connect backoff and per-channel link faults.

The sim backend injects faults at the network model; the live backend
has no network model, so chaos enters at the two spots every frame
passes through — the sender's connect loop (:class:`ConnectRetryPolicy`)
and :meth:`LiveRuntime._hub_post` (:class:`LinkFault` drop/delay).
"""

import random

import pytest

from repro.common.types import server_address
from repro.runtime.transport import (
    AddressBook,
    ConnectRetryPolicy,
    LinkFault,
    LiveHub,
    LiveRuntime,
    TransportError,
)


# ----------------------------------------------------------------------
# ConnectRetryPolicy
# ----------------------------------------------------------------------
def test_backoff_doubles_and_caps():
    policy = ConnectRetryPolicy()
    delays = [policy.initial_delay_s]
    for _ in range(8):
        delays.append(policy.next_delay(delays[-1]))
    assert delays[:5] == [0.05, 0.1, 0.2, 0.4, 0.8]
    assert all(d <= policy.max_delay_s for d in delays)
    assert delays[-1] == policy.max_delay_s  # sticks at the cap


def test_jitter_stays_inside_band():
    policy = ConnectRetryPolicy()
    rng = random.Random(42)
    low = 0.2 * (1.0 - policy.jitter)
    high = 0.2 * (1.0 + policy.jitter)
    for _ in range(200):
        assert low <= policy.jittered(0.2, rng) <= high


def test_zero_jitter_is_exact():
    policy = ConnectRetryPolicy(jitter=0.0)
    assert policy.jittered(0.3, random.Random(1)) == 0.3


# ----------------------------------------------------------------------
# LinkFault parameters
# ----------------------------------------------------------------------
def test_link_fault_rejects_bad_parameters():
    with pytest.raises(TransportError):
        LinkFault(drop_rate=1.5)
    with pytest.raises(TransportError):
        LinkFault(delay_s=-0.1)


def test_hub_link_fault_registry():
    hub = LiveHub(AddressBook())
    assert hub.link_fault(0, 1) is None  # no faults: zero-cost lookup
    fault = hub.set_link_fault(0, 1, drop_rate=0.5, seed=7)
    assert hub.link_fault(0, 1) is fault
    assert hub.link_fault(1, 0) is None  # directed, not symmetric
    hub.clear_link_fault(0, 1)
    assert hub.link_fault(0, 1) is None


# ----------------------------------------------------------------------
# The _hub_post choke point
# ----------------------------------------------------------------------
class _FakeLoop:
    """A deterministic loop clock recording call_at schedules."""

    def __init__(self):
        self.now = 100.0
        self.scheduled: list[tuple[float, tuple]] = []

    def time(self) -> float:
        return self.now

    def call_at(self, when, fn, *args):
        self.scheduled.append((when, args))


class _FakeHub:
    def __init__(self):
        self.loop = _FakeLoop()
        self.posted: list[tuple] = []
        self.stats = LiveHub(AddressBook()).stats.__class__()
        self._fault: LinkFault | None = None

    def link_fault(self, src_dc, dst_dc):
        return self._fault

    def post_frame(self, dst, frame):
        self.posted.append((dst, frame))


def _runtime(fault: LinkFault | None):
    hub = _FakeHub()
    hub._fault = fault
    return LiveRuntime(hub, server_address(0, 0)), hub


def test_hub_post_without_fault_passes_through():
    runtime, hub = _runtime(None)
    dst = server_address(1, 0)
    runtime._hub_post(dst, b"frame")
    assert hub.posted == [(dst, b"frame")]


def test_hub_post_drops_at_full_rate():
    runtime, hub = _runtime(LinkFault(drop_rate=1.0, seed=3))
    dst = server_address(1, 0)
    for _ in range(5):
        runtime._hub_post(dst, b"frame")
    assert hub.posted == []
    assert hub._fault.dropped == 5
    assert hub.stats.chaos_dropped == 5


def test_hub_post_delay_keeps_fifo_release_order():
    """Equal deadlines have no order guarantee in a timer heap, so the
    release floor must make successive releases *strictly* increasing."""
    runtime, hub = _runtime(LinkFault(delay_s=0.05))
    dst = server_address(1, 0)
    for i in range(4):
        runtime._hub_post(dst, b"f%d" % i)
    releases = [when for when, _ in hub.loop.scheduled]
    assert len(releases) == 4
    assert all(b > a for a, b in zip(releases, releases[1:]))
    assert hub._fault.delayed == 4
    assert hub.stats.chaos_delayed == 4


def test_hub_post_delay_floor_is_per_destination():
    runtime, hub = _runtime(LinkFault(delay_s=0.05))
    dst_a = server_address(1, 0)
    dst_b = server_address(2, 0)
    runtime._hub_post(dst_a, b"a")
    runtime._hub_post(dst_b, b"b")
    (when_a, _), (when_b, _) = hub.loop.scheduled
    # Different channels share no floor: both release at now + delay.
    assert when_a == when_b == pytest.approx(100.05)
