"""The Cure* server: stable-snapshot visibility driven by the GSS.

Differences from POCC, mirroring Section V's comparison:

* remote versions become visible only when their dependency cut is covered
  by the Global Stable Snapshot (local versions are immediately visible);
* a GET therefore *searches* the version chain for the freshest visible
  version, paying CPU per scanned version, and is prone to return old
  values — the staleness of Figure 2b;
* a RO-TX's snapshot boundary is ``max(GSS, RDV_c)`` — stable items — where
  POCC uses ``max(VV, RDV_c)`` — received items (Figure 3d's two orders of
  magnitude staleness gap);
* the stabilization protocol runs continuously (default every 5 ms) and its
  messages compete for the same CPUs as client operations.
"""

from __future__ import annotations

from typing import Any

from repro.clocks.vector import vec_covers, vec_leq, vec_max, vec_min
from repro.common.types import Micros
from repro.metrics.collectors import BLOCK_GSS_WAIT, BLOCK_PUT_CLOCK
from repro.protocols import messages as m
from repro.protocols.base import CausalServer, WaitQueue
from repro.protocols.cure.stabilization import StabilizationMixin
from repro.storage.version import Version


class CureServer(StabilizationMixin, CausalServer):
    """Server ``p^m_n`` running the pessimistic (stable-reads) protocol."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        #: Operations blocked until the GSS covers a client's dependencies.
        self.gss_waiters = WaitQueue(self)
        #: Remote versions received but not yet stable, awaiting their
        #: visibility-latency sample (drained as the GSS advances).
        self._pending_visibility: list[Version] = []
        self.init_stabilization(self._protocol.stabilization_interval_s)

    # ------------------------------------------------------------------
    # Stabilization hooks
    # ------------------------------------------------------------------
    def gss_advanced(self) -> None:
        self._drain_pending_visibility()
        self.gss_waiters.notify()

    def version_received(self, version: Version) -> None:
        """Visibility under Cure* starts when the version is *stable*, not
        when it arrives; park the sample until the GSS covers it."""
        if self._stable(version):
            self.metrics.record_visibility_lag(
                self.rt.now - version.ut / 1e6
            )
            self._trace_visible(version)
        else:
            self._pending_visibility.append(version)

    def _drain_pending_visibility(self) -> None:
        if not self._pending_visibility:
            return
        now = self.rt.now
        still_hidden = []
        for version in self._pending_visibility:
            if self._stable(version):
                self.metrics.record_visibility_lag(now - version.ut / 1e6)
                self._trace_visible(version)
            else:
                still_hidden.append(version)
        self._pending_visibility = still_hidden

    def dispatch(self, msg: Any) -> None:
        if isinstance(msg, m.StabPush):
            self.receive_stab_push(msg)
        elif isinstance(msg, m.StabBroadcast):
            self.receive_stab_broadcast(msg)
        else:
            super().dispatch(msg)

    # ------------------------------------------------------------------
    # Visibility
    # ------------------------------------------------------------------
    def _stable(self, version: Version) -> bool:
        """A version is stable once its commit vector is inside the GSS:
        the DC has received it and everything it may depend on."""
        return vec_leq(version.commit_vector(), self.gss)

    def stable_lag_seconds(self) -> float:
        """Cure*'s stability horizon is the GSS: the gauge reads how far
        its oldest remote entry trails the local clock — the live analogue
        of :meth:`~repro.protocols.cure.stabilization.StabilizationMixin.
        _record_gss_lag` (that one samples on advance; this one on
        scrape)."""
        gss = self.gss
        if len(gss) <= 1:
            return 0.0
        oldest = min(ts for i, ts in enumerate(gss) if i != self.m)
        return max(self.clock.peek_micros() - oldest, 0) / 1e6

    def _count_unmerged(self, chain) -> int:
        """Chain versions not yet stable ("unmerged", Section V-B)."""
        return chain.count_matching(lambda v: not self._stable(v))

    # ------------------------------------------------------------------
    # GET: freshest *stable* version consistent with the client's history
    # ------------------------------------------------------------------
    def handle_get(self, msg: m.GetReq) -> None:
        self.block_or_run(
            BLOCK_GSS_WAIT,
            # The snapshot must cover the client's read dependencies.  RDV
            # entries normally trail the GSS (they were derived from stable
            # reads), so this wait is rare and bounded by stabilization lag.
            lambda: vec_covers(self.gss, msg.rdv, skip=self.m),
            lambda: self._serve_get(msg),
        )

    def _serve_get(self, msg: m.GetReq) -> None:
        sv = vec_max(self.gss, msg.rdv)
        if self.vv[self.m] > sv[self.m]:
            sv[self.m] = self.vv[self.m]  # local items always visible

        def visible(version: Version) -> bool:
            if version.sr == self.m:
                return True
            return vec_leq(version.commit_vector(), sv)

        chain = self.store.chain(msg.key)
        if chain is None:
            self.send(msg.client, self.nil_reply(msg.key, msg.op_id))
            return
        version, scanned = chain.find_freshest(visible)
        if version is None:
            # Nothing visible: possible only when GC has dropped every
            # stable version of the chain (its dv-covered retention floor
            # can have an update time above the GSS).  Serve the head —
            # the GSS wait above means everything the session depends on
            # has been received, so the freshest version is never older
            # than the session's history, while the oldest can be (a slow
            # link can deliver long-superseded remote versions into the
            # bottom of an already-collected chain).
            version = chain.head()
            scanned = len(chain)
        self.metrics.record_get_staleness(
            chain.versions_newer_than(version), self._count_unmerged(chain)
        )
        reply = self.reply_for(version, msg.op_id)
        scan_cost = self._service.chain_scan_per_version_s * scanned
        self.submit_local(scan_cost, self.send, msg.client, reply)

    # ------------------------------------------------------------------
    # PUT: stamp above all dependencies, install locally, replicate
    # ------------------------------------------------------------------
    def handle_put(self, msg: m.PutReq) -> None:
        # Same clock discipline as Algorithm 2 line 7: the new version's
        # timestamp must dominate its dependency cut.  No dependency wait:
        # under Cure the dependencies of a client's history are already
        # stable (hence present) in the local DC.
        max_dep: Micros = max(msg.dv, default=0)
        self.metrics.record_block_attempt(BLOCK_PUT_CLOCK)
        if self.clock.peek_micros() > max_dep:
            self._apply_put(msg)
            return
        blocked_at = self.rt.now

        def resume() -> None:
            self.metrics.record_block_started(BLOCK_PUT_CLOCK, blocked_at,
                                              self.rt.now - blocked_at)
            self.submit_local(self._service.resume_s, self._apply_put, msg)

        self.wait_for_clock(max_dep, resume)

    def _apply_put(self, msg: m.PutReq) -> None:
        version = self.create_version(msg.key, msg.value, tuple(msg.dv))
        self.send(msg.client, m.PutReply(ut=version.ut, op_id=msg.op_id))

    # ------------------------------------------------------------------
    # RO-TX: snapshot bounded by *stable* items
    # ------------------------------------------------------------------
    def handle_ro_tx(self, msg: m.RoTxReq) -> None:
        tv = vec_max(self.gss, msg.rdv)
        if self.vv[self.m] > tv[self.m]:
            tv[self.m] = self.vv[self.m]  # local cut: coordinator's clock
        self.coordinate_tx(msg, tv)

    def handle_slice(self, msg: m.SliceReq) -> None:
        self.block_or_run(
            BLOCK_GSS_WAIT,
            # Remote entries of the snapshot must be stable on this node
            # before it can serve a consistent cut.
            lambda: vec_covers(self.gss, msg.tv, skip=self.m),
            lambda: self._serve_slice(msg),
        )

    def _serve_slice(self, msg: m.SliceReq) -> None:
        tv = msg.tv

        def visible(version: Version) -> bool:
            if version.sr == self.m:
                return version.ut <= tv[self.m]
            return vec_leq(version.commit_vector(), tv)

        replies = []
        scanned_total = 0
        for key in msg.keys:
            chain = self.store.chain(key)
            if chain is None:
                replies.append(self.nil_reply(key, 0))
                continue
            version, scanned = chain.find_freshest(visible)
            scanned_total += scanned
            if version is None:
                version = chain.head()  # see _serve_get
            self.metrics.record_tx_staleness(
                chain.versions_newer_than(version),
                self._count_unmerged(chain),
            )
            replies.append(self.reply_for(version, 0))
        response = m.SliceResp(versions=replies, tx_id=msg.tx_id)
        scan_cost = self._service.chain_scan_per_version_s * scanned_total
        self.submit_local(scan_cost, self.send_slice_resp, msg, response)

    # ------------------------------------------------------------------
    # Garbage collection: never drop the freshest *stable* version
    # ------------------------------------------------------------------
    def _gc_report_vector(self) -> list[Micros]:
        """Cure*'s GC must retain versions a stable read may still return,
        so the report is additionally capped by the GSS."""
        vec = vec_min(self.vv, self.gss)
        for state in self._active_tx.values():
            tv = state.get("tv")
            if tv is not None:
                vec = vec_min(vec, tv)
        return vec
