"""Unit tests for the WAL, snapshots and the partition recovery path."""

import os

import pytest

from repro.common.config import PersistenceConfig
from repro.common.types import server_address
from repro.persistence.manager import (
    PartitionDurability,
    partition_dirname,
    recover_directory,
)
from repro.persistence.snapshot import (
    load_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.persistence.wal import (
    WalError,
    WriteAheadLog,
    list_segments,
    read_segment,
    segment_name,
)
from repro.protocols.cops import CopsVersion
from repro.protocols.messages import Dependency
from repro.storage.version import Version


def version(key="k", sr=0, ut=100, value=("c", 1), num_dcs=2):
    return Version(key=key, value=value, sr=sr, ut=ut, dv=(0,) * num_dcs)


def cops_version(key="k", sr=0, ut=100, visible=False):
    return CopsVersion(key=key, value=("c", 1), sr=sr, ut=ut,
                       deps=(Dependency(key="d", ut=5, sr=1),),
                       num_dcs=2, visible=visible)


# ----------------------------------------------------------------------
# WAL segments
# ----------------------------------------------------------------------
def test_wal_appends_and_reads_back(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    originals = [version(key=f"k{i}", ut=10 + i) for i in range(5)]
    for v in originals:
        wal.append_version(v)
    wal.close()

    state = recover_directory(tmp_path)
    assert state.had_state
    assert state.wal_records == 5
    assert sorted(v.key for v in state.versions) == sorted(
        v.key for v in originals
    )
    # Versions round-trip exactly (value tuples included).
    by_key = {v.key: v for v in state.versions}
    for original in originals:
        got = by_key[original.key]
        assert (got.sr, got.ut, got.value, got.dv) == (
            original.sr, original.ut, original.value, original.dv
        )


def test_wal_reopen_appends_to_the_last_segment(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    wal.append_version(version(ut=1))
    wal.close()
    wal = WriteAheadLog(tmp_path, fsync="always")
    wal.append_version(version(ut=2))
    wal.close()
    assert len(list_segments(tmp_path)) == 1
    assert recover_directory(tmp_path).wal_records == 2


def test_wal_roll_starts_a_new_segment(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    wal.append_version(version(ut=1))
    new_seq = wal.roll()
    wal.append_version(version(ut=2))
    wal.close()
    segments = list_segments(tmp_path)
    assert [seq for seq, _ in segments] == [new_seq - 1, new_seq]
    assert recover_directory(tmp_path).wal_records == 2


def test_torn_tail_is_truncated_not_fatal(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    wal.append_version(version(ut=1))
    wal.append_version(version(ut=2))
    path = wal.path
    wal.close()
    # Tear the final record: drop its last 3 bytes.
    data = path.read_bytes()
    path.write_bytes(data[:-3])

    state = recover_directory(tmp_path)
    assert state.wal_records == 1
    assert state.torn_bytes_truncated > 0
    assert [v.ut for v in state.versions] == [1]
    # The truncation is physical: reopening appends after record 1.
    wal = WriteAheadLog(tmp_path, fsync="always")
    wal.append_version(version(ut=3))
    wal.close()
    assert sorted(v.ut for v in recover_directory(tmp_path).versions) \
        == [1, 3]


def test_torn_frame_in_a_non_final_segment_is_corruption(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    wal.append_version(version(ut=1))
    first = wal.path
    wal.roll()
    wal.append_version(version(ut=2))
    wal.close()
    first.write_bytes(first.read_bytes()[:-2])
    with pytest.raises(WalError):
        recover_directory(tmp_path)


def test_garbage_in_a_complete_frame_is_corruption(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    wal.append_version(version(ut=1))
    path = wal.path
    wal.close()
    # A syntactically complete frame whose payload is garbage.
    payload = b"\x00garbage-not-a-tree"
    path.write_bytes(path.read_bytes()
                     + len(payload).to_bytes(4, "big") + payload)
    with pytest.raises(WalError):
        recover_directory(tmp_path)


def test_segment_header_mismatch_is_corruption(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    wal.append_version(version(ut=1))
    path = wal.path
    wal.close()
    renamed = tmp_path / segment_name(7)
    os.rename(path, renamed)
    with pytest.raises(WalError):
        recover_directory(tmp_path)


def test_fsync_modes_all_persist_on_close(tmp_path):
    for mode in ("always", "interval", "off"):
        directory = tmp_path / mode
        wal = WriteAheadLog(directory, fsync=mode, fsync_interval_s=999.0)
        for i in range(3):
            wal.append_version(version(ut=i + 1))
        wal.close()
        assert recover_directory(directory).wal_records == 3, mode


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def test_snapshot_round_trip(tmp_path):
    versions = [version(key=f"k{i}", ut=i + 1) for i in range(4)]
    write_snapshot(tmp_path, versions, vv=[9, 4], wal_seq=3, num_dcs=2)
    loaded = load_snapshot(snapshot_path(tmp_path))
    assert loaded.vv == [9, 4]
    assert loaded.wal_seq == 3
    assert loaded.num_dcs == 2
    assert sorted(v.ut for v in loaded.versions) == [1, 2, 3, 4]


def test_snapshot_footer_mismatch_is_corruption(tmp_path):
    write_snapshot(tmp_path, [version()], vv=[1, 1], wal_seq=1, num_dcs=2)
    path = snapshot_path(tmp_path)
    from repro.runtime import codec
    frames = []
    decoder = codec.FrameDecoder()
    frames = decoder.feed(path.read_bytes())
    # Re-write without the footer.
    path.write_bytes(b"".join(codec.encode_frame(f) for f in frames[:-1]))
    with pytest.raises(WalError):
        load_snapshot(path)


# ----------------------------------------------------------------------
# PartitionDurability: the combined recovery path
# ----------------------------------------------------------------------
def _durability(tmp_path, address, **overrides):
    config = PersistenceConfig(enabled=True, data_dir=str(tmp_path),
                               fsync="always", **overrides)
    return PartitionDurability(tmp_path, address, config)


def test_snapshot_plus_tail_replay_merges_by_identity(tmp_path):
    address = server_address(0, 0)
    dur = _durability(tmp_path, address)
    dur.recover()
    early = [version(key=f"k{i}", ut=i + 1) for i in range(3)]
    for v in early:
        dur.append_version(v)

    class StoreStub:
        def all_versions(self):
            return iter(early)

    dur.snapshot(StoreStub(), vv=[3, 0], num_dcs=2)
    late = version(key="k9", ut=9)
    dur.append_version(late)
    dur.close()

    # Old segments were truncated away; snapshot + tail reconstruct all.
    directory = tmp_path / partition_dirname(address)
    state = recover_directory(directory)
    assert state.snapshot_versions == 3
    assert state.wal_records == 1
    assert sorted(v.ut for v in state.versions) == [1, 2, 3, 9]
    assert state.vv == [3, 0]


def test_wal_overlap_with_snapshot_does_not_duplicate(tmp_path):
    """Crash between snapshot publish and segment deletion: the log tail
    still carries records the snapshot covers — replay must merge."""
    address = server_address(0, 1)
    dur = _durability(tmp_path, address)
    dur.recover()
    v1 = version(key="a", ut=1)
    dur.append_version(v1)

    class StoreStub:
        def all_versions(self):
            return iter([v1])

    dur.snapshot(StoreStub(), vv=[1, 0], num_dcs=2)
    # Simulate the overlap: append the same identity again post-snapshot.
    dur.append_version(v1)
    dur.close()
    state = recover_directory(tmp_path / partition_dirname(address))
    assert len(state.versions) == 1


def test_later_record_wins_for_cops_visibility_flip(tmp_path):
    address = server_address(1, 0)
    dur = _durability(tmp_path, address)
    dur.recover()
    hidden = cops_version(visible=False)
    dur.append_version(hidden)
    flipped = cops_version(visible=True)
    dur.append_version(flipped)
    dur.close()
    state = recover_directory(tmp_path / partition_dirname(address))
    assert len(state.versions) == 1
    assert state.versions[0].visible is True
    assert state.versions[0].deps == hidden.deps


def test_fresh_directory_reports_no_state(tmp_path):
    dur = _durability(tmp_path, server_address(0, 0))
    state = dur.recover()
    assert not state.had_state
    assert not state.prior_boot
    assert state.versions == []
    dur.close()


def test_header_only_segment_counts_as_prior_boot(tmp_path):
    """A server killed before its first record became durable (fsync
    interval/off) leaves only a header-only segment.  had_state stays
    False (nothing to restore) but prior_boot must be True — it is the
    replication-catch-up trigger, and that server served pre-crash
    reads."""
    address = server_address(0, 0)
    dur = _durability(tmp_path, address)
    dur.recover()
    dur.close()  # only the segment header was ever written

    again = _durability(tmp_path, address)
    state = again.recover()
    assert not state.had_state
    assert state.prior_boot
    again.close()


def test_recover_twice_is_an_error(tmp_path):
    dur = _durability(tmp_path, server_address(0, 0))
    dur.recover()
    with pytest.raises(WalError):
        dur.recover()
    dur.close()


def test_append_after_close_is_dropped_not_fatal(tmp_path):
    dur = _durability(tmp_path, server_address(0, 0))
    dur.recover()
    dur.close()
    dur.append_version(version())  # shutdown race: must not raise


def test_max_ut_by_source(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    wal.append_version(version(key="a", sr=0, ut=5))
    wal.append_version(version(key="b", sr=1, ut=9))
    wal.append_version(version(key="c", sr=0, ut=7))
    wal.close()
    state = recover_directory(tmp_path)
    assert state.max_ut(0) == 7
    assert state.max_ut(1) == 9
    assert state.max_ut(2) == 0


# ----------------------------------------------------------------------
# Group commit
# ----------------------------------------------------------------------
class ManualScheduler:
    """Collects scheduled callbacks; the test decides when the 'tick'
    ends (what loop.call_soon does for the live backend)."""

    def __init__(self):
        self.pending = []

    def __call__(self, fn):
        self.pending.append(fn)

    def run_all(self):
        pending, self.pending = self.pending, []
        for fn in pending:
            fn()


def test_group_commit_coalesces_a_tick_into_one_sync(tmp_path):
    from repro.persistence.wal import GroupCommit

    wal = WriteAheadLog(tmp_path, fsync="always")
    header_syncs = wal.stats.syncs
    scheduler = ManualScheduler()
    group = GroupCommit(wal, scheduler)
    fired = []
    batch_ids = {group.append(("v", version(key=f"k{i}", ut=i + 1)))
                 for i in range(5)}
    group.notify_durable(fired.append)
    assert batch_ids == {1}, "same tick -> one batch"
    assert group.pending_records == 5
    assert wal.stats.records_appended == 0, "nothing written before commit"
    assert fired == [], "callbacks must wait for the sync"

    scheduler.run_all()  # the tick ends: one write + one fsync
    assert group.pending_records == 0
    assert wal.stats.records_appended == 5
    assert wal.stats.group_commits == 1
    assert wal.stats.max_batch_records == 5
    assert wal.stats.syncs == header_syncs + 1
    assert fired == [1]

    # The next tick opens a new batch with a higher id.
    assert group.append(("v", version(key="z", ut=99))) == 2
    scheduler.run_all()
    assert group.committed_batch == 2
    wal.close()
    state = recover_directory(tmp_path)
    assert len(state.versions) == 6


def test_group_commit_batches_recover_identically_to_singles(tmp_path):
    from repro.persistence.wal import GroupCommit

    versions = [version(key=f"k{i}", ut=i + 1, sr=i % 2) for i in range(7)]
    single_dir = tmp_path / "single"
    batched_dir = tmp_path / "batched"

    wal = WriteAheadLog(single_dir, fsync="always")
    for v in versions:
        wal.append_version(v)
    wal.close()

    wal = WriteAheadLog(batched_dir, fsync="always")
    scheduler = ManualScheduler()
    group = GroupCommit(wal, scheduler)
    for v in versions[:4]:
        group.append(("v", v))
    scheduler.run_all()
    for v in versions[4:]:
        group.append(("v", v))
    scheduler.run_all()
    wal.close()

    # Byte-for-byte the same segment: batching is invisible on disk.
    (_, single_seg), = list_segments(single_dir)
    (_, batched_seg), = list_segments(batched_dir)
    assert single_seg.read_bytes() == batched_seg.read_bytes()


def test_uncommitted_batch_is_lost_and_unacknowledged(tmp_path):
    """The crash window group commit introduces: records buffered but not
    yet committed vanish with the process — allowed *because* their
    acknowledgements (the notify_durable callbacks) never fired."""
    from repro.persistence.wal import GroupCommit

    wal = WriteAheadLog(tmp_path, fsync="always")
    scheduler = ManualScheduler()
    group = GroupCommit(wal, scheduler)
    fired = []
    group.append(("v", version(key="durable", ut=1)))
    group.notify_durable(fired.append)
    scheduler.run_all()
    assert fired == [1]

    group.append(("v", version(key="lost", ut=2)))
    group.notify_durable(fired.append)
    # SIGKILL before the scheduled commit runs: drop the buffer on the
    # floor, never close the WAL cleanly.
    del group, wal

    state = recover_directory(tmp_path)
    assert {v.key for v in state.versions} == {"durable"}
    assert fired == [1], "the lost record's ack callback must never fire"


def test_group_commit_flush_commits_pending_and_syncs(tmp_path):
    from repro.persistence.wal import GroupCommit

    wal = WriteAheadLog(tmp_path, fsync="off")
    scheduler = ManualScheduler()
    group = GroupCommit(wal, scheduler)
    group.append(("v", version(key="a", ut=1)))
    group.flush()  # shutdown path: no tick will come
    wal.close()
    state = recover_directory(tmp_path)
    assert {v.key for v in state.versions} == {"a"}
    # The scheduled commit that never ran is a harmless no-op.
    scheduler.run_all()


def test_group_commit_append_racing_close_raises(tmp_path):
    """A record appended but never covered by the shutdown flush must not
    vanish silently: its commit raises instead of pretending the record
    was logged (recovery cannot catch this — the clean WAL prefix looks
    complete — so the only honest signal is a loud one here)."""
    from repro.persistence.wal import GroupCommit

    wal = WriteAheadLog(tmp_path, fsync="always")
    scheduler = ManualScheduler()
    group = GroupCommit(wal, scheduler)
    group.append(("v", version(key="straggler", ut=1)))
    fired = []
    group.notify_durable(fired.append)
    wal.close()  # shutdown closed the log without flushing the batch
    with pytest.raises(WalError, match="appended after the WAL was closed"):
        scheduler.run_all()
    assert group.committed_batch == 0
    assert fired == [], "a dropped record's ack must never be released"


def test_group_commit_shutdown_flush_covers_scheduled_commit(tmp_path):
    """The normal shutdown ordering — flush, then close — leaves the
    still-scheduled commit a harmless no-op, not an error: every record
    was covered by the flush."""
    from repro.persistence.wal import GroupCommit

    wal = WriteAheadLog(tmp_path, fsync="always")
    scheduler = ManualScheduler()
    group = GroupCommit(wal, scheduler)
    group.append(("v", version(key="covered", ut=1)))
    group.flush()
    wal.close()
    scheduler.run_all()  # must not raise: the flush already committed
    assert group.committed_batch == 1
    state = recover_directory(tmp_path)
    assert {v.key for v in state.versions} == {"covered"}


def test_durability_facade_defers_acks_only_for_fsync_always(tmp_path):
    address = server_address(0, 0)
    for mode, expect_deferral in (("always", True), ("interval", False),
                                  ("off", False)):
        directory = tmp_path / mode
        dur = PartitionDurability(
            directory, address,
            PersistenceConfig(enabled=True, data_dir=str(directory),
                              fsync=mode),
        )
        dur.recover()
        scheduler = ManualScheduler()
        dur.enable_group_commit(scheduler)
        batch = dur.append_version(version(key="k", ut=1))
        if expect_deferral:
            assert batch is not None, mode
        else:
            assert batch is None, mode
        scheduler.run_all()
        dur.close()
        state = recover_directory(dur.directory)
        assert {v.key for v in state.versions} == {"k"}, mode


def test_durability_facade_without_group_commit_stays_synchronous(tmp_path):
    dur = _durability(tmp_path, server_address(0, 0))
    dur.recover()
    assert dur.append_version(version(key="k", ut=1)) is None
    # Synchronous mode: the record is on disk before append returns.
    state = recover_directory(dur.directory, truncate=False,
                              delete_covered=False)
    assert {v.key for v in state.versions} == {"k"}
    dur.close()


# ----------------------------------------------------------------------
# Injected disk faults (chaos: stalling / dying devices)
# ----------------------------------------------------------------------
def test_disk_fault_stalls_every_sync(tmp_path):
    from repro.persistence.wal import DiskFault

    wal = WriteAheadLog(tmp_path, fsync="always")
    fault = DiskFault(sync_delay_s=0.001)
    wal.disk_fault = fault
    for i in range(3):
        wal.append_version(version(key=f"k{i}"))
    assert fault.stalls == 3  # one stall per fsync under fsync=always
    wal.disk_fault = None
    wal.append_version(version(key="k-after"))
    assert fault.stalls == 3  # detached: no further stalls
    wal.close()
    assert recover_directory(tmp_path).wal_records == 4


def test_disk_fault_fails_syncs_with_eio(tmp_path):
    from repro.persistence.wal import DiskFault

    wal = WriteAheadLog(tmp_path, fsync="always")
    fault = DiskFault(fail_syncs=2)
    wal.disk_fault = fault
    for _ in range(2):
        with pytest.raises(OSError) as excinfo:
            wal.append_version(version(key="doomed"))
        assert excinfo.value.errno == 5
    assert fault.failures == 2
    # The budget is spent: the device "recovers" and writes flow again.
    wal.append_version(version(key="survivor"))
    wal.close()
    state = recover_directory(tmp_path)
    assert "survivor" in {v.key for v in state.versions}
