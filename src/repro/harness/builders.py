"""Construct a runnable simulated deployment from a configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import ExperimentConfig
from repro.common.types import Address
from repro.cluster.node import SimNode
from repro.cluster.ring import initial_view
from repro.cluster.topology import KeyPools, Topology
from repro.clocks.physical import PhysicalClock
from repro.harness import seeds
from repro.metrics.collectors import MetricsRegistry
from repro.protocols.base import CausalClient, CausalServer
from repro.protocols.registry import client_class, server_class
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector
from repro.sim.latency import GeoLatencyModel
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.verification.checker import CausalChecker
from repro.workload.driver import ClosedLoopClient, make_driver
from repro.workload.generators import make_workload


@dataclass(slots=True)
class BuiltCluster:
    """Everything needed to run (and inspect) one experiment."""

    config: ExperimentConfig
    sim: Simulator
    network: Network
    topology: Topology
    pools: KeyPools
    metrics: MetricsRegistry
    servers: dict[Address, CausalServer]
    clients: list[CausalClient]
    drivers: list[ClosedLoopClient]
    faults: FaultInjector
    rng: RngRegistry
    checker: CausalChecker | None = None
    cpu_snapshot: dict[Address, float] = field(default_factory=dict)

    def start_drivers(self, stagger_s: float | None = None) -> None:
        if stagger_s is None:
            stagger_s = min(self.config.workload.think_time_s or 0.01, 0.02)
        for driver in self.drivers:
            driver.start(stagger_s=stagger_s)

    def stop_drivers(self) -> None:
        for driver in self.drivers:
            driver.stop()


def build_cluster(config: ExperimentConfig) -> BuiltCluster:
    """Instantiate simulator, geo network, servers, clients and drivers."""
    config.validate()
    cluster = config.cluster
    sim = Simulator()
    rng = RngRegistry(config.seed)
    latency = GeoLatencyModel(cluster.latency, rng.stream(seeds.LATENCY))
    network = Network(sim, latency)
    view = (initial_view(cluster.num_partitions,
                         cluster.membership.initial_members,
                         cluster.membership.vnodes)
            if cluster.membership.enabled else None)
    topology = Topology(cluster.num_dcs, cluster.num_partitions, view)
    pools = KeyPools(topology, cluster.keys_per_partition)
    metrics = MetricsRegistry()
    checker = CausalChecker() if config.verify else None

    server_cls = server_class(cluster.protocol)
    servers: dict[Address, CausalServer] = {}
    server_clocks: dict[Address, PhysicalClock] = {}
    for address in topology.all_servers():
        clock = PhysicalClock.sample(
            sim, cluster.clocks, rng.stream(seeds.clock_stream(address))
        )
        server_clocks[address] = clock
        adapter = SimNode(sim, network, address,
                          cores=cluster.cores_per_node)
        server = server_cls(adapter, clock, topology, cluster, metrics)
        server.store.preload(pools.pool(address.partition),
                             num_dcs=cluster.num_dcs)
        servers[address] = server

    client_cls = client_class(cluster.protocol)
    clients: list[CausalClient] = []
    drivers: list[ClosedLoopClient] = []
    workload_cfg = config.workload
    for dc in range(cluster.num_dcs):
        for partition in range(cluster.num_partitions):
            for index in range(workload_cfg.clients_per_partition):
                address = topology.client(dc, partition, index)
                clock = PhysicalClock.sample(
                    sim, cluster.clocks,
                    rng.stream(seeds.clock_stream(address)),
                )
                adapter = SimNode(sim, network, address, cores=1)
                client = client_cls(adapter, clock, topology,
                                    cluster, metrics)
                workload = make_workload(
                    workload_cfg, pools, rng.stream(seeds.workload_stream(address))
                )
                # Closed loop by default; workload.arrival == "open"
                # builds the target-rate open-loop driver (same on both
                # backends — the drivers only use schedule/now).
                driver = make_driver(
                    sim=sim,
                    client=client,
                    workload=workload,
                    workload_config=workload_cfg,
                    rng=rng.stream(seeds.driver_stream(address)),
                    checker=checker,
                )
                clients.append(client)
                drivers.append(driver)

    # Full-capability injector: latency for slow links, the server
    # clocks for skew spikes, a dedicated RNG stream for lossy drops
    # (never read unless a loss rate is actually set).
    faults = FaultInjector(sim, network, latency=latency,
                           clocks=server_clocks,
                           rng=rng.stream(seeds.FAULTS))
    return BuiltCluster(
        config=config,
        sim=sim,
        network=network,
        topology=topology,
        pools=pools,
        metrics=metrics,
        servers=servers,
        clients=clients,
        drivers=drivers,
        faults=faults,
        rng=rng,
        checker=checker,
    )
