"""``repro-supervise``: process-per-partition-server deployments.

A single ``repro-serve`` process multiplexes every hosted server onto
one event loop — and one core.  The supervisor turns the same deployment
description into a *tree* of OS processes: one ``repro-serve`` child per
partition server (optionally one per DC, or a single named server), all
deriving the shared deterministic port map from the same config file, so
the children need no runtime coordination at all.

Responsibilities, in the order they matter:

* **spawn** one child per supervised server, each logging to its own
  file under ``--log-dir`` (``dcD-pP.log``), and publish the placement
  as ``children.json`` (label, pid, log, pinned CPU) so harnesses and
  humans can find the children without parsing stderr;
* **pin** children round-robin across the host's CPUs with
  ``os.sched_setaffinity`` when ``--pin-cpus`` is given (recorded per
  child; a no-op where the platform has no affinity API);
* **fan out SIGTERM**: the supervisor's own SIGTERM/SIGINT terminates
  every child, which runs ``repro-serve``'s graceful shutdown (WAL flush
  before transport teardown) — exit 0 iff every child exited 0;
* **propagate failure**: the first child that dies with a non-zero
  status (or a signal — a SIGKILLed child reports ``128 + signum``)
  stops the remaining children and becomes the supervisor's own exit
  status.  A supervised deployment never half-runs silently;
* **die together**: children arm ``PR_SET_PDEATHSIG`` (Linux), so a
  SIGKILLed *supervisor* takes its children down too — the chaos
  kill/restart gate runs its victim through the supervisor and the
  restart still finds the ports free and the WAL recoverable.

The supervised cluster is driven externally: ``repro-bench-live
--external-servers`` (single- or multi-process via
``--driver-processes``) against the same config and base port.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import signal
import sys
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.cluster.topology import Topology
from repro.runtime.cli import (
    add_deployment_args,
    config_from_args,
    warn_slow_serializer,
)
from repro.runtime.configfile import save_experiment_config

#: How long the SIGTERM fan-out waits before escalating to SIGKILL.
TERM_TIMEOUT_S = 15.0


def subprocess_env() -> dict[str, str]:
    """The child environment: the caller's, with this source tree on
    ``PYTHONPATH`` so ``python -m repro...`` resolves in the children
    even when the package is not installed."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (src_root + os.pathsep + existing
                             if existing else src_root)
    return env


def _die_with_parent() -> None:  # pragma: no cover — runs in the child
    """PR_SET_PDEATHSIG: the kernel SIGKILLs this child if its parent
    (the supervisor) dies first, however the supervisor died.  Without
    this, a SIGKILLed supervisor would orphan children that keep the
    deterministic ports bound and block any restart."""
    try:
        import ctypes
        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGKILL, 0, 0, 0)  # PR_SET_PDEATHSIG = 1
    except Exception:
        pass  # non-Linux: best effort only


@dataclass(slots=True)
class ChildStatus:
    """One supervised ``repro-serve`` process, as reported in
    ``children.json`` and the exit summary."""

    dc: int
    partition: int
    pid: int
    log_path: str
    cpu: int | None = None
    returncode: int | None = None
    #: The child's /metrics port from the deterministic port map (None
    #: when telemetry is off) — ``repro-top --children`` reads this.
    metrics_port: int | None = None

    @property
    def label(self) -> str:
        return f"dc{self.dc}-p{self.partition}"


class Supervisor:
    """Spawn, pin, watch and reap one ``repro-serve`` per server."""

    def __init__(
        self,
        config_path: Path,
        addresses,
        host: str,
        base_port: int,
        log_dir: Path,
        pin_cpus: bool = False,
        duration: float | None = None,
        metrics_ports: dict | None = None,
    ):
        self.config_path = config_path
        self.addresses = list(addresses)
        self.host = host
        self.base_port = base_port
        self.log_dir = log_dir
        self.pin_cpus = pin_cpus
        self.duration = duration
        #: Address -> /metrics port (empty when telemetry is off); the
        #: children derive the same map from the shared config, this
        #: just records it in children.json for scrapers.
        self.metrics_ports = metrics_ports or {}
        self.statuses: list[ChildStatus] = []

    def _command(self, address) -> list[str]:
        command = [
            sys.executable, "-m", "repro.runtime.serve",
            "--config", str(self.config_path),
            "--dc", str(address.dc), "--partition", str(address.partition),
            "--host", self.host, "--base-port", str(self.base_port),
        ]
        if self.duration is not None:
            command += ["--duration", str(self.duration)]
        return command

    def _write_children_file(self) -> None:
        payload = [asdict(status) for status in self.statuses]
        path = self.log_dir / "children.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    def _pin(self, pid: int, index: int) -> int | None:
        if not self.pin_cpus or not hasattr(os, "sched_setaffinity"):
            return None
        cpu = index % (os.cpu_count() or 1)
        try:
            os.sched_setaffinity(pid, {cpu})
        except OSError:
            return None  # the child may already be gone; not a gate
        return cpu

    async def _spawn_all(self) -> list:
        procs = []
        for index, address in enumerate(self.addresses):
            log_path = self.log_dir / (
                f"dc{address.dc}-p{address.partition}.log"
            )
            log = open(log_path, "ab")
            try:
                proc = await asyncio.create_subprocess_exec(
                    *self._command(address),
                    stdout=log, stderr=log,
                    env=subprocess_env(),
                    preexec_fn=_die_with_parent,
                )
            finally:
                log.close()  # the child holds its own descriptor
            status = ChildStatus(
                dc=address.dc, partition=address.partition,
                pid=proc.pid, log_path=str(log_path),
                cpu=self._pin(proc.pid, index),
                metrics_port=self.metrics_ports.get(address),
            )
            self.statuses.append(status)
            procs.append((proc, status))
            pin = f", cpu {status.cpu}" if status.cpu is not None else ""
            print(f"  spawned {status.label}: pid {proc.pid}{pin}",
                  file=sys.stderr)
        return procs

    async def run(self) -> int:
        """Spawn the tree, wait it out, aggregate, return the exit code."""
        procs = await self._spawn_all()
        self._write_children_file()
        shutdown_requested = False

        def request_shutdown() -> None:
            nonlocal shutdown_requested
            shutdown_requested = True
            for proc, _ in procs:
                if proc.returncode is None:
                    with contextlib.suppress(ProcessLookupError):
                        proc.terminate()

        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, request_shutdown)

        failure_code = 0
        pending = {
            asyncio.ensure_future(proc.wait()): (proc, status)
            for proc, status in procs
        }
        while pending:
            timeout = TERM_TIMEOUT_S if shutdown_requested else None
            done, _ = await asyncio.wait(
                pending, timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if not done:
                # The drain timed out: escalate the stragglers.
                for proc, status in pending.values():
                    print(f"  {status.label} ignored SIGTERM for "
                          f"{TERM_TIMEOUT_S}s; killing", file=sys.stderr)
                    with contextlib.suppress(ProcessLookupError):
                        proc.kill()
                if failure_code == 0:
                    failure_code = 1
                continue
            for task in done:
                proc, status = pending.pop(task)
                code = proc.returncode
                status.returncode = code
                if code != 0:
                    mapped = code if code > 0 else 128 - code
                    if failure_code == 0:
                        failure_code = mapped
                    if not shutdown_requested:
                        print(f"  {status.label} (pid {status.pid}) died "
                              f"with status {code}; stopping the rest",
                              file=sys.stderr)
                        request_shutdown()

        self._write_children_file()  # now with exit codes
        self._print_summary(failure_code)
        return failure_code

    def _print_summary(self, failure_code: int) -> None:
        verdict = "clean" if failure_code == 0 else f"exit {failure_code}"
        print(f"supervised {len(self.statuses)} server(s): {verdict}",
              file=sys.stderr)
        for status in self.statuses:
            tail = _last_log_line(status.log_path)
            pin = f", cpu {status.cpu}" if status.cpu is not None else ""
            line = (f"  {status.label}: pid {status.pid}, "
                    f"exit {status.returncode}{pin}")
            if tail:
                line += f" — {tail}"
            print(line, file=sys.stderr)


def _last_log_line(path: str) -> str:
    try:
        data = Path(path).read_bytes()
    except OSError:
        return ""
    lines = [line for line in data.decode("utf-8", "replace").splitlines()
             if line.strip()]
    return lines[-1] if lines else ""


def _supervised_addresses(args, topology: Topology):
    if args.dc is None:
        if args.partition is not None:
            raise SystemExit("--partition requires --dc")
        return list(topology.all_servers())
    if args.partition is not None:
        return [topology.server(args.dc, args.partition)]
    # Bounds-check the DC loudly (mirrors repro-serve).
    topology.server(args.dc, 0)
    return list(topology.dc_servers(args.dc))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-supervise",
        description="Run one repro-serve process per partition server of "
                    "a live deployment, with SIGTERM fan-out, failure "
                    "propagation and optional CPU pinning.",
    )
    add_deployment_args(parser)
    parser.add_argument("--dc", type=int, metavar="D",
                        help="supervise only servers of this DC "
                             "(with --partition: only that one server)")
    parser.add_argument("--partition", type=int, metavar="P",
                        help="supervise only this partition "
                             "(requires --dc)")
    parser.add_argument("--duration", type=float, metavar="S",
                        help="children serve for S seconds then exit "
                             "cleanly (default: until SIGINT/SIGTERM)")
    parser.add_argument("--log-dir", metavar="PATH",
                        help="per-child logs, the effective cluster.json "
                             "and children.json land here (default: a "
                             "fresh temp dir, printed at startup)")
    parser.add_argument("--pin-cpus", action="store_true",
                        help="pin children round-robin across CPUs with "
                             "sched_setaffinity (recorded per child; "
                             "no-op where unsupported)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    warn_slow_serializer()
    if args.base_port == 0:
        raise SystemExit(
            "repro-supervise needs a fixed --base-port: the children "
            "derive the shared port map independently, which ephemeral "
            "ports cannot provide"
        )
    config = config_from_args(args)
    topology = Topology(config.cluster.num_dcs,
                        config.cluster.num_partitions)
    addresses = _supervised_addresses(args, topology)
    log_dir = (Path(args.log_dir) if args.log_dir
               else Path(tempfile.mkdtemp(prefix="repro-supervise-")))
    log_dir.mkdir(parents=True, exist_ok=True)
    # Children boot from the *effective* config (file + CLI overrides),
    # not the caller's file: every override must reach every child.
    config_path = log_dir / "cluster.json"
    save_experiment_config(config, str(config_path))
    print(f"supervising {len(addresses)} server(s); logs in {log_dir}",
          file=sys.stderr)
    telemetry = config.cluster.telemetry
    metrics_ports = {}
    if telemetry.enabled and telemetry.metrics_base_port:
        from repro.runtime.transport import metrics_port_map
        metrics_ports = {
            address: entry[1]
            for address, entry in metrics_port_map(
                topology, telemetry.metrics_base_port, host=args.host
            ).items()
        }
    supervisor = Supervisor(
        config_path, addresses, args.host, args.base_port, log_dir,
        pin_cpus=args.pin_cpus, duration=args.duration,
        metrics_ports=metrics_ports,
    )
    return asyncio.run(supervisor.run())


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
