"""Event-loop selection for the live backend.

uvloop (the ``fast`` extra) roughly doubles asyncio's socket throughput
by replacing the selector event loop with libuv; everything in the live
runtime is loop-implementation-agnostic, so selection is one policy
switch at process startup.  ``"auto"`` uses uvloop when importable and
falls back to the stdlib loop silently — containers without the extra
keep working, and every ``LiveReport``/BENCH snapshot records which loop
actually ran so numbers stay interpretable across hosts.
"""

from __future__ import annotations

import asyncio

from repro.common.errors import ConfigError

#: Valid values of ``TransportTuningConfig.event_loop`` / ``--event-loop``.
EVENT_LOOP_CHOICES = ("auto", "uvloop", "asyncio")


def install_event_loop(choice: str = "auto") -> str:
    """Install the requested event-loop policy; return what will run.

    Call once per process, before ``asyncio.run``.  ``"uvloop"`` raises
    :class:`ConfigError` when uvloop is not importable; ``"auto"`` falls
    back to ``"asyncio"``.
    """
    if choice not in EVENT_LOOP_CHOICES:
        raise ConfigError(
            f"event_loop must be one of {EVENT_LOOP_CHOICES}, not {choice!r}"
        )
    if choice == "asyncio":
        asyncio.set_event_loop_policy(None)  # back to the stdlib default
        return "asyncio"
    try:
        import uvloop  # type: ignore
    except ImportError:
        if choice == "uvloop":
            raise ConfigError(
                "event_loop='uvloop' but uvloop is not installed; "
                "install the 'fast' extra (pip install 'occ-repro[fast]') "
                "or use --event-loop auto"
            ) from None
        return "asyncio"
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return "uvloop"


def running_loop_name() -> str:
    """``"uvloop"`` or ``"asyncio"`` for the loop driving the caller.

    Inspects the running loop's class, so it reports the truth even when
    :func:`install_event_loop` was never called (in-process test runs).
    """
    loop = asyncio.get_running_loop()
    module = type(loop).__module__ or ""
    return "uvloop" if module.startswith("uvloop") else "asyncio"
