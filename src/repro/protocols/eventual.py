"""An eventually consistent strawman (NOT part of the paper's comparison).

Reads return the freshest locally known version with **no** dependency
waiting; writes are stamped and replicated with an empty dependency cut;
transactions simply read per-key heads with no snapshot discipline.  Under
geo-replication this violates causal consistency in exactly the ways the
paper's Section I describes — which is what makes it useful here: the
independent checker (:mod:`repro.verification`) must catch those violations,
demonstrating that it is not vacuously happy (see
``examples/consistency_audit.py``).
"""

from __future__ import annotations

from repro.protocols import messages as m
from repro.protocols.base import CausalClient, CausalServer
from repro.clocks.vector import vec_zero


class EventualServer(CausalServer):
    """Freshest-version reads, no causal safeguards."""

    def handle_get(self, msg: m.GetReq) -> None:
        version = self.store.freshest(msg.key)
        if version is None:
            self.send(msg.client, self.nil_reply(msg.key, msg.op_id))
            return
        self.metrics.record_get_staleness(0, 0)
        self.send(msg.client, self.reply_for(version, msg.op_id))

    def handle_put(self, msg: m.PutReq) -> None:
        # No dependency metadata is stored: versions carry an empty cut.
        empty = vec_zero(self.topology.num_dcs)
        version = self.create_version(msg.key, msg.value, empty)
        self.send(msg.client, m.PutReply(ut=version.ut, op_id=msg.op_id))

    def handle_ro_tx(self, msg: m.RoTxReq) -> None:
        # "Transactions" are just batched reads: no snapshot vector at all.
        self.coordinate_tx(msg, tv=vec_zero(self.topology.num_dcs))

    def handle_slice(self, msg: m.SliceReq) -> None:
        replies = []
        for key in msg.keys:
            version = self.store.freshest(key)
            if version is None:
                replies.append(self.nil_reply(key, 0))
            else:
                self.metrics.record_tx_staleness(0, 0)
                replies.append(self.reply_for(version, 0))
        self.send_slice_resp(msg, m.SliceResp(versions=replies,
                                              tx_id=msg.tx_id))


class EventualClient(CausalClient):
    """Keeps no useful session metadata (vectors stay zero)."""

    def absorb_read(self, reply: m.GetReply) -> None:
        # Deliberately forget: eventual consistency tracks nothing.
        return

    def _complete_put(self, reply: m.PutReply) -> None:
        op_type, started, callback = self._pending.pop(reply.op_id)
        # Do not track the write either.
        self._finish(op_type, started)
        callback(reply)
