"""The online causal-consistency checker.

The checker maintains, independently of any protocol metadata:

* per client, the **precise causal past**: for every key, the newest
  version (in LWW order) the client's history causally depends on —
  accumulated through program order and reads-from edges;
* per written version, the writer's causal past at write time (versions in
  a closed loop complete before the next operation is issued, so the past
  at reply time equals the past at issue time).

On every read it asserts the returned version is not older than the
client's causal-past version of that key; on every transactional read it
additionally asserts snapshot closure: no returned item may causally depend
on a fresher version of another returned key than the one the snapshot
returned.

One documented blind spot: if a read returns a version whose *writer's*
reply has not been processed yet (possible only within one client-to-server
round trip, i.e. microseconds of local latency vs. tens of milliseconds of
WAN replication), the version's dependency map is not registered yet and the
checker treats it as dependency-free for transitive tracking.  The direct
per-key check still applies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.verification.history import (
    History,
    ReadEvent,
    TxReadEvent,
    VersionId,
    WriteEvent,
    order_of,
)

#: Violation kinds.
CAUSAL_GET = "causal_get"
TX_CAUSAL = "tx_causal"
TX_SNAPSHOT = "tx_snapshot"


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected consistency violation."""

    kind: str
    client: str
    key: str
    expected_at_least: VersionId
    got: VersionId
    time_s: float

    def describe(self) -> str:
        return (
            f"[{self.kind}] t={self.time_s:.6f}s client={self.client} "
            f"key={self.key}: returned {self.got}, but causal history "
            f"requires at least {self.expected_at_least}"
        )


class CausalChecker:
    """Feeds on completed operations; accumulates violations."""

    def __init__(self, record_history: bool = False):
        # version id -> writer's precise causal past (key -> version id).
        self._deps: dict[VersionId, dict[str, VersionId]] = {}
        # client -> precise causal past (key -> version id).
        self._past: dict[str, dict[str, VersionId]] = {}
        self.violations: list[Violation] = []
        self.reads_checked = 0
        self.tx_reads_checked = 0
        self.writes_seen = 0
        self.unknown_dependency_reads = 0
        self.session_resets_seen = 0
        self.history = History() if record_history else None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_client(self, client: str) -> None:
        if client in self._past:
            raise ReproError(f"client {client} registered twice")
        self._past[client] = {}

    def _past_of(self, client: str) -> dict[str, VersionId]:
        try:
            return self._past[client]
        except KeyError:
            raise ReproError(f"client {client} never registered") from None

    # ------------------------------------------------------------------
    # Event hooks
    # ------------------------------------------------------------------
    def on_read(
        self, client: str, key: str, vid: VersionId, time_s: float
    ) -> None:
        """A completed GET returning version ``vid`` of ``key``."""
        self.reads_checked += 1
        past = self._past_of(client)
        self._check_read(CAUSAL_GET, client, key, vid, past, time_s)
        self._absorb(past, key, vid)
        if self.history is not None:
            self.history.append(ReadEvent(client, key, vid, time_s))

    def on_write(
        self, client: str, key: str, vid: VersionId, time_s: float
    ) -> None:
        """A completed PUT that created version ``vid`` of ``key``."""
        self.writes_seen += 1
        past = self._past_of(client)
        # The new version's causal past is the writer's, frozen now.
        self._deps[vid] = dict(past)
        past[key] = vid
        if self.history is not None:
            self.history.append(WriteEvent(client, key, vid, time_s))

    def on_session_reset(self, client: str, time_s: float) -> None:
        """The client's session was re-initialized (HA demotion/fail-over).

        Section III-B: after recovery the client "might not be able to see
        the same version of some data items read or written in the
        optimistic session" — causal stickiness legitimately restarts, so
        the checker's accumulated past for this client restarts with it.
        """
        self.session_resets_seen += 1
        self._past_of(client).clear()

    def on_tx_read(
        self,
        client: str,
        items: list[tuple[str, VersionId]],
        time_s: float,
    ) -> None:
        """A completed RO-TX returning the snapshot ``items``."""
        self.tx_reads_checked += 1
        past = self._past_of(client)
        snapshot = dict(items)
        # (a) every item must respect the client's causal history.
        for key, vid in items:
            self._check_read(TX_CAUSAL, client, key, vid, past, time_s)
        # (b) snapshot closure (Proposition 4): for returned items X, Y
        # with X -> X' -> Y, the snapshot's version of X's key must be at
        # least X'.
        for key, vid in items:
            deps = self._deps.get(vid)
            if deps is None:
                continue
            for other_key, returned in snapshot.items():
                needed = deps.get(other_key)
                if needed is not None and order_of(needed) > order_of(returned):
                    self.violations.append(Violation(
                        kind=TX_SNAPSHOT, client=client, key=other_key,
                        expected_at_least=needed, got=returned,
                        time_s=time_s,
                    ))
        for key, vid in items:
            self._absorb(past, key, vid)
        if self.history is not None:
            self.history.append(TxReadEvent(client, tuple(items), time_s))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_read(
        self,
        kind: str,
        client: str,
        key: str,
        vid: VersionId,
        past: dict[str, VersionId],
        time_s: float,
    ) -> None:
        expected = past.get(key)
        if expected is not None and order_of(expected) > order_of(vid):
            self.violations.append(Violation(
                kind=kind, client=client, key=key,
                expected_at_least=expected, got=vid, time_s=time_s,
            ))

    def _absorb(
        self, past: dict[str, VersionId], key: str, vid: VersionId
    ) -> None:
        """Fold a read version (and, transitively, its write-time causal
        past) into the client's causal past."""
        deps = self._deps.get(vid)
        if deps is None:
            if vid[2] > 0:  # not a preloaded version: writer reply in flight
                self.unknown_dependency_reads += 1
        else:
            for dep_key, dep_vid in deps.items():
                current = past.get(dep_key)
                if current is None or order_of(dep_vid) > order_of(current):
                    past[dep_key] = dep_vid
        current = past.get(key)
        if current is None or order_of(vid) > order_of(current):
            past[key] = vid

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {
            "reads_checked": self.reads_checked,
            "tx_reads_checked": self.tx_reads_checked,
            "writes_seen": self.writes_seen,
            "violations": len(self.violations),
            "unknown_dependency_reads": self.unknown_dependency_reads,
            "session_resets": self.session_resets_seen,
        }
        for violation in self.violations:
            counts[violation.kind] = counts.get(violation.kind, 0) + 1
        return counts
