"""Windowed samplers: cadence, rates, alignment, transient capture."""

import pytest

import helpers
from repro.common.errors import ConfigError
from repro.metrics.timeseries import RateSeries, WindowedSampler, align_rates
from repro.sim.engine import Simulator


def test_sampler_cadence_and_values():
    sim = Simulator()
    clock = {"v": 0.0}
    sampler = WindowedSampler(sim, probe=lambda: clock["v"], interval_s=0.5)

    def bump():
        clock["v"] += 1
        sim.schedule(0.5, bump)

    sampler.start()
    sim.schedule(0.25, bump)  # bumps at 0.25, 0.75, 1.25 ...
    sim.run(until=2.1)
    assert sampler.times == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])
    assert sampler.values == pytest.approx([0, 1, 2, 3, 4])


def test_sampler_stop_and_max_samples():
    sim = Simulator()
    capped = WindowedSampler(sim, probe=lambda: 1.0, interval_s=0.1,
                             max_samples=3)
    stopped = WindowedSampler(sim, probe=lambda: 1.0, interval_s=0.1)
    capped.start()
    stopped.start()
    sim.schedule(0.35, stopped.stop)
    sim.run(until=1.0)
    assert len(capped.samples) == 3
    assert len(stopped.samples) == 4  # t = 0.0, 0.1, 0.2, 0.3


def test_sampler_rejects_double_start_and_bad_args():
    sim = Simulator()
    sampler = WindowedSampler(sim, probe=lambda: 0.0, interval_s=0.1)
    sampler.start()
    with pytest.raises(ConfigError):
        sampler.start()
    with pytest.raises(ConfigError):
        WindowedSampler(sim, probe=lambda: 0.0, interval_s=0.0)
    with pytest.raises(ConfigError):
        WindowedSampler(sim, probe=lambda: 0.0, interval_s=0.1,
                        max_samples=0)


def test_between_filters_inclusive():
    sim = Simulator()
    sampler = WindowedSampler(sim, probe=lambda: sim.now, interval_s=0.5)
    sampler.start()
    sim.run(until=2.1)
    window = sampler.between(0.5, 1.5)
    assert [t for t, _ in window] == pytest.approx([0.5, 1.0, 1.5])


def test_rate_series_computes_per_window_rates():
    sim = Simulator()
    counter = {"n": 0}

    def work():
        counter["n"] += 5
        sim.schedule(0.1, work)

    series = RateSeries(sim, probe=lambda: counter["n"], interval_s=1.0)
    series.start()
    sim.schedule(0.05, work)
    sim.run(until=3.05)
    rates = [r for _, r in series.rates()]
    assert rates == pytest.approx([50.0, 50.0, 50.0])
    assert series.mean_rate() == pytest.approx(50.0)
    assert series.minimum_rate() == pytest.approx(50.0)


def test_rate_window_bounds_and_empty_window_error():
    sim = Simulator()
    series = RateSeries(sim, probe=lambda: sim.now * 10, interval_s=0.5)
    series.start()
    sim.run(until=2.1)
    assert series.minimum_rate(after=0.4, before=1.1) == pytest.approx(10.0)
    with pytest.raises(ConfigError):
        series.minimum_rate(after=5.0)


def test_align_rates_zips_equal_cadence():
    sim = Simulator()
    a = RateSeries(sim, probe=lambda: sim.now, interval_s=0.5)
    b = RateSeries(sim, probe=lambda: 2 * sim.now, interval_s=0.5)
    a.start()
    b.start()
    sim.run(until=2.1)
    aligned = align_rates([a, b])
    assert aligned
    for _, (rate_a, rate_b) in aligned:
        assert rate_b == pytest.approx(2 * rate_a)


def test_align_rates_rejects_misaligned_series():
    sim = Simulator()
    a = RateSeries(sim, probe=lambda: sim.now, interval_s=0.5)
    b = RateSeries(sim, probe=lambda: sim.now, interval_s=0.3)
    a.start()
    b.start()
    sim.run(until=2.0)
    with pytest.raises(ConfigError):
        align_rates([a, b])


def test_align_rates_empty_input():
    assert align_rates([]) == []


def test_table_text_lists_windows():
    sim = Simulator()
    series = RateSeries(sim, probe=lambda: sim.now, interval_s=1.0)
    series.start()
    sim.run(until=3.1)
    text = series.table_text(label="ops/s")
    assert "ops/s" in text
    assert len(text.splitlines()) == 4  # header + 3 windows


def test_rate_series_captures_partition_transient():
    """End to end: the sampler sees throughput sag during a cut and
    recover after the heal (the transient the aggregates cannot show).

    The cut follows the paper's Section III-B triangle: only the
    DC0<->DC1 link is severed, so DC2 keeps reading fresh DC0 items and
    writing items that depend on them; those reach DC1, whose clients
    then wedge on dependencies DC1 cannot receive until the heal.  (A
    full isolation of DC0 would barely block anyone — nothing fresh from
    DC0 reaches the survivors, which is the paper's "naturally
    consistent order" insight at work.)
    """
    from repro.common.config import (
        ClusterConfig,
        ExperimentConfig,
        WorkloadConfig,
    )
    from repro.harness.builders import build_cluster

    config = ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=2,
                              keys_per_partition=10, protocol="pocc"),
        workload=WorkloadConfig(kind="get_put", gets_per_put=1,
                                clients_per_partition=3,
                                think_time_s=0.002),
        seed=3,
    )
    built = build_cluster(config)
    series = RateSeries(
        built.sim,
        probe=lambda: sum(c.ops_completed for c in built.clients),
        interval_s=0.25,
    )
    built.faults.schedule_partition(1.0, [0], [1], heal_after=1.5)
    series.start()
    built.start_drivers()
    built.sim.run(until=4.5)

    before = series.mean_rate(after=0.25, before=1.0)
    during = series.minimum_rate(after=1.5, before=2.5)
    after = series.mean_rate(after=3.5, before=4.5)
    assert during < before * 0.9  # the cut visibly dents throughput
    assert after > during * 1.05   # and the heal restores it
