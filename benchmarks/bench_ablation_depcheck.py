"""Ablation — explicit dependency checking (COPS*) vs OCC.

Section I: dependency-check protocols incur "computational and
communication overhead" that OCC removes entirely.  Same workload, same
seed: compare the message count per operation of COPS* against POCC, and
show the overhead grows with write intensity (each replicated write
fans out one DepCheck/ack pair per nearest dependency, per remote DC).
"""

from pathlib import Path

from repro.common.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.harness.experiment import run_experiment

RESULTS_DIR = Path(__file__).parent / "results"


def _config(protocol: str, gets_per_put: int) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(num_dcs=3, num_partitions=4,
                              keys_per_partition=200, protocol=protocol),
        workload=WorkloadConfig(kind="get_put", gets_per_put=gets_per_put,
                                clients_per_partition=4,
                                think_time_s=0.010),
        warmup_s=0.4,
        duration_s=1.6,
        name=f"depcheck-{protocol}-{gets_per_put}to1",
    )


def test_ablation_dependency_check_overhead(benchmark):
    ratios = (8, 2)  # read-heavy and write-heavy points
    results = {}

    def run() -> None:
        for gets_per_put in ratios:
            for protocol in ("cops", "pocc"):
                results[(protocol, gets_per_put)] = run_experiment(
                    _config(protocol, gets_per_put)
                )

    benchmark.pedantic(run, rounds=1, iterations=1)

    def msgs_per_op(protocol, ratio):
        r = results[(protocol, ratio)]
        return r.network_messages / r.total_ops

    # Dependency checking is strictly chattier at every write intensity.
    overhead = {}
    for ratio in ratios:
        cops_rate = msgs_per_op("cops", ratio)
        pocc_rate = msgs_per_op("pocc", ratio)
        assert cops_rate > pocc_rate, f"ratio {ratio}:1"
        overhead[ratio] = cops_rate - pocc_rate

    # The absolute message overhead grows as writes become more frequent
    # (checks happen per replicated write).
    assert overhead[2] > overhead[8]

    # The freshness cost: POCC reads are never old; COPS* reads can be
    # (a hidden head is an unmerged, fresher version).
    for ratio in ratios:
        assert results[("pocc", ratio)].get_staleness["pct_old"] == 0.0
        assert results[("cops", ratio)].get_staleness["pct_unmerged"] >= 0.0

    # And COPS* reads never block: its GET/slice wait queues stay unused.
    for ratio in ratios:
        cops = results[("cops", ratio)]
        assert cops.blocking["get_vv"]["attempts"] == 0

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [f"{'series':<18} {'msgs/op':>8} {'B/op':>8} {'%old':>7} "
             f"{'vis_lag(ms)':>12}"]
    for ratio in ratios:
        for protocol in ("cops", "pocc"):
            r = results[(protocol, ratio)]
            lines.append(
                f"{protocol + f' {ratio}:1':<18} "
                f"{r.network_messages / r.total_ops:>8.2f} "
                f"{r.bytes_per_op:>8.0f} "
                f"{r.get_staleness['pct_old']:>7.2f} "
                f"{r.visibility_lag['mean'] * 1e3:>12.2f}"
            )
    (RESULTS_DIR / "ablation_depcheck.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
