"""The base simulated node: network endpoint + CPU + physical clock.

Protocol servers subclass :class:`SimNode` and implement ``dispatch`` (what
to do with a message) and ``service_time`` (what it costs).  Incoming
messages pass through the node's CPU queue before their handler runs;
replies and background sends go back out through the network.  Clients are
also ``SimNode`` subclasses but typically use zero service times (the
paper's clients are closed-loop load generators whose CPU is not the
bottleneck being studied).
"""

from __future__ import annotations

from typing import Any

from repro.common.types import Address
from repro.cluster.cpu import CpuScheduler
from repro.clocks.physical import PhysicalClock
from repro.sim.engine import Simulator
from repro.sim.network import Network


class SimNode:
    """A network endpoint with a CPU queue and a local physical clock."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: Address,
        clock: PhysicalClock,
        cores: int = 2,
    ):
        self.sim = sim
        self.network = network
        self._address = address
        self.clock = clock
        self.cpu = CpuScheduler(sim, cores)
        self.messages_received = 0
        network.register(self)

    # ------------------------------------------------------------------
    # Endpoint protocol
    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        return self._address

    def on_message(self, msg: Any) -> None:
        """Network delivery: queue the handler behind the node's CPU."""
        self.messages_received += 1
        cost = self.service_time(msg)
        if cost > 0:
            self.cpu.submit(cost, self.dispatch, msg,
                            priority=self.message_priority(msg))
        else:
            self.dispatch(msg)

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    def service_time(self, msg: Any) -> float:
        """CPU seconds charged before ``dispatch(msg)`` runs."""
        raise NotImplementedError

    def message_priority(self, msg: Any) -> int:
        """CPU class for this message (FOREGROUND unless overridden)."""
        return 0

    def dispatch(self, msg: Any) -> None:
        """Handle a message (runs after its CPU cost was paid)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def send(self, dst: Address, msg: Any) -> None:
        """Send a message from this node."""
        self.network.send(self._address, dst, msg)

    def send_fanout(self, dsts, msg: Any) -> None:
        """Send one message to many destinations, sizing it only once.

        Replication, heartbeats and stabilization broadcasts ship the same
        immutable payload to every peer; computing ``size_bytes()`` per
        destination is pure waste (it walks dependency vectors/lists), so
        the size is cached across the whole fan-out.
        """
        size = self.network.message_size(msg)
        network_send = self.network.send
        src = self._address
        for dst in dsts:
            network_send(src, dst, msg, size)

    def submit_local(self, cost_s: float, fn, *args) -> None:
        """Charge CPU for a locally originated task (timer handlers etc.)."""
        if cost_s > 0:
            self.cpu.submit(cost_s, fn, *args)
        else:
            fn(*args)
