"""Generator-based processes on top of the event heap (SimPy-flavoured).

The protocol servers are written in callback style for speed, but tests and
examples read better as sequential coroutines::

    def client(env):
        yield env.timeout(1.0)
        gate = Gate(env)
        server.request(reply_to=gate.trigger)
        result = yield gate
        ...

    env = Environment(sim)
    env.process(client(env))
    sim.run()

A process yields *waitables* (:class:`Timeout`, :class:`Gate`, or another
:class:`Process`) and resumes with the waitable's value once it fires.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator


class _Waitable:
    """Base: something a process can yield on."""

    __slots__ = ("_env", "_callbacks", "_fired", "value")

    def __init__(self, env: "Environment"):
        self._env = env
        self._callbacks: list = []
        self._fired = False
        self.value: Any = None

    @property
    def fired(self) -> bool:
        return self._fired

    def _add_callback(self, callback) -> None:
        if self._fired:
            # Fire on the next event-loop tick to preserve run-to-completion.
            self._env.sim.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)

    def _fire(self, value: Any = None) -> None:
        if self._fired:
            return
        self._fired = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(_Waitable):
    """Fires after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        super().__init__(env)
        env.sim.schedule(delay, self._fire, value)


class Gate(_Waitable):
    """An externally triggered event — bridge from callback code.

    Pass ``gate.trigger`` wherever a completion callback is expected.
    """

    __slots__ = ()

    def trigger(self, value: Any = None) -> None:
        """Open the gate, waking every process waiting on it."""
        self._fire(value)


class AllOf(_Waitable):
    """Fires when all child waitables have fired; value = list of values."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, env: "Environment", children: Iterable[_Waitable]):
        super().__init__(env)
        self._children = list(children)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self._fire([])
            return
        for child in self._children:
            child._add_callback(self._child_fired)

    def _child_fired(self, _child: _Waitable) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self._fire([c.value for c in self._children])


class AnyOf(_Waitable):
    """Fires when the first child fires; value = (index, value)."""

    __slots__ = ("_children",)

    def __init__(self, env: "Environment", children: Iterable[_Waitable]):
        super().__init__(env)
        self._children = list(children)
        if not self._children:
            raise SimulationError("AnyOf needs at least one waitable")
        for i, child in enumerate(self._children):
            child._add_callback(lambda c, i=i: self._fire((i, c.value)))


class Process(_Waitable):
    """Drives a generator; itself waitable (fires on generator return)."""

    __slots__ = ("_generator",)

    def __init__(self, env: "Environment", generator: Generator):
        super().__init__(env)
        self._generator = generator
        # Start on the next tick so the creator finishes its own step first.
        env.sim.schedule(0.0, self._advance, None)

    def _advance(self, fired: _Waitable | None) -> None:
        value = fired.value if fired is not None else None
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self._fire(stop.value)
            return
        if not isinstance(target, _Waitable):
            raise SimulationError(
                f"process yielded {target!r}; expected a Timeout/Gate/Process"
            )
        target._add_callback(self._advance)


class Environment:
    """Factory for processes and waitables bound to one simulator."""

    def __init__(self, sim: Simulator):
        self.sim = sim

    @property
    def now(self) -> float:
        return self.sim.now

    def process(self, generator: Generator) -> Process:
        """Launch a generator as a process."""
        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def gate(self) -> Gate:
        return Gate(self)

    def all_of(self, waitables: Iterable[_Waitable]) -> AllOf:
        return AllOf(self, waitables)

    def any_of(self, waitables: Iterable[_Waitable]) -> AnyOf:
        return AnyOf(self, waitables)

    def run(self, until: float | None = None) -> None:
        self.sim.run(until=until)
