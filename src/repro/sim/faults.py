"""Fault injection: network partitions between data centers.

Section III-B of the paper discusses OCC's behaviour under network
partitions (blocking, recovery, fall-back to a pessimistic protocol).  The
injector cuts traffic between groups of DCs — in both directions — and heals
it later, either programmatically or on a schedule.  Messages sent across a
cut are *held*, not dropped, matching the lossless-channel system model: a
partition that heals delivers everything, a partition that never heals
models a full DC failure.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.network import Network


class FaultInjector:
    """Creates and heals inter-DC network partitions."""

    def __init__(self, sim: Simulator, network: Network):
        self._sim = sim
        self._network = network
        self._active_cuts: set[tuple[int, int]] = set()
        self.partitions_started = 0
        self.partitions_healed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True while at least one DC pair is cut."""
        return bool(self._active_cuts)

    def is_cut(self, dc_a: int, dc_b: int) -> bool:
        return (dc_a, dc_b) in self._active_cuts

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def partition_dcs(
        self, group_a: Iterable[int], group_b: Iterable[int]
    ) -> None:
        """Cut all traffic between every DC in ``group_a`` and ``group_b``."""
        group_a = list(group_a)
        group_b = list(group_b)
        if set(group_a) & set(group_b):
            raise SimulationError("partition groups must be disjoint")
        self.partitions_started += 1
        for a in group_a:
            for b in group_b:
                self._cut(a, b)
                self._cut(b, a)

    def isolate_dc(self, dc: int, all_dcs: Iterable[int]) -> None:
        """Cut ``dc`` off from every other DC (models a DC failure)."""
        others = [d for d in all_dcs if d != dc]
        self.partition_dcs([dc], others)

    def heal_all(self) -> None:
        """Heal every active cut; held messages flush in send order."""
        if self._active_cuts:
            self.partitions_healed += 1
        for a, b in list(self._active_cuts):
            self._heal(a, b)

    def schedule_partition(
        self,
        at: float,
        group_a: Iterable[int],
        group_b: Iterable[int],
        heal_after: float | None = None,
    ) -> None:
        """Schedule a partition at time ``at``; optionally heal it
        ``heal_after`` seconds later (never, if None)."""
        group_a = list(group_a)
        group_b = list(group_b)
        self._sim.schedule_at(at, self.partition_dcs, group_a, group_b)
        if heal_after is not None:
            self._sim.schedule_at(at + heal_after, self.heal_all)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cut(self, src_dc: int, dst_dc: int) -> None:
        self._active_cuts.add((src_dc, dst_dc))
        self._network.block_dc_pair(src_dc, dst_dc)

    def _heal(self, src_dc: int, dst_dc: int) -> None:
        self._active_cuts.discard((src_dc, dst_dc))
        self._network.unblock_dc_pair(src_dc, dst_dc)
