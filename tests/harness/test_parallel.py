"""The parallel experiment runner: ordering, knobs, error propagation."""

import pytest

from repro.common.config import (
    ExperimentConfig,
    WorkloadConfig,
    smoke_scale_cluster,
)
from repro.common.errors import ConfigError
from repro.harness.parallel import (
    resolve_parallelism,
    run_experiments,
    run_seeded,
)


def _config(seed: int = 42, protocol: str = "pocc",
            parallelism: int | None = None) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=smoke_scale_cluster(protocol),
        workload=WorkloadConfig(kind="get_put", gets_per_put=2,
                                clients_per_partition=2,
                                think_time_s=0.004),
        warmup_s=0.1,
        duration_s=0.4,
        seed=seed,
        name=f"par-{protocol}-{seed}",
        parallelism=parallelism,
    )


def test_resolve_parallelism():
    assert resolve_parallelism(1) == 1
    assert resolve_parallelism(8, num_tasks=3) == 3
    assert resolve_parallelism(2, num_tasks=5) == 2
    assert resolve_parallelism(None) >= 1
    with pytest.raises(ConfigError):
        resolve_parallelism(0)


def test_config_rejects_bad_parallelism():
    with pytest.raises(ConfigError):
        _config(parallelism=0).validate()
    _config(parallelism=1).validate()
    _config(parallelism=None).validate()


def test_results_in_input_order_across_pool():
    configs = [_config(seed=s) for s in (11, 12, 13, 14)]
    results = run_experiments(configs, parallelism=4)
    assert [r.name for r in results] == [c.name for c in configs]
    # Same seeds re-run serially give exactly the same per-run payloads.
    serial = run_experiments(configs, parallelism=1)
    assert [r.total_ops for r in results] == [r.total_ops for r in serial]
    assert [r.sim_events for r in results] == [r.sim_events for r in serial]


def test_progress_fires_in_input_order():
    configs = [_config(seed=s) for s in (21, 22, 23)]
    seen: list[str] = []
    run_experiments(configs, parallelism=2,
                    progress=lambda c, r: seen.append(c.name))
    assert seen == [c.name for c in configs]


def test_single_config_bypasses_pool():
    [result] = run_experiments([_config(seed=5)], parallelism=8)
    assert result.total_ops > 0


def test_config_knob_keeps_batch_serial(monkeypatch):
    """Configs pinned to ``parallelism=1`` must keep run_experiments on
    the legacy serial path even with no explicit argument — the pool must
    never be constructed."""
    import repro.harness.parallel as parallel_mod

    def explode():
        raise AssertionError("process pool used despite parallelism=1")

    monkeypatch.setattr(parallel_mod, "_pool_context", explode)
    configs = [_config(seed=s, parallelism=1) for s in (31, 32)]
    results = run_experiments(configs)
    assert [r.total_ops for r in results] == [
        r.total_ops for r in run_experiments(configs, parallelism=1)
    ]


def test_most_conservative_config_knob_wins():
    """A mixed batch uses the smallest set knob: one serial-pinned config
    keeps the whole batch serial (resolved worker count of 1)."""
    from repro.harness.parallel import resolve_parallelism

    configs = [_config(seed=1, parallelism=4), _config(seed=2, parallelism=1)]
    knobs = [c.parallelism for c in configs if c.parallelism is not None]
    assert resolve_parallelism(min(knobs), len(configs)) == 1


def test_run_seeded_honours_config_knob():
    config = _config(seed=40, parallelism=2)
    results = run_seeded(config, seeds=(40, 41, 42))
    assert [r.config["seed"] for r in results] == [40, 41, 42]


def test_worker_exception_propagates():
    bad = _config(seed=1)
    # An invalid config raises inside the worker; the error must surface.
    bad = ExperimentConfig(
        cluster=bad.cluster,
        workload=WorkloadConfig(kind="get_put", gets_per_put=-1),
        seed=1,
    )
    good = _config(seed=2)
    with pytest.raises(ConfigError):
        run_experiments([good, bad, good], parallelism=2)
