"""The live asyncio TCP backend.

This package runs the *same* protocol cores as the deterministic
simulation, but over real sockets and wall-clock timers:

* :mod:`repro.runtime.codec` — length-prefixed wire codec (msgpack when
  available, JSON otherwise) for every message dataclass in
  :mod:`repro.protocols.messages`;
* :mod:`repro.runtime.transport` — the asyncio TCP transport:
  :class:`LiveHub` (per-process loop state, connection cache, address
  book) and :class:`LiveRuntime` (the per-endpoint
  :class:`repro.protocols.core.ProtocolRuntime` adapter);
* :mod:`repro.runtime.configfile` — JSON config files describing an
  :class:`repro.common.config.ExperimentConfig` deployment;
* :mod:`repro.runtime.cluster` — boot an N-DC × M-partition cluster
  in-process and drive it with the :mod:`repro.workload` generators,
  feeding the :mod:`repro.verification` causal checker;
* :mod:`repro.runtime.chaos` — kill/restart fault injection against a
  persistent cluster (one partition server as a real OS process,
  SIGKILLed and recovered from its WAL — see ``docs/persistence.md``);
* :mod:`repro.runtime.serve` / :mod:`repro.runtime.bench_live` — the
  ``repro-serve`` and ``repro-bench-live`` command-line entry points.
"""

from repro.runtime.chaos import CrashFault, CrashReport, run_crash_experiment
from repro.runtime.cluster import LiveCluster, LiveReport, run_live_experiment
from repro.runtime.transport import AddressBook, LiveHub, LiveRuntime

__all__ = [
    "AddressBook",
    "CrashFault",
    "CrashReport",
    "LiveCluster",
    "LiveHub",
    "LiveReport",
    "LiveRuntime",
    "run_crash_experiment",
    "run_live_experiment",
]
