"""Per-key version chains ordered by the last-writer-wins total order.

The chain is kept sorted with the *freshest* version first, so the common
POCC read — "the version with the highest update timestamp" (Algorithm 2
line 3) — is O(1), while the pessimistic read scans from the head until it
finds a visible version, paying per scanned version (the cost asymmetry the
paper measures).
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Iterator

from repro.common.types import version_order_key
from repro.storage.version import Version


class _ChainEntry:
    """Sort adapter: orders descending by the LWW order key."""

    __slots__ = ("version", "_sort_key")

    def __init__(self, version: Version):
        self.version = version
        order = version.order_key
        # Negate so that bisect's ascending order puts the freshest first.
        self._sort_key = (-order[0], -order[1])

    def __lt__(self, other: "_ChainEntry") -> bool:
        return self._sort_key < other._sort_key


class VersionChain:
    """All locally known versions of one key, freshest first."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: list[_ChainEntry] = []

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, version: Version) -> None:
        """Insert a version, maintaining LWW order.

        Replication channels are FIFO so versions from one replica arrive
        in order, but versions from *different* replicas interleave
        arbitrarily — hence the general sorted insert.
        """
        entry = _ChainEntry(version)
        entries = self._entries
        # Fast path: newer than the current head (the overwhelmingly common
        # case because updates are propagated in timestamp order).
        if not entries or entry < entries[0]:
            entries.insert(0, entry)
        else:
            insort(entries, entry)

    def truncate_to(self, keep: list[Version]) -> None:
        """Replace contents (GC helper); ``keep`` must already be ordered."""
        self._entries = [_ChainEntry(v) for v in keep]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def head(self) -> Version | None:
        """The freshest version (what POCC's GET returns), or None."""
        return self._entries[0].version if self._entries else None

    def find_freshest(
        self, visible: Callable[[Version], bool]
    ) -> tuple[Version | None, int]:
        """Freshest version satisfying ``visible``; also returns how many
        versions were scanned (the chain-traversal cost the pessimistic
        protocol pays)."""
        for scanned, entry in enumerate(self._entries, start=1):
            if visible(entry.version):
                return entry.version, scanned
        return None, len(self._entries)

    def find(self, sr: int, ut: int) -> Version | None:
        """The version with exactly this ``(sr, ut)`` identity, if held.

        Chains are ordered by the LWW key, so the scan stops as soon as
        it passes where the identity would sit.  Used by recovery replay
        (skip what the snapshot already restored) and by replication
        catch-up (skip what a channel already delivered).
        """
        target = version_order_key(ut, sr)
        for entry in self._entries:
            order = entry.version.order_key
            if order == target:
                return entry.version
            if order < target:
                return None
        return None

    def versions_newer_than(self, version: Version) -> int:
        """How many chain versions are fresher than ``version``.

        This is the "# Fresher vers." statistic of Figure 2b: a returned
        item is *old* iff this count is positive.
        """
        target = version.order_key
        count = 0
        for entry in self._entries:
            if entry.version.order_key > target:
                count += 1
            else:
                break
        return count

    def count_matching(self, predicate: Callable[[Version], bool]) -> int:
        """Number of chain versions satisfying ``predicate``."""
        return sum(1 for entry in self._entries if predicate(entry.version))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Version]:
        """Iterate freshest-to-oldest."""
        return (entry.version for entry in self._entries)

    def __repr__(self) -> str:
        return f"VersionChain(len={len(self._entries)})"
