"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator


def test_starts_at_time_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.events_executed == 0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.5, fired.append, "a")
    executed = sim.run()
    assert executed == 1
    assert fired == ["a"]
    assert sim.now == 1.5


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, 3)
    sim.schedule(1.0, order.append, 1)
    sim.schedule(2.0, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(1.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # time advances to the until bound
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_exact_event_time_includes_event():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "x")
    sim.run(until=2.0)
    assert fired == ["x"]


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    assert handle.active
    assert handle.cancel()
    assert not handle.active
    sim.run()
    assert fired == []


def test_cancel_twice_returns_false():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    assert handle.cancel()
    assert not handle.cancel()


def test_cancel_after_fire_returns_false():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    assert not handle.cancel()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_zero_delay_event_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(2.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_stop_interrupts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 2]


def test_max_events_limit():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    executed = sim.run(max_events=3)
    assert executed == 3
    assert sim.pending_events == 2


def test_step_executes_exactly_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek_next_time() == 2.0


def test_peek_next_time_empty_heap():
    assert Simulator().peek_next_time() is None


def test_events_executed_counts_across_runs():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 2


def test_deterministic_interleaving_with_many_events():
    def build_and_run():
        sim = Simulator()
        log = []
        for i in range(100):
            sim.schedule((i * 7919 % 13) / 10.0, log.append, i)
        sim.run()
        return log

    assert build_and_run() == build_and_run()
