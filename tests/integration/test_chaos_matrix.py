"""The hostile-network chaos layer, end to end.

Three properties anchor the PR-7 acceptance criteria:

1. **Loss needs anti-entropy.**  Under sustained replication-message
   loss the replicas *diverge* without the backfill and *converge* with
   it — demonstrating both that the fault is real and that the repair
   path repairs it.
2. **Off means off.**  With anti-entropy disabled and no lossy links
   configured, a run is byte-identical to one that never heard of the
   knobs: no timers, no RNG draws, no extra events.
3. **The matrix gates.**  ``run_chaos_matrix`` runs named scenarios
   under the causal checker and the convergence audit, and its verdicts
   actually reflect the gates.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.config import (
    AntiEntropyConfig,
    ExperimentConfig,
    ReplicationBatchConfig,
    WorkloadConfig,
    smoke_scale_cluster,
)
from repro.harness.builders import build_cluster
from repro.harness.experiment import run_experiment
from repro.runtime.chaos import SCENARIOS, run_chaos_matrix

#: Replication traffic only: client traffic stays reliable, so every
#: protocol keeps serving and the damage is confined to geo-replication
#: (what anti-entropy exists to repair).
_REPL_KINDS = ("Replicate", "ReplicateBatch")


def _lossy_config(anti_entropy: bool, seed: int = 9041) -> ExperimentConfig:
    cluster = smoke_scale_cluster("pocc")
    if anti_entropy:
        cluster = replace(cluster, anti_entropy=AntiEntropyConfig(enabled=True))
    return ExperimentConfig(
        cluster=cluster,
        workload=WorkloadConfig(kind="get_put", gets_per_put=1,
                                clients_per_partition=2,
                                think_time_s=0.005),
        warmup_s=0.2,
        duration_s=1.5,
        seed=seed,
        verify=True,
        name=f"lossy-ae-{'on' if anti_entropy else 'off'}",
    )


def _run_lossy(anti_entropy: bool):
    config = _lossy_config(anti_entropy)
    built = build_cluster(config)
    # 8% loss on every inter-DC replication channel, never stopped: the
    # holes must be repaired (or not) by the protocol itself, not by a
    # healed network.
    for src in range(3):
        for dst in range(3):
            if src != dst:
                built.faults.schedule_loss(0.3, src, dst, 0.08,
                                           kinds=_REPL_KINDS)
    result = run_experiment(config, built=built)
    return built, result


def test_replication_loss_diverges_without_anti_entropy():
    """The control arm: dropped Replicates leave permanent holes."""
    built, result = _run_lossy(anti_entropy=False)
    assert built.network.stats.messages_dropped > 0
    assert result.divergences > 0
    servers = next(iter(built.servers.values()))
    assert servers.ae_digests_sent == 0  # the repair path never ran


def test_replication_loss_converges_with_anti_entropy():
    """The treatment arm: same seed, same loss, backfill on — replicas
    converge.

    Convergence, not checker-cleanliness: anti-entropy repairs a hole
    about one digest period after the drop, but this run *sustains* 8%
    loss through the measured window, and optimistic POCC serves reads
    from whatever is locally freshest while heartbeats advance the VV
    past the dropped Replicate — a read landing inside the repair window
    can still be stale (and the checker duly counts it).  The matrix's
    ``lossy-1pct`` scenario, where loss stops before the drain, gates on
    zero violations; under loss that never stops the durable guarantee
    anti-entropy restores is convergence."""
    built, result = _run_lossy(anti_entropy=True)
    assert built.network.stats.messages_dropped > 0
    assert result.divergences == 0
    digests = sum(s.ae_digests_sent for s in built.servers.values())
    repairs = sum(s.ae_repairs_applied for s in built.servers.values())
    assert digests > 0
    assert repairs > 0  # the convergence was *earned*, not incidental


def test_chaos_knobs_off_is_byte_identical():
    """A config that spells out the disabled chaos knobs produces the
    identical run to one using the defaults: no timers, no RNG draws, no
    events.  This is the per-seed reproducibility guarantee that keeps
    every pre-chaos regression baseline valid."""
    base = _lossy_config(anti_entropy=False)
    spelled = replace(
        base,
        cluster=replace(
            base.cluster,
            anti_entropy=AntiEntropyConfig(enabled=False),
            repl_batch=ReplicationBatchConfig(enabled=False),
        ),
    )
    first = run_experiment(base)
    second = run_experiment(spelled)
    assert first.total_ops == second.total_ops
    assert first.sim_events == second.sim_events
    assert first.verification == second.verification


def test_partition_during_replicate_batch_flush():
    """A partition that slams shut while batched replication is in
    flight: buffered versions flush into a held channel, the heal
    releases them in order, and nothing is lost or reordered (no
    violations, no divergence)."""
    cluster = replace(
        smoke_scale_cluster("pocc"),
        repl_batch=ReplicationBatchConfig(enabled=True, flush_ms=10.0),
    )
    config = ExperimentConfig(
        cluster=cluster,
        workload=WorkloadConfig(kind="get_put", gets_per_put=1,
                                clients_per_partition=2,
                                think_time_s=0.002),
        warmup_s=0.2,
        duration_s=1.5,
        seed=515,
        verify=True,
        name="partition-vs-batch-flush",
    )
    built = build_cluster(config)
    # Partitions land at arbitrary offsets inside the 10 ms flush cadence,
    # so some batches are mid-flight (sent, not delivered) when the cut
    # lands and are held; others get buffered behind the cut.
    built.faults.schedule_partition(0.404, [0], [1, 2], heal_after=0.3)
    built.faults.schedule_partition(0.951, [2], [0, 1], heal_after=0.3)
    result = run_experiment(config, built=built)
    stats = built.network.stats
    assert stats.messages_held > 0  # the cut caught traffic in flight
    assert built.faults.partitions_healed == 2
    assert result.verification["violations"] == 0
    assert result.divergences == 0


def test_chaos_matrix_scenarios_are_wired():
    expected = {"asym-partition", "lossy-1pct", "slow-link-10x",
                "clock-spike", "stalled-disk", "dc-failover",
                "reshard-kill-donor", "reshard-kill-joiner",
                "reshard-kill-bystander"}
    assert expected == set(SCENARIOS)
    # The reshard cells are a deployment-feature gate, not a protocol
    # axis: they run once, under the paper's subject protocol.
    for name in ("reshard-kill-donor", "reshard-kill-joiner",
                 "reshard-kill-bystander"):
        assert SCENARIOS[name].protocols == ("pocc",)


def test_chaos_matrix_reduced_run_passes():
    """One sim scenario of each flavor through the real matrix driver:
    verdicts carry the gates (non-vacuity counters included) and the
    report aggregates them."""
    report = run_chaos_matrix(protocols=("pocc",),
                              scenarios=("asym-partition", "lossy-1pct"),
                              seed=20177)
    assert report.passed
    by_name = {v.scenario: v for v in report.verdicts}
    assert by_name["asym-partition"].details["one_way_cuts"] == 2
    assert by_name["lossy-1pct"].details["dropped"] > 0
    assert by_name["lossy-1pct"].details["ae_repairs"] > 0
    for verdict in report.verdicts:
        assert verdict.violations == 0
        assert verdict.divergences == 0
        assert verdict.total_ops > 0
