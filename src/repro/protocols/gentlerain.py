"""GentleRain* — a scalar-clock pessimistic baseline (extension).

GentleRain (Du, Iorgulescu, Roy, Zwaenepoel; SoCC 2014 — the paper's
reference [13]) is the predecessor of Cure from the same group: instead of
an M-entry vector it tracks a single **Global Stable Time** (GST).  A
remote version is visible iff its timestamp is below the GST; local
versions are immediately visible.  Clients carry two scalars — their
dependency time DT (max update time read/written) and the largest GST they
have observed — so the metadata cost is O(1) instead of O(M).

The trade-off the OCC paper inherits from this line of work: the GST is
the minimum over *every entry of every node's version vector*, so one slow
WAN link holds back visibility of updates from *all* DCs (Cure's vector
fixes that; POCC removes the stable-visibility horizon entirely).  Having
GentleRain* in the registry lets the benches show the full metadata /
freshness spectrum: scalar < vector < optimistic.

Wire mapping: this implementation reuses the shared message types with
1-2 entry "vectors" — ``GetReq.rdv == [dt, gst_c]``, ``GetReply.dv ==
(gst_s,)``, ``SliceReq.tv == [snapshot_time]`` — so the byte accounting
reflects the smaller metadata automatically.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.types import Micros, OpType
from repro.metrics.collectors import BLOCK_GSS_WAIT, BLOCK_PUT_CLOCK
from repro.protocols import messages as m
from repro.protocols.base import CausalClient, CausalServer, WaitQueue
from repro.storage.version import Version


class GentleRainServer(CausalServer):
    """Server with scalar Global-Stable-Time visibility."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.gst: Micros = 0
        self.gst_waiters = WaitQueue(self)
        self._gst_reports: dict[int, Micros] = {}
        #: Remote versions awaiting GST coverage for their visibility
        #: sample; kept in arrival (= per-source timestamp) order.
        self._pending_visibility: list[Version] = []
        interval = self._protocol.stabilization_interval_s
        self._gst_interval_s = interval
        self.rt.schedule(interval * (1.0 + 0.01 * self.n),
                          self._gst_tick)

    # ------------------------------------------------------------------
    # GST stabilization (scalar variant of the Cure protocol)
    # ------------------------------------------------------------------
    def _local_stable_time(self) -> Micros:
        """LST = the oldest entry of the version vector: everything up to
        it has been received from every DC."""
        return min(self.vv)

    def _gst_tick(self) -> None:
        aggregator = self.topology.server(self.m, 0)
        push = m.StabPush(vv=[self._local_stable_time()], partition=self.n)
        if aggregator == self.address:
            self._receive_gst_push(push)
        else:
            self.send(aggregator, push)
        self.rt.schedule(self._gst_interval_s, self._gst_tick)

    def _receive_gst_push(self, msg: m.StabPush) -> None:
        self._gst_reports[msg.partition] = msg.vv[0]
        if not self._aggregation_complete(self._gst_reports):
            return
        gst = min(self._gst_reports.values())
        self._gst_reports.clear()
        self.broadcast_dc(m.StabBroadcast(gss=[gst]),
                          self._receive_gst_broadcast)

    def _receive_gst_broadcast(self, msg: m.StabBroadcast) -> None:
        if msg.gss[0] > self.gst:
            self.gst = msg.gss[0]
            now_us = self.clock.peek_micros()
            self.metrics.record_gss_lag(max(now_us - self.gst, 0) / 1e6)
            self._drain_pending_visibility()
            self.gst_waiters.notify()

    def version_received(self, version: Version) -> None:
        """A remote version becomes readable when the GST passes its
        timestamp — the scalar protocol's (coarser) stability horizon."""
        if version.ut <= self.gst:
            self.metrics.record_visibility_lag(
                self.rt.now - version.ut / 1e6
            )
            self._trace_visible(version)
        else:
            self._pending_visibility.append(version)

    def _drain_pending_visibility(self) -> None:
        if not self._pending_visibility:
            return
        now = self.rt.now
        still_hidden = []
        for version in self._pending_visibility:
            if version.ut <= self.gst:
                self.metrics.record_visibility_lag(now - version.ut / 1e6)
                self._trace_visible(version)
            else:
                still_hidden.append(version)
        self._pending_visibility = still_hidden

    def stable_lag_seconds(self) -> float:
        """GentleRain*'s horizon is the scalar GST."""
        if self.gst <= 0:
            return 0.0
        return max(self.clock.peek_micros() - self.gst, 0) / 1e6

    def dispatch(self, msg: Any) -> None:
        if isinstance(msg, m.StabPush):
            self._receive_gst_push(msg)
        elif isinstance(msg, m.StabBroadcast):
            self._receive_gst_broadcast(msg)
        else:
            super().dispatch(msg)

    # ------------------------------------------------------------------
    # Visibility
    # ------------------------------------------------------------------
    def _visible(self, version: Version, horizon: Micros) -> bool:
        return version.sr == self.m or version.ut <= horizon

    def _count_unmerged(self, chain) -> int:
        return chain.count_matching(
            lambda v: not (v.sr == self.m or v.ut <= self.gst)
        )

    # ------------------------------------------------------------------
    # GET: merge the client's GST, return the freshest visible version
    # ------------------------------------------------------------------
    def handle_get(self, msg: m.GetReq) -> None:
        _, gst_c = msg.rdv
        if gst_c > self.gst:
            self.gst = gst_c  # merging the client's observation is safe
        horizon = self.gst
        chain = self.store.chain(msg.key)
        if chain is None:
            self.send(msg.client, self.nil_reply(msg.key, msg.op_id))
            return
        version, scanned = chain.find_freshest(
            lambda v: self._visible(v, horizon)
        )
        if version is None:
            version = next(reversed(list(chain)))
            scanned = len(chain)
        self.metrics.record_get_staleness(
            chain.versions_newer_than(version), self._count_unmerged(chain)
        )
        reply = m.GetReply(key=version.key, value=version.value,
                           ut=version.ut, dv=(self.gst,), sr=version.sr,
                           op_id=msg.op_id)
        scan_cost = self._service.chain_scan_per_version_s * scanned
        self.submit_local(scan_cost, self.send, msg.client, reply)

    def nil_reply(self, key: str, op_id: int) -> m.GetReply:
        return m.GetReply(key=key, value=None, ut=0, dv=(self.gst,),
                          sr=self.m, op_id=op_id)

    # ------------------------------------------------------------------
    # PUT: scalar clock discipline
    # ------------------------------------------------------------------
    def handle_put(self, msg: m.PutReq) -> None:
        dt: Micros = msg.dv[0] if msg.dv else 0
        self.metrics.record_block_attempt(BLOCK_PUT_CLOCK)
        if self.clock.peek_micros() > dt:
            self._apply_put(msg)
            return
        blocked_at = self.rt.now

        def resume() -> None:
            self.metrics.record_block_started(BLOCK_PUT_CLOCK, blocked_at,
                                              self.rt.now - blocked_at)
            self.submit_local(self._service.resume_s, self._apply_put, msg)

        self.wait_for_clock(dt, resume)

    def _apply_put(self, msg: m.PutReq) -> None:
        # Versions store no dependency cut under GentleRain (O(1) metadata).
        version = self.create_version(msg.key, msg.value,
                                      (0,) * self.topology.num_dcs)
        self.send(msg.client, m.PutReply(ut=version.ut, op_id=msg.op_id))

    # ------------------------------------------------------------------
    # RO-TX: snapshot at max(GST, client GST, client DT); slices wait
    # ------------------------------------------------------------------
    def handle_ro_tx(self, msg: m.RoTxReq) -> None:
        # The snapshot must cover the client's whole causal past, so it
        # includes the dependency time DT.  When DT leads the GST (the
        # client read a fresh local item) every slice blocks until the
        # stabilization protocol catches up — GentleRain's documented
        # transactional blocking cost, which the scalar *optimistic*
        # variant (occ_scalar) avoids by waiting on version vectors
        # directly instead of the GST.
        dt, gst_c = msg.rdv
        snapshot = max(self.gst, gst_c, dt)
        self.coordinate_tx(msg, [snapshot])

    def handle_slice(self, msg: m.SliceReq) -> None:
        snapshot = msg.tv[0]
        self.metrics.record_block_attempt(BLOCK_GSS_WAIT)
        if self.gst >= snapshot:
            self._serve_slice(msg)
        else:
            self.gst_waiters.wait(
                lambda: self.gst >= snapshot,
                lambda: self._serve_slice(msg),
                BLOCK_GSS_WAIT,
                payload=msg,
            )

    def _serve_slice(self, msg: m.SliceReq) -> None:
        snapshot = msg.tv[0]
        replies = []
        scanned_total = 0
        for key in msg.keys:
            chain = self.store.chain(key)
            if chain is None:
                replies.append(self.nil_reply(key, 0))
                continue
            # Snapshot reads filter *all* versions by the snapshot time so
            # two slices return a consistent cut.
            version, scanned = chain.find_freshest(
                lambda v: v.ut <= snapshot
            )
            scanned_total += scanned
            if version is None:
                version = next(reversed(list(chain)))
            self.metrics.record_tx_staleness(
                chain.versions_newer_than(version),
                self._count_unmerged(chain),
            )
            replies.append(m.GetReply(key=version.key, value=version.value,
                                      ut=version.ut, dv=(self.gst,),
                                      sr=version.sr, op_id=0))
        response = m.SliceResp(versions=replies, tx_id=msg.tx_id)
        scan_cost = self._service.chain_scan_per_version_s * scanned_total
        self.submit_local(scan_cost, self.send_slice_resp, msg, response)

    # ------------------------------------------------------------------
    # Garbage collection: scalar retention
    # ------------------------------------------------------------------
    def _gc_tick(self) -> None:
        horizon = self.gst
        for state in self._active_tx.values():
            tv = state.get("tv")
            if tv:
                horizon = min(horizon, tv[0])
        covered: Callable[[Version], bool] = lambda v: v.ut <= horizon
        self.store.collect_by(covered, [horizon])
        self.rt.schedule(self._protocol.gc_interval_s, self._gc_tick)


class GentleRainClient(CausalClient):
    """Client with two scalars: dependency time DT and observed GST."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.dt: Micros = 0
        self.gst_seen: Micros = 0

    def read_dependency_vector(self) -> list[Micros]:
        return [self.dt, self.gst_seen]

    def get(self, key: str, callback) -> None:
        op_id = self._register(OpType.GET, callback)
        self.send(self._server_for(key),
                  m.GetReq(key=key, rdv=[self.dt, self.gst_seen],
                           client=self.address, op_id=op_id))

    def put(self, key: str, value: Any, callback) -> None:
        op_id = self._register(OpType.PUT, callback)
        self.send(self._server_for(key),
                  m.PutReq(key=key, value=value, dv=[self.dt],
                           client=self.address, op_id=op_id))

    def ro_tx(self, keys, callback) -> None:
        op_id = self._register(OpType.RO_TX, callback)
        coordinator = self.topology.server(self.m, self.address.partition)
        self.send(coordinator,
                  m.RoTxReq(keys=tuple(keys), rdv=[self.dt, self.gst_seen],
                            client=self.address, op_id=op_id))

    def absorb_read(self, reply: m.GetReply) -> None:
        if reply.ut > self.dt:
            self.dt = reply.ut
        if reply.dv and reply.dv[0] > self.gst_seen:
            self.gst_seen = reply.dv[0]

    def _complete_put(self, reply: m.PutReply) -> None:
        op_type, started, callback = self._pending.pop(reply.op_id)
        if reply.ut > self.dt:
            self.dt = reply.ut
        self._finish(op_type, started)
        callback(reply)
