"""Okapi* — hybrid-clock causal consistency with universal stabilization.

A reproduction-scale implementation of Okapi (Didona, Spirovska,
Zwaenepoel — "Okapi: Causally Consistent Geo-Replication Made Faster,
Cheaper and More Available"), the POCC authors' follow-up system.  Two
design choices define it:

* **Hybrid logical clocks** stamp every update.  The logical component can
  jump ahead of the physical clock, so a PUT never waits for the server
  clock to pass the client's dependency time ("faster": non-blocking
  writes, where POCC/Cure/GentleRain all pay Algorithm-2-line-7 waits).
* **Universal stabilization** gates remote visibility on a single scalar,
  the universal stable time (UST): a timestamp below which *every* DC has
  received *every* update.  Client sessions and messages carry two scalars
  regardless of the number of DCs ("cheaper": O(1) metadata), and
  visibility is uniform across DCs ("more available": anything a client
  saw as stable is stable everywhere, so failing over loses nothing).

The documented cost is remote-update visibility latency: an update becomes
readable remotely only after the slowest WAN link has delivered it to the
last DC plus stabilization rounds — worse than Cure*'s per-DC GSS and far
worse than POCC's receive-and-show.  The protocol matrix in
``docs/protocols.md`` places Okapi* on the metadata/visibility trade-off
curve next to the other six protocols.
"""

from repro.protocols.okapi.client import OkapiClient
from repro.protocols.okapi.server import OkapiServer

__all__ = ["OkapiClient", "OkapiServer"]
