"""Session guarantees under each causal protocol.

Causal consistency implies the four classic session guarantees (Terry et
al.): read-your-writes, monotonic reads, monotonic writes and
writes-follow-reads.  These tests exercise each guarantee explicitly
through scripted client sessions, including across partitions and across
DCs, for every safe protocol in the registry.
"""

import pytest

import helpers

SAFE_PROTOCOLS = ("pocc", "cure", "ha_pocc", "gentlerain", "occ_scalar",
                  "cops")


@pytest.fixture(params=SAFE_PROTOCOLS)
def built(request):
    return helpers.make_cluster(protocol=request.param)


def test_read_your_writes_same_partition(built):
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    put_reply = helpers.put(built, client, key, "mine")
    get_reply = helpers.get(built, client, key)
    assert get_reply.ut >= put_reply.ut
    assert get_reply.value == "mine"


def test_read_your_writes_across_partitions(built):
    client = helpers.client_at(built, dc=0)
    key_a = helpers.key_on_partition(built, 0)
    key_b = helpers.key_on_partition(built, 1)
    helpers.put(built, client, key_a, "a")
    put_b = helpers.put(built, client, key_b, "b")
    reply = helpers.get(built, client, key_b, timeout_s=2.0)
    assert reply.ut >= put_b.ut


def test_monotonic_reads_on_one_key(built):
    client = helpers.client_at(built, dc=1)
    key = helpers.key_on_partition(built, 0)
    writer = helpers.client_at(built, dc=0)
    last_order = None
    for i in range(3):
        helpers.put(built, writer, key, i)
        helpers.settle(built, 0.15)
        reply = helpers.get(built, client, key, timeout_s=2.0)
        order = (reply.ut, -reply.sr)
        if last_order is not None:
            assert order >= last_order
        last_order = order


def test_monotonic_writes_order_preserved(built):
    """Two writes by one session replicate in order everywhere (FIFO
    channels + per-node monotonic timestamps)."""
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    first = helpers.put(built, client, key, "first")
    second = helpers.put(built, client, key, "second")
    assert second.ut > first.ut
    helpers.settle(built, 1.0)
    for dc in range(3):
        head = built.servers[built.topology.server(dc, 0)].store.freshest(key)
        assert head.value == "second"


def test_writes_follow_reads(built):
    """A write issued after reading X must never be ordered before X."""
    writer = helpers.client_at(built, dc=0)
    key_x = helpers.key_on_partition(built, 0)
    key_y = helpers.key_on_partition(built, 1)
    x = helpers.put(built, writer, key_x, "X")
    helpers.settle(built, 0.5)

    reader_writer = helpers.client_at(built, dc=1)
    got = helpers.get(built, reader_writer, key_x, timeout_s=2.0)
    y = helpers.put(built, reader_writer, key_y, "Y", timeout_s=2.0)
    if got.ut == x.ut:  # the read saw X (pessimistic may still hide it)
        assert y.ut > x.ut  # Proposition 2 across DCs


def test_session_reset_forgets_guarantees(built):
    """After an explicit session reset (fail-over), stickiness is lost by
    design — the client may legally read older state again."""
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    helpers.put(built, client, key, "v")
    client.reset_session()
    assert client.dv == [0] * 3 or getattr(client, "dt", 0) == 0
    assert client.session_resets == 1
