"""The Cure* client.

Identical session metadata *size* to the POCC client (Algorithm 1): the
paper augments Cure* with GET/PUT support while keeping the metadata
exchanged by clients and servers the same, so the two systems can be
compared fairly.  The one semantic difference: Cure's snapshots cover the
client's entire causal past — reads *and* writes — so the vector attached
to read requests is ``max(RDV_c, DV_c)`` rather than ``RDV_c`` alone
(still a single M-entry vector on the wire).
"""

from __future__ import annotations

from repro.clocks.vector import vec_max
from repro.common.types import Micros
from repro.protocols.base import CausalClient


class CureClient(CausalClient):
    """Client running against Cure* servers."""

    def read_dependency_vector(self) -> list[Micros]:
        return vec_max(self.rdv, self.dv)
