"""Ablation — heartbeat interval ∆ (Algorithm 2 lines 19-26).

The paper sets ∆ = 1 ms and explains that at low load a stalled POCC
operation waits for the next heartbeat to advance the version vector.
Sweeping ∆ should therefore move the low-load blocking time roughly
linearly, while barely affecting throughput."""

import dataclasses

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    ProtocolConfig,
    WorkloadConfig,
)
from repro.harness.experiment import run_experiment

INTERVALS_S = (0.0005, 0.001, 0.004)


def _config(heartbeat_s: float) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(
            num_dcs=3,
            num_partitions=4,
            keys_per_partition=200,
            protocol="pocc",
            protocol_config=ProtocolConfig(heartbeat_interval_s=heartbeat_s),
        ),
        workload=WorkloadConfig(kind="ro_tx", tx_partitions=2,
                                clients_per_partition=4,
                                think_time_s=0.010),
        warmup_s=0.4,
        duration_s=1.6,
        name=f"hb-{heartbeat_s}",
    )


def test_ablation_heartbeat_interval(benchmark):
    results = {}

    def run() -> None:
        for interval in INTERVALS_S:
            results[interval] = run_experiment(_config(interval))

    benchmark.pedantic(run, rounds=1, iterations=1)

    block_times = [
        results[i].mean_block_time_s for i in INTERVALS_S
    ]
    # Larger ∆ -> longer low-load stalls (each sweep point blocks on the
    # next heartbeat); monotone within measurement slack.
    assert block_times[0] < block_times[-1], block_times

    throughputs = [results[i].throughput_ops_s for i in INTERVALS_S]
    # Throughput is essentially unaffected at low load.
    assert max(throughputs) / min(throughputs) < 1.15, throughputs
