"""GC racing a snapshot + log-tail recovery (durability satellite).

Scenario: a snapshot is taken, then a GC round removes covered versions
from the live store, then more updates land (going only to the WAL
tail).  A crash now recovers snapshot + tail — which *resurrects* the
GC'd versions the snapshot still carried.  That must be harmless: for
any read/snapshot vector at or above the GC vector (the only vectors GC
promises anything about), the recovered store must serve exactly the
same visible slice as the live post-GC store; and the next GC round on
the recovered store must be able to re-collect the resurrected garbage.
"""

from repro.clocks.vector import vec_leq
from repro.persistence.snapshot import load_snapshot, snapshot_path, \
    write_snapshot
from repro.persistence.wal import WriteAheadLog
from repro.persistence.manager import recover_directory
from repro.storage.store import PartitionStore
from repro.storage.version import Version


def build_store() -> PartitionStore:
    """Two keys with multi-version chains across 2 DCs."""
    store = PartitionStore()
    store.preload(["a", "b"], num_dcs=2)
    for version in [
        Version(key="a", value=1, sr=0, ut=10, dv=(0, 0)),
        Version(key="a", value=2, sr=1, ut=20, dv=(10, 0)),
        Version(key="a", value=3, sr=0, ut=30, dv=(10, 20)),
        Version(key="b", value=1, sr=1, ut=15, dv=(10, 0)),
        Version(key="b", value=2, sr=0, ut=40, dv=(30, 15)),
    ]:
        store.insert(version)
    return store


def restore_into_store(state) -> PartitionStore:
    """What a server boot does: preload, then merge by identity."""
    store = PartitionStore()
    store.preload(["a", "b"], num_dcs=2)
    for version in state.versions:
        if not store.has_version(version.key, version.sr, version.ut):
            store.insert(version)
    return store


def visible_slice(store: PartitionStore, tv):
    """POCC's slice read: freshest version per key with dv inside tv."""
    out = {}
    for key in ("a", "b"):
        version, _ = store.chain(key).find_freshest(
            lambda v: vec_leq(v.dv, tv)
        )
        out[key] = version.identity() if version else None
    return out


def test_gc_between_snapshot_and_tail_recovers_same_visible_slice(tmp_path):
    live = build_store()

    # 1. Snapshot the pre-GC state and log the pre-GC updates.
    wal = WriteAheadLog(tmp_path, fsync="always")
    for version in live.all_versions():
        if version.ut > 0:  # preload is re-derived, not logged
            wal.append_version(version)
    new_seq = wal.roll()
    write_snapshot(tmp_path, live.all_versions(), vv=[30, 20],
                   wal_seq=new_seq, num_dcs=2)

    # 2. A GC round runs on the live store only.
    gv = [30, 20]
    removed = live.collect(gv)
    assert removed > 0, "scenario must actually collect something"

    # 3. More updates land after the GC: WAL tail only.
    late = Version(key="a", value=4, sr=1, ut=50, dv=(30, 20))
    live.insert(late)
    wal.append_version(late)
    wal.close()

    # 4. Crash: recover snapshot + tail into a fresh store.
    recovered_state = recover_directory(tmp_path)
    assert recovered_state.snapshot_versions == 7  # 2 preload + 5 writes
    recovered = restore_into_store(recovered_state)

    # The recovered store is a superset (GC'd versions resurrected)...
    assert recovered.total_versions() >= live.total_versions()
    # ...but every read vector at or above the GC vector sees the same
    # slice, and the same freshest version per key.
    for tv in ([30, 20], [30, 50], [40, 20], [50, 50], [100, 100]):
        assert visible_slice(recovered, tv) == visible_slice(live, tv), tv
    for key in ("a", "b"):
        assert recovered.freshest(key).identity() \
            == live.freshest(key).identity()

    # And the next GC round converges both stores to identical chains:
    # the resurrected garbage is re-collected, and live's own stale
    # retainees (kept only because GC ran before the late update) go too.
    recovered.collect(gv)
    live.collect(gv)
    for key in ("a", "b"):
        assert [v.identity() for v in recovered.chain(key)] \
            == [v.identity() for v in live.chain(key)]


def test_snapshot_of_post_gc_store_stays_consistent(tmp_path):
    """The other interleaving: GC first, snapshot after.  The snapshot
    captures the smaller store; recovery reproduces it — plus the
    deterministic preload, which the next GC round collects again."""
    live = build_store()
    gv = [30, 20]
    live.collect(gv)
    write_snapshot(tmp_path, live.all_versions(), vv=[40, 20],
                   wal_seq=1, num_dcs=2)
    loaded = load_snapshot(snapshot_path(tmp_path))
    assert len(loaded.versions) == live.total_versions()
    recovered = restore_into_store(recover_directory(tmp_path))
    for key in ("a", "b"):
        live_ids = {v.identity() for v in live.chain(key)}
        recovered_ids = {v.identity() for v in recovered.chain(key)}
        # Nothing GC'd comes back except the (re-derived) preload...
        assert live_ids <= recovered_ids
        assert recovered_ids - live_ids <= {(key, 0, 0)}
        assert recovered.freshest(key).identity() \
            == live.freshest(key).identity()
    recovered.collect(gv)
    for key in ("a", "b"):
        assert [v.identity() for v in recovered.chain(key)] \
            == [v.identity() for v in live.chain(key)]
