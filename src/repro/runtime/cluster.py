"""Boot and drive a live (asyncio TCP) cluster.

:class:`LiveCluster` instantiates the same protocol cores, workload
generators, metrics registry and causal checker as the simulated harness
(:mod:`repro.harness.builders`), but wires them to
:class:`repro.runtime.transport.LiveRuntime` adapters: every server is a
TCP listener on localhost (or the configured host), every client an
actual closed-loop TCP driver, and the checker verifies the cluster's
*recorded* operation history exactly as it does a simulated one.

:func:`run_live_experiment` is the live-mode smoke experiment: boot,
warm up, measure for ``config.duration_s`` of wall-clock time, quiesce,
then report throughput/latency plus the checker verdict.  It backs both
``repro-bench-live`` and the CI ``live-smoke`` job.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.config import ExperimentConfig
from repro.common.errors import ReproError
from repro.common.types import Address
from repro.clocks.physical import PhysicalClock
from repro.cluster.ring import initial_view
from repro.cluster.topology import KeyPools, Topology
from repro.harness import seeds
from repro.metrics.collectors import MetricsRegistry
from repro.protocols.registry import client_class, server_class
from repro.runtime import codec
from repro.runtime.loops import running_loop_name
from repro.runtime.transport import (
    AddressBook,
    LiveHub,
    LiveRuntime,
    metrics_port_map,
)
from repro.metrics.histogram import LogHistogram
from repro.sim.rng import RngRegistry
from repro.verification.checker import CausalChecker
from repro.workload.driver import DriverBase, make_driver
from repro.workload.generators import make_workload

#: How long quiescing waits for in-flight operations after drivers stop.
SETTLE_TIMEOUT_S = 10.0


@dataclass(slots=True)
class LiveReport:
    """Everything measured in one live run, in plain-data form."""

    protocol: str
    num_dcs: int
    num_partitions: int
    serializer: str
    duration_s: float
    total_ops: int
    throughput_ops_s: float
    op_stats: dict[str, dict[str, float]]
    verification: dict[str, int]
    violations: list[str]
    history_events: int
    messages_sent: int
    messages_delivered: int
    bytes_sent: int
    clean_shutdown: bool
    #: Driver model the run used ("closed" or "open").
    arrival: str = "closed"
    #: Driver-side latency percentiles per op kind (plus "all"), measured
    #: from the *intended* arrival (open loop: queueing delay included):
    #: ``{"get": {"count", "mean", "p50", "p90", "p99", "max"}, …}``.
    latency: dict = field(default_factory=dict)
    #: Open loop only: arrivals discarded at the drivers' backlog cap
    #: (nonzero means the offered rate was far beyond capacity).
    dropped_arrivals: int = 0
    #: Update-visibility latency (remote-update creation to readability
    #: here), ``LogHistogram.summary()`` shape — what replication
    #: batching trades against inter-DC message count.
    visibility: dict = field(default_factory=dict)
    #: Socket writes the transport issued (>= 1 frame each) and how many
    #: frames shared a write with others — the coalescing factor.
    batches_sent: int = 0
    batched_frames: int = 0
    errors: list[str] = field(default_factory=list)
    #: Per-partition durability counters (empty when persistence is off):
    #: ``"dcD-pP" -> {recovered_versions, wal_records_appended, …}``.
    persistence: dict = field(default_factory=dict)
    #: The event loop that actually ran ("uvloop" or "asyncio") — numbers
    #: from different loops are not directly comparable.
    event_loop: str = "asyncio"
    #: ``os.cpu_count()`` of the measuring host; a 1 here explains away
    #: any absent multi-process speedup.
    cpu_count: int = 0
    #: CPUs this process was allowed to run on (``os.sched_getaffinity``),
    #: empty where the platform has no affinity API.  Supervised
    #: deployments pin children, so the report shows the actual placement.
    cpu_affinity: list = field(default_factory=list)
    #: Fault-injection accounting from the transport (empty when no chaos
    #: ran): ``chaos_dropped``/``chaos_delayed`` totals, per-message-kind
    #: drops (``dropped_by_type``) and frames that died with a crashed
    #: sender (``messages_expired``, the live analogue of the simulator's
    #: counter of the same name) — chaos-matrix cells assert on these
    #: directly instead of parsing logs.
    faults: dict = field(default_factory=dict)
    #: Bound port of this process's ``/metrics`` endpoint (None when
    #: telemetry is off).
    metrics_port: int | None = None

    @property
    def passed(self) -> bool:
        """The CI gate: work happened, causally, and shutdown was clean."""
        return (self.total_ops > 0 and not self.violations
                and self.clean_shutdown)

    def summary_text(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"live cluster [{self.protocol}] "
            f"{self.num_dcs} DCs x {self.num_partitions} partitions "
            f"({self.serializer} frames, {self.arrival} loop): {verdict}",
            f"  throughput      : {self.throughput_ops_s:,.0f} ops/s "
            f"({self.total_ops} ops in {self.duration_s:.2f}s)",
            f"  verification    : {self.verification['violations']} "
            f"violations over {self.verification['reads_checked']} reads "
            f"/ {self.verification['tx_reads_checked']} tx-reads "
            f"({self.history_events} history events)",
            f"  transport       : {self.messages_sent:,} frames sent, "
            f"{self.messages_delivered:,} delivered, "
            f"{self.bytes_sent:,} bytes, "
            f"{self.batches_sent:,} writes "
            f"({self.batched_frames:,} frames coalesced)",
            f"  shutdown        : "
            f"{'clean' if self.clean_shutdown else 'NOT clean'}",
        ]
        for kind in sorted(self.latency):
            stats = self.latency[kind]
            lines.append(
                f"  latency [{kind:>5}] : "
                f"p50 {stats['p50'] * 1000:.2f}ms  "
                f"p90 {stats['p90'] * 1000:.2f}ms  "
                f"p99 {stats['p99'] * 1000:.2f}ms  "
                f"({stats['count']} ops)"
            )
        if self.dropped_arrivals:
            lines.append(f"  dropped arrivals: {self.dropped_arrivals} "
                         f"(offered rate beyond backlog cap)")
        if self.visibility.get("count"):
            vis = self.visibility
            lines.append(
                f"  visibility      : p50 {vis['p50'] * 1000:.2f}ms  "
                f"p99 {vis['p99'] * 1000:.2f}ms  "
                f"({vis['count']} remote updates)"
            )
        if self.faults:
            lines.append(
                f"  faults          : "
                f"{self.faults.get('chaos_dropped', 0)} dropped, "
                f"{self.faults.get('chaos_delayed', 0)} delayed, "
                f"{self.faults.get('messages_expired', 0)} expired"
            )
        for violation in self.violations[:5]:
            lines.append(f"    violation: {violation}")
        for error in self.errors[:5]:
            lines.append(f"    error: {error}")
        return "\n".join(lines)


class LiveCluster:
    """One live deployment: servers, clients and drivers on real sockets.

    ``serve_addresses`` restricts which *server* endpoints this process
    hosts (multi-process deployments boot one ``LiveCluster`` per process
    with disjoint address sets); ``with_clients=False`` hosts servers
    only, for a pure ``repro-serve`` process driven from elsewhere.

    ``client_shard=(index, total)`` hosts only every ``total``-th client
    session (those whose deterministic position ``% total == index``):
    the multi-process load generator boots one client-only shard per
    worker process against external servers, and the shards partition
    the exact client set a single process would host — same addresses,
    same per-address seeds, so the sharded workload is the unsharded
    workload, split.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        host: str = "127.0.0.1",
        base_port: int = 0,
        serve_addresses: Sequence[Address] | None = None,
        with_clients: bool = True,
        client_shard: tuple[int, int] | None = None,
    ):
        config.validate()
        self.config = config
        cluster = config.cluster
        view = (initial_view(cluster.num_partitions,
                             cluster.membership.initial_members,
                             cluster.membership.vnodes)
                if cluster.membership.enabled else None)
        self.topology = Topology(cluster.num_dcs, cluster.num_partitions,
                                 view)
        self.pools = KeyPools(self.topology, cluster.keys_per_partition)
        self.metrics = MetricsRegistry()
        self.rng = RngRegistry(config.seed)
        self.checker = CausalChecker(record_history=True) \
            if config.verify else None
        # The book always covers the clients: a server-only process still
        # needs their (deterministic) ports to dial replies at.
        self.book = AddressBook.for_topology(
            self.topology,
            clients_per_partition=config.workload.clients_per_partition,
            host=host,
            base_port=base_port,
        )
        self.hub = LiveHub(self.book, tuning=cluster.transport)
        self.servers: dict[Address, Any] = {}
        self.clients: list[Any] = []
        self.drivers: list[DriverBase] = []
        #: Durability managers of the hosted servers (persistence on);
        #: values are :class:`repro.persistence.manager.
        #: PartitionDurability` (imported lazily: persistence depends on
        #: the codec, so a module-level import here would be circular).
        self.durability: dict[Address, Any] = {}
        #: What each hosted server recovered from disk at boot.
        self.recovered: dict[Address, Any] = {}
        self._needs_catchup: list[Any] = []
        self._with_clients = with_clients
        self._serve_addresses = (
            set(serve_addresses) if serve_addresses is not None else None
        )
        if client_shard is not None:
            index, total = client_shard
            if total < 1 or not 0 <= index < total:
                raise ReproError(
                    f"client_shard must be (index, total) with "
                    f"0 <= index < total, not {client_shard!r}"
                )
        self._client_shard = client_shard
        self._built = False
        self._host = host
        # Live telemetry (off by default; see TelemetryConfig and
        # docs/observability.md).  Created in _build() *before* the cores:
        # every ProtocolCore caches the hooks at construction.
        self.telemetry = None
        self.trace = None
        self.metrics_server = None
        self.metrics_port: int | None = None
        self._loop_probe = None

    # ------------------------------------------------------------------
    # Construction (mirrors harness.builders.build_cluster)
    # ------------------------------------------------------------------
    def _hosted(self, address: Address) -> bool:
        if self._serve_addresses is None:
            return True
        return address in self._serve_addresses

    def _build(self) -> None:
        # Deferred into start(): protocol cores arm their periodic timers
        # during construction, which needs the running event loop.
        cluster = self.config.cluster
        persistence = self.config.persistence
        if cluster.telemetry.enabled:
            self._init_telemetry()
        server_cls = server_class(cluster.protocol)
        for address in self.topology.all_servers():
            if not self._hosted(address):
                continue
            durability = recovered = None
            if persistence.enabled:
                from repro.persistence.manager import PartitionDurability
                durability = PartitionDurability(
                    persistence.data_dir, address, persistence
                )
                # Read the disk *before* the server exists: recovery
                # must see the clean-boundary state, not a live WAL.
                recovered = durability.recover()
                self.durability[address] = durability
                self.recovered[address] = recovered
            clock = PhysicalClock.sample(
                self.hub, cluster.clocks,
                self.rng.stream(seeds.clock_stream(address)),
            )
            runtime = self.hub.runtime(address)
            runtime.durability = durability
            if self.telemetry is not None:
                runtime.telemetry = self.telemetry
                runtime.trace = self.trace
            server = server_cls(runtime, clock, self.topology, cluster,
                                self.metrics)
            server.store.preload(self.pools.pool(address.partition),
                                 num_dcs=cluster.num_dcs)
            if recovered is not None and recovered.prior_boot:
                server.restore_durable_state(recovered)
                # This is a *re*start: whatever replication the crash
                # window dropped must be pulled back from the peers
                # before clients may read here.  Gated on prior_boot,
                # not had_state: a server killed before its first record
                # became durable still served pre-crash reads.
                self._needs_catchup.append(server)
            if (recovered is not None and recovered.view_epoch >= 0
                    and server._membership is not None):
                # The WAL's newest committed view outranks the config's
                # initial one: a server restarted after a reshard must
                # not boot believing the pre-reshard placement.
                server._membership.adopt_recovered(
                    recovered.view_epoch, recovered.view_members,
                    recovered.view_vnodes)
            self.servers[address] = server
            if self.telemetry is not None:
                self._register_server_telemetry(address, server, durability)

        if not self._with_clients:
            return
        client_cls = client_class(cluster.protocol)
        workload_cfg = self.config.workload
        position = -1
        for dc in range(self.topology.num_dcs):
            for partition in range(self.topology.num_partitions):
                for index in range(workload_cfg.clients_per_partition):
                    position += 1
                    if self._client_shard is not None:
                        shard_index, shard_total = self._client_shard
                        if position % shard_total != shard_index:
                            continue
                    address = self.topology.client(dc, partition, index)
                    clock = PhysicalClock.sample(
                        self.hub, cluster.clocks,
                        self.rng.stream(seeds.clock_stream(address)),
                    )
                    runtime = self.hub.runtime(address)
                    if self.telemetry is not None:
                        runtime.telemetry = self.telemetry
                        runtime.trace = self.trace
                    client = client_cls(runtime, clock, self.topology,
                                        cluster, self.metrics)
                    workload = make_workload(
                        workload_cfg, self.pools,
                        self.rng.stream(seeds.workload_stream(address)),
                    )
                    driver = make_driver(
                        sim=runtime,
                        client=client,
                        workload=workload,
                        workload_config=workload_cfg,
                        rng=self.rng.stream(seeds.driver_stream(address)),
                        checker=self.checker,
                    )
                    self.clients.append(client)
                    self.drivers.append(driver)

    # ------------------------------------------------------------------
    # Telemetry (live observability; see docs/observability.md)
    # ------------------------------------------------------------------
    def _process_label(self) -> str:
        """This process's identity in trace filenames and ``/vars.json``:
        the first hosted server slot, the load-generator shard index, or
        the pid as a last resort."""
        for address in self.topology.all_servers():
            if self._hosted(address):
                return f"dc{address.dc}-p{address.partition}"
        if self._client_shard is not None:
            return f"loadgen-{self._client_shard[0]}"
        return f"pid{os.getpid()}"

    def _init_telemetry(self) -> None:
        from repro.obs.telemetry import Telemetry
        telemetry = Telemetry()
        # Declare every family up front so each endpoint exposes the full
        # set from the first scrape (the CI gate checks presence before
        # traffic necessarily produced samples).
        telemetry.family(
            "repro_visibility_lag_seconds", "summary",
            "Remote-update creation to local readability, seconds.")
        telemetry.family(
            "repro_wal_fsync_seconds", "summary",
            "Wall-clock duration of WAL fsyncs, seconds.")
        telemetry.family(
            "repro_stable_lag_seconds", "gauge",
            "Stability horizon (VV / GSS / GST / UST) behind the local "
            "clock, seconds.")
        telemetry.family(
            "repro_wait_queue_depth", "gauge",
            "Operations parked on predicate wait-queues.")
        telemetry.family(
            "repro_repl_batch_occupancy", "gauge",
            "Versions buffered in the replication batcher.")
        telemetry.family(
            "repro_event_loop_lag_seconds", "gauge",
            "How late the telemetry probe's event-loop timer fired, "
            "seconds.")
        telemetry.family(
            "repro_link_fault_drops_total", "counter",
            "Frames dropped by injected link faults, by channel and "
            "message kind.")
        telemetry.family(
            "repro_view_epoch", "gauge",
            "Committed cluster-view epoch (0 = boot view / membership "
            "off).")
        telemetry.family(
            "repro_keys_migrated_total", "counter",
            "Keys this server donated during reshard handoffs.")
        telemetry.family(
            "repro_migration_bytes_total", "counter",
            "MigrateChunk bytes this server streamed as a donor.")
        telemetry.family(
            "repro_not_owner_redirects_total", "counter",
            "Client operations answered with NotOwner redirects.")
        stats = self.hub.stats
        telemetry.gauge("repro_transport_frames_sent_total",
                        lambda: stats.messages_sent, kind="counter",
                        help_text="Frames handed to the socket layer.")
        telemetry.gauge("repro_transport_frames_delivered_total",
                        lambda: stats.messages_delivered, kind="counter",
                        help_text="Frames decoded and dispatched inbound.")
        telemetry.gauge("repro_transport_bytes_sent_total",
                        lambda: stats.bytes_sent, kind="counter",
                        help_text="Frame bytes handed to the socket "
                                  "layer.")
        telemetry.gauge("repro_transport_frames_expired_total",
                        lambda: stats.messages_dropped, kind="counter",
                        help_text="Frames that died with their (crashed) "
                                  "sender.")
        link_faults = self.hub._link_faults

        def _fault_samples():
            for (src, dst), fault in link_faults.items():
                channel = (("src_dc", str(src)), ("dst_dc", str(dst)))
                if fault.dropped_by_type:
                    for kind, count in sorted(fault.dropped_by_type.items()):
                        yield ("repro_link_fault_drops_total",
                               channel + (("kind", kind),), count)
                elif fault.dropped:
                    yield ("repro_link_fault_drops_total",
                           channel + (("kind", "unknown"),), fault.dropped)

        telemetry.collector(_fault_samples)
        # Visibility lag flows continuously into the endpoint, independent
        # of the report's measurement window (see MetricsRegistry).
        self.metrics.visibility_sink = telemetry.summary(
            "repro_visibility_lag_seconds")
        cfg = self.config.cluster.telemetry
        if cfg.trace:
            from repro.obs.tracing import TraceLog
            path = os.path.join(cfg.trace_dir,
                                f"trace-{self._process_label()}.jsonl")
            hub = self.hub
            self.trace = TraceLog(path, cfg.trace_sample_every,
                                  now_fn=lambda: hub.now)
        self.telemetry = telemetry

    def _register_server_telemetry(self, address: Address, server: Any,
                                   durability: Any) -> None:
        telemetry = self.telemetry
        labels = (("dc", str(address.dc)),
                  ("partition", str(address.partition)))
        telemetry.gauge("repro_stable_lag_seconds",
                        server.stable_lag_seconds, labels=labels)
        waiters = server.waiters
        telemetry.gauge("repro_wait_queue_depth",
                        lambda: len(waiters), labels=labels)
        batcher = server._batcher
        if batcher is not None:
            telemetry.gauge("repro_repl_batch_occupancy",
                            lambda: batcher.pending, labels=labels)
        telemetry.gauge("repro_view_epoch",
                        lambda: server.view_epoch, labels=labels)
        telemetry.gauge("repro_keys_migrated_total",
                        lambda: server.keys_migrated, labels=labels,
                        kind="counter")
        telemetry.gauge("repro_migration_bytes_total",
                        lambda: server.migration_bytes, labels=labels,
                        kind="counter")
        telemetry.gauge("repro_not_owner_redirects_total",
                        lambda: server.not_owner_redirects, labels=labels,
                        kind="counter")
        wal = durability.wal if durability is not None else None
        if wal is not None:
            hist = telemetry.summary("repro_wal_fsync_seconds",
                                     labels=labels)
            wal.sync_timing = hist.record

    async def _start_telemetry(self) -> None:
        """Bind the scrape endpoint and arm the loop-lag probe (after
        ``hub.start()``: both need the running loop)."""
        if self.telemetry is None:
            return
        from repro.obs.httpd import MetricsServer
        from repro.obs.telemetry import LoopLagProbe
        cfg = self.config.cluster.telemetry
        probe = LoopLagProbe(self.hub.loop, cfg.loop_probe_interval_s)
        probe.start()
        self._loop_probe = probe
        self.telemetry.gauge("repro_event_loop_lag_seconds",
                             lambda: probe.last_lag_s)
        # Deterministic slot: this process binds at its *first hosted
        # server's* position of the cluster-wide port map (the same map
        # repro-top derives from the config).  Processes hosting no
        # servers (load-generator shards) take an ephemeral port.
        host, port = self._host, 0
        if cfg.metrics_base_port and self.servers:
            ports = metrics_port_map(self.topology, cfg.metrics_base_port,
                                     host=self._host)
            host, port = ports[next(iter(self.servers))]
        meta = {
            "protocol": self.config.cluster.protocol,
            "process_label": self._process_label(),
            "servers": [f"dc{a.dc}-p{a.partition}" for a in self.servers],
        }
        server = MetricsServer(self.telemetry, host=host, port=port,
                               meta=meta)
        self.metrics_port = await server.start()
        self.metrics_server = server

    async def stop_telemetry(self) -> None:
        """Tear the observability side down (idempotent); called before
        the hub closes so a scrape never races a dying loop."""
        if self._loop_probe is not None:
            self._loop_probe.stop()
            self._loop_probe = None
        if self.metrics_server is not None:
            await self.metrics_server.close()
            self.metrics_server = None
        if self.trace is not None:
            self.trace.close()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Instantiate the cores and bind every hosted listener."""
        if not self._built:
            self._build()
            self._built = True
        # Group commit needs the running loop; arm it before any traffic
        # (catch-up replication below already appends through it).
        for durability in self.durability.values():
            durability.enable_group_commit(self.hub.loop.call_soon)
        await self.hub.start()
        await self._start_telemetry()
        # Catch-up only once the listeners are bound: the peers' replies
        # (and their reconnecting replication channels) need somewhere
        # to land.
        for server in self._needs_catchup:
            server.begin_catchup()
        self._needs_catchup = []
        self._arm_snapshot_timers()

    def _arm_snapshot_timers(self) -> None:
        interval = self.config.persistence.snapshot_interval_s
        if not interval:
            return
        for address, durability in self.durability.items():
            # Stagger like GC so co-hosted partitions do not all fsync
            # a snapshot at the same instant.
            server = self.servers[address]
            server.rt.schedule(interval * (1.0 + 0.01 * address.partition),
                               self._snapshot_tick, server, durability)

    def _snapshot_tick(self, server, durability) -> None:
        # Re-arm first: a transient snapshot failure (ENOSPC, EIO) must
        # not silently end snapshotting — and WAL truncation — forever.
        # The raised error still lands in hub.errors via the timer.
        server.rt.schedule(self.config.persistence.snapshot_interval_s,
                           self._snapshot_tick, server, durability)
        durability.snapshot(server.store, server.vv,
                            self.config.cluster.num_dcs)

    def flush_persistence(self) -> bool:
        """Force every WAL onto stable storage; False (and an error
        recorded) if any flush fails.  Called before the transport goes
        down so an acknowledged write can never outlive its log."""
        ok = True
        for address, durability in self.durability.items():
            try:
                durability.flush()
            except Exception as exc:
                self.hub.errors.append(
                    f"WAL flush failed for {address}: {exc!r}"
                )
                ok = False
        return ok

    def close_persistence(self) -> None:
        for address, durability in self.durability.items():
            try:
                durability.close()
            except Exception as exc:
                self.hub.errors.append(
                    f"WAL close failed for {address}: {exc!r}"
                )

    async def run(self) -> LiveReport:
        """The measured lifecycle: warmup → measure → quiesce → report."""
        await self.start()
        if not self.drivers:
            raise ReproError("this LiveCluster hosts no drivers to run")
        stagger = min(self.config.workload.think_time_s or 0.01, 0.02)
        for driver in self.drivers:
            driver.start(stagger_s=stagger)
        await asyncio.sleep(self.config.warmup_s)
        self.metrics.arm(self.hub.now)
        # Latency histograms restart with the window: warmup ramp-up ops
        # must not dilute the reported percentiles (completions after
        # the window keep recording — they are the window's own tail).
        for driver in self.drivers:
            driver.reset_latency()
        await asyncio.sleep(self.config.duration_s)
        self.metrics.disarm(self.hub.now)
        for driver in self.drivers:
            driver.stop()
        clean = await self._quiesce()
        clean = self.flush_persistence() and clean
        # A final flush can release acknowledgements held behind the last
        # group-commit sync; drain once more so they reach the wire.
        await self.hub.drain()
        report = self._report(clean and self.hub.clean)
        await self.stop_telemetry()
        await self.hub.close()
        self.close_persistence()
        return report

    async def _quiesce(self, timeout_s: float = SETTLE_TIMEOUT_S) -> bool:
        """Wait for in-flight operations, then flush outgoing queues."""
        deadline = self.hub.now + timeout_s
        while any(client.has_pending for client in self.clients):
            if self.hub.now >= deadline:
                self.hub.errors.append(
                    "quiesce timeout: operations still in flight after "
                    f"{timeout_s}s (blocked forever?)"
                )
                return False
            await asyncio.sleep(0.05)
        await self.hub.drain()
        return True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, clean: bool) -> LiveReport:
        metrics = self.metrics
        if self.checker is not None:
            verification = self.checker.summary()
            violations = [v.describe() for v in self.checker.violations]
            history_events = (
                len(self.checker.history) if self.checker.history else 0
            )
        else:
            verification = {"violations": 0, "reads_checked": 0,
                            "tx_reads_checked": 0, "writes_seen": 0,
                            "unknown_dependency_reads": 0,
                            "session_resets": 0}
            violations = []
            history_events = 0
        persistence_stats = {}
        for address, durability in self.durability.items():
            recovered = self.recovered.get(address)
            wal = durability.wal
            persistence_stats[f"dc{address.dc}-p{address.partition}"] = {
                "recovered_versions": (len(recovered.versions)
                                       if recovered else 0),
                "recovered_wal_records": (recovered.wal_records
                                          if recovered else 0),
                "torn_bytes_truncated": (recovered.torn_bytes_truncated
                                         if recovered else 0),
                "wal_records_appended": (wal.stats.records_appended
                                         if wal else 0),
                "wal_bytes_appended": (wal.stats.bytes_appended
                                       if wal else 0),
                "wal_syncs": wal.stats.syncs if wal else 0,
                "wal_group_commits": (wal.stats.group_commits
                                      if wal else 0),
                "wal_max_batch_records": (wal.stats.max_batch_records
                                          if wal else 0),
                "snapshots_written": durability.snapshots_written,
            }
        latency = self._merged_latency()
        dropped = sum(getattr(d, "dropped_arrivals", 0)
                      for d in self.drivers)
        stats = self.hub.stats
        visibility = metrics.visibility_lag.summary()
        if not visibility.get("count"):
            # Explicit "measured, zero samples" marker: an all-zero
            # summary downstream reads as "zero latency", which is a very
            # different claim from "no remote update was read".
            visibility = {"samples": 0}
        faults: dict[str, Any] = {}
        if (stats.chaos_dropped or stats.chaos_delayed
                or self.hub._link_faults):
            dropped_by_type: dict[str, int] = {}
            for fault in self.hub._link_faults.values():
                for kind, count in fault.dropped_by_type.items():
                    dropped_by_type[kind] = (dropped_by_type.get(kind, 0)
                                             + count)
            faults = {
                "chaos_dropped": stats.chaos_dropped,
                "chaos_delayed": stats.chaos_delayed,
                "dropped_by_type": dropped_by_type,
                "messages_expired": stats.messages_dropped,
            }
        return LiveReport(
            protocol=self.config.cluster.protocol,
            num_dcs=self.topology.num_dcs,
            num_partitions=self.topology.num_partitions,
            serializer=codec.SERIALIZER,
            duration_s=metrics.window_duration_s,
            total_ops=metrics.total_ops(),
            throughput_ops_s=metrics.throughput_ops_s(),
            op_stats={
                op.value: op_stats.latency.summary()
                for op, op_stats in metrics.ops.items()
            },
            verification=verification,
            violations=violations,
            history_events=history_events,
            messages_sent=stats.messages_sent,
            messages_delivered=stats.messages_delivered,
            bytes_sent=stats.bytes_sent,
            clean_shutdown=clean,
            arrival=self.config.workload.arrival,
            latency=latency,
            dropped_arrivals=dropped,
            visibility=visibility,
            batches_sent=stats.batches_sent,
            batched_frames=stats.batched_frames,
            errors=list(self.hub.errors),
            persistence=persistence_stats,
            event_loop=running_loop_name(),
            cpu_count=os.cpu_count() or 0,
            cpu_affinity=(sorted(os.sched_getaffinity(0))
                          if hasattr(os, "sched_getaffinity") else []),
            faults=faults,
            metrics_port=self.metrics_port,
        )

    def merged_latency_histograms(self) -> dict[str, LogHistogram]:
        """Per-kind driver histograms folded across this process's
        drivers, still as mergeable histograms — the multi-process load
        generator ships these to the parent, which folds the workers'
        shards exactly as :meth:`_merged_latency` folds drivers."""
        merged: dict[str, LogHistogram] = {}
        for driver in self.drivers:
            for kind, hist in driver.latency.items():
                into = merged.get(kind)
                if into is None:
                    merged[kind] = into = LogHistogram()
                into.merge(hist)
        return merged

    def _merged_latency(self) -> dict[str, dict[str, float]]:
        """Fold every driver's per-kind histograms into p50/p90/p99.

        Driver histograms measure from the *intended* arrival, so under
        the open loop these percentiles include queueing delay — the
        number a latency-vs-throughput comparison must report.
        """
        merged = self.merged_latency_histograms()
        overall = LogHistogram()
        for hist in merged.values():
            overall.merge(hist)
        if overall.count:
            merged["all"] = overall
        return {
            kind: {
                "count": hist.count,
                "mean": hist.mean,
                "p50": hist.percentile(50),
                "p90": hist.percentile(90),
                "p99": hist.percentile(99),
                "max": hist.max_seen,
            }
            for kind, hist in merged.items()
        }


def run_live_experiment(
    config: ExperimentConfig,
    host: str = "127.0.0.1",
    base_port: int = 0,
) -> LiveReport:
    """Boot a full live cluster in-process, run it, and report.

    The live-mode smoke experiment: the same protocol cores as the
    simulation serve a seeded workload over real TCP, and the recorded
    history is verified by the causal checker.  ``base_port=0`` uses
    ephemeral ports (collision-free; the default for tests).
    """
    cluster = LiveCluster(config, host=host, base_port=base_port)
    return asyncio.run(cluster.run())
