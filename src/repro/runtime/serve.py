"""``repro-serve``: boot a live key-value cluster over asyncio TCP.

Examples::

    # All servers of a 2-DC x 2-partition POCC cluster in one process:
    repro-serve --protocol pocc --dcs 2 --partitions 2 --base-port 7400

    # One server per process (multi-process deployment; every process
    # derives the same port map from the shared config):
    repro-serve --config cluster.json --dc 0 --partition 1

    # CI mode: serve for 15 seconds, then shut down cleanly:
    repro-serve --protocol cure --dcs 2 --partitions 2 --duration 15

The cluster is driven by ``repro-bench-live`` (same config,
``--external-servers``) or by any client process built on
:class:`repro.runtime.cluster.LiveCluster`.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.cluster.topology import Topology
from repro.runtime.cli import (
    add_deployment_args,
    config_from_args,
    warn_slow_serializer,
)
from repro.runtime.cluster import LiveCluster
from repro.runtime.loops import install_event_loop


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a live geo-replicated causal key-value cluster "
                    "(the paper's protocols over real TCP).",
    )
    add_deployment_args(parser)
    parser.add_argument("--dc", type=int, metavar="D",
                        help="host only servers of this DC "
                             "(with --partition: only that one server)")
    parser.add_argument("--partition", type=int, metavar="P",
                        help="host only servers of this partition "
                             "(requires --dc)")
    parser.add_argument("--duration", type=float, metavar="S",
                        help="serve for S seconds then exit cleanly "
                             "(default: until SIGINT/SIGTERM)")
    return parser


def _served_addresses(args, topology):
    if args.dc is None:
        if args.partition is not None:
            raise SystemExit("--partition requires --dc")
        return None  # every server
    if args.partition is not None:
        return [topology.server(args.dc, args.partition)]
    # Bounds-check the DC (dc_servers does not): a typo'd --dc must fail
    # loudly, not serve zero servers while clients burn connect retries.
    topology.server(args.dc, 0)
    return list(topology.dc_servers(args.dc))


async def _serve(cluster: LiveCluster, duration: float | None) -> int:
    await cluster.start()
    hosted = sorted(str(addr) for addr in cluster.servers)
    print(f"serving {len(hosted)} server(s): {', '.join(hosted)}",
          file=sys.stderr)
    for addr in cluster.servers:
        host, port = cluster.book.lookup(addr)
        print(f"  {addr} listening on {host}:{port}", file=sys.stderr)
    if cluster.metrics_port is not None:
        print(f"  metrics on http://{cluster._host}:"
              f"{cluster.metrics_port}/metrics", file=sys.stderr)
    for addr, recovered in cluster.recovered.items():
        if recovered.had_state:
            print(f"  {addr} recovered {len(recovered.versions)} "
                  f"version(s) ({recovered.wal_records} log records, "
                  f"{recovered.torn_bytes_truncated} torn byte(s) "
                  f"truncated)", file=sys.stderr)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, stop.set)
    if duration is not None:
        loop.call_later(duration, stop.set)
    await stop.wait()
    # Shutdown ordering matters: force the WAL onto stable storage while
    # the handlers that might still append to it can no longer run past
    # us (we are on their event loop), *then* take the transport down.
    # An acknowledged write must never outlive its log.
    flushed = cluster.flush_persistence()
    await cluster.stop_telemetry()
    await cluster.hub.close()
    cluster.close_persistence()
    if not cluster.hub.clean or not flushed:
        for error in cluster.hub.errors:
            print(f"error: {error}", file=sys.stderr)
        return 1
    print("clean shutdown", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    warn_slow_serializer()
    config = config_from_args(args)
    topology = Topology(config.cluster.num_dcs,
                        config.cluster.num_partitions)
    cluster = LiveCluster(
        config,
        host=args.host,
        base_port=args.base_port,
        serve_addresses=_served_addresses(args, topology),
        with_clients=False,
    )
    loop_name = install_event_loop(config.cluster.transport.event_loop)
    print(f"event loop: {loop_name}", file=sys.stderr)
    return asyncio.run(_serve(cluster, args.duration))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
