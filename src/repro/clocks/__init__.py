"""Clock substrates: loosely synchronized physical clocks and vector algebra.

POCC assigns every update a physical timestamp and a dependency vector with
one entry per DC (Section IV).  :mod:`repro.clocks.physical` models per-node
NTP-style clocks (bounded offset + drift, monotonic output);
:mod:`repro.clocks.vector` provides the entry-wise max / min / <= operations
used throughout Algorithms 1 and 2; :mod:`repro.clocks.hlc` adds a hybrid
logical clock as an extension.
"""

from repro.clocks.hlc import HybridLogicalClock
from repro.clocks.physical import PhysicalClock
from repro.clocks.vector import (
    VectorClock,
    vec_covers,
    vec_leq,
    vec_max,
    vec_max_inplace,
    vec_min,
    vec_zero,
)

__all__ = [
    "HybridLogicalClock",
    "PhysicalClock",
    "VectorClock",
    "vec_covers",
    "vec_leq",
    "vec_max",
    "vec_max_inplace",
    "vec_min",
    "vec_zero",
]
