"""Tests (incl. property-based) for the log-bucket histogram."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.histogram import LogHistogram


def test_empty_histogram():
    hist = LogHistogram()
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.percentile(50) == 0.0
    assert hist.summary()["count"] == 0


def test_mean_min_max():
    hist = LogHistogram()
    for value in (0.001, 0.002, 0.003):
        hist.record(value)
    assert hist.mean == pytest.approx(0.002)
    assert hist.min_seen == 0.001
    assert hist.max_seen == 0.003


def test_negative_rejected():
    with pytest.raises(ValueError):
        LogHistogram().record(-1.0)


def test_bad_parameters_rejected():
    with pytest.raises(ValueError):
        LogHistogram(min_value=0)
    with pytest.raises(ValueError):
        LogHistogram(growth=1.0)


def test_percentile_bounds_checked():
    hist = LogHistogram()
    hist.record(1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        hist.percentile(-1)


def test_percentile_monotone_in_p():
    hist = LogHistogram()
    for i in range(1, 1001):
        hist.record(i / 1000.0)
    values = [hist.percentile(p) for p in (10, 50, 90, 99, 100)]
    assert values == sorted(values)


def test_percentile_relative_accuracy():
    """Geometric buckets promise ~7% relative error."""
    hist = LogHistogram()
    for i in range(1, 10001):
        hist.record(i / 1000.0)  # uniform on (0, 10]
    for p in (25, 50, 75, 95):
        exact = 10.0 * p / 100.0
        approx = hist.percentile(p)
        assert abs(approx - exact) / exact < 0.08


def test_p100_equals_max():
    hist = LogHistogram()
    for value in (0.5, 3.0, 7.7):
        hist.record(value)
    assert hist.percentile(100) == 7.7


def test_values_below_min_clamp():
    hist = LogHistogram(min_value=1e-6)
    hist.record(1e-12)
    assert hist.count == 1
    assert hist.percentile(100) == 1e-12


def test_zero_recordable():
    hist = LogHistogram()
    hist.record(0.0)
    assert hist.count == 1


def test_merge_combines():
    a, b = LogHistogram(), LogHistogram()
    for value in (0.001, 0.002):
        a.record(value)
    for value in (0.004, 0.008):
        b.record(value)
    a.merge(b)
    assert a.count == 4
    assert a.max_seen == 0.008
    assert a.mean == pytest.approx((0.001 + 0.002 + 0.004 + 0.008) / 4)


def test_merge_rejects_incompatible_buckets():
    with pytest.raises(ValueError):
        LogHistogram().merge(LogHistogram(growth=1.5))


@given(st.lists(st.floats(min_value=1e-9, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=200))
def test_summary_invariants(values):
    hist = LogHistogram()
    hist.record_many(values)
    summary = hist.summary()
    assert summary["count"] == len(values)
    assert summary["mean"] == pytest.approx(sum(values) / len(values))
    assert summary["p50"] <= summary["p95"] <= summary["p99"] + 1e-12
    assert summary["max"] == max(values)


@given(st.lists(st.floats(min_value=1e-6, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=100),
       st.lists(st.floats(min_value=1e-6, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=100))
def test_merge_equivalent_to_recording_all(xs, ys):
    merged = LogHistogram()
    merged.record_many(xs)
    other = LogHistogram()
    other.record_many(ys)
    merged.merge(other)

    combined = LogHistogram()
    combined.record_many(xs + ys)
    assert merged.count == combined.count
    assert merged.percentile(50) == combined.percentile(50)
    assert merged.percentile(99) == combined.percentile(99)


# ----------------------------------------------------------------------
# Quantile accuracy across the full dynamic range (the telemetry
# summaries lean on these: microsecond fsyncs up to second-long stalls)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scale", (1e-5, 1e-2, 1.0, 50.0))
def test_quantile_relative_error_bounded_at_every_scale(scale):
    """The geometric-bucket promise (~7% relative error) must hold
    wherever the distribution lands, not just near 1.0."""
    hist = LogHistogram()
    for i in range(1, 5001):
        hist.record(scale * i / 5000.0)  # uniform on (0, scale]
    for p in (10, 50, 90, 95, 99):
        exact = scale * p / 100.0
        approx = hist.percentile(p)
        assert abs(approx - exact) / exact < 0.08, (scale, p, approx)


def test_quantiles_of_a_bimodal_distribution():
    """A fast mode and a slow tail three orders of magnitude apart —
    the shape WAL fsyncs take when a disk stalls.  p50 must stay in
    the fast mode, p99 must find the tail."""
    hist = LogHistogram()
    for _ in range(990):
        hist.record(0.001)
    for _ in range(10):
        hist.record(1.0)
    assert hist.percentile(50) == pytest.approx(0.001, rel=0.08)
    assert hist.percentile(98) == pytest.approx(0.001, rel=0.08)
    assert hist.percentile(99.5) == pytest.approx(1.0, rel=0.08)
    assert hist.percentile(100) == 1.0


def test_p0_returns_min_seen():
    hist = LogHistogram()
    hist.record_many([0.25, 0.5, 0.75])
    assert hist.percentile(0) == 0.25


# ----------------------------------------------------------------------
# merge() edge cases (worker-report folding and repro-top aggregation
# exercise all of these shapes)
# ----------------------------------------------------------------------
def test_merge_empty_into_empty():
    a, b = LogHistogram(), LogHistogram()
    a.merge(b)
    assert a.count == 0
    assert a.summary() == {"count": 0, "mean": 0.0, "p50": 0.0,
                           "p95": 0.0, "p99": 0.0, "max": 0.0}
    # Sentinels untouched: a later record still sets min/max correctly.
    a.record(0.5)
    assert a.min_seen == 0.5
    assert a.max_seen == 0.5


def test_merge_empty_into_nonempty_is_identity():
    a, b = LogHistogram(), LogHistogram()
    a.record_many([0.001, 0.004])
    before = (a.count, a.total, a.min_seen, a.max_seen, a.percentile(99))
    a.merge(b)
    assert (a.count, a.total, a.min_seen, a.max_seen,
            a.percentile(99)) == before


def test_merge_nonempty_into_empty_copies_everything():
    a, b = LogHistogram(), LogHistogram()
    b.record_many([0.002, 0.008, 0.032])
    a.merge(b)
    assert a.count == 3
    assert a.min_seen == 0.002
    assert a.max_seen == 0.032
    assert a.percentile(50) == b.percentile(50)
    assert a.mean == pytest.approx(b.mean)


def test_merge_single_bucket_histograms():
    """All mass in one bucket on both sides — counts add in place and
    the percentiles stay inside that bucket."""
    a, b = LogHistogram(), LogHistogram()
    for _ in range(5):
        a.record(0.01)
    for _ in range(7):
        b.record(0.01)
    a.merge(b)
    assert a.count == 12
    assert a.percentile(50) == pytest.approx(0.01, rel=0.08)
    assert a.percentile(100) == 0.01


def test_merge_into_the_clamp_bucket():
    """Values at or below ``min_value`` clamp into bucket 0 on both
    sides; merging must fold them there, not lose them."""
    a, b = LogHistogram(min_value=1e-3), LogHistogram(min_value=1e-3)
    a.record(1e-9)
    b.record(1e-6)
    b.record(5e-4)
    a.merge(b)
    assert a.count == 3
    assert a._counts[0] == 3
    assert a.min_seen == 1e-9
    # Percentiles clamp to max_seen, never report the bucket bound.
    assert a.percentile(99) == 5e-4


def test_merge_extends_into_the_overflow_tail():
    """The receiving histogram's bucket array grows to take a donor
    whose observations sit far beyond anything it has seen."""
    a, b = LogHistogram(), LogHistogram()
    a.record(0.001)
    b.record(250.0)  # days beyond a's deepest bucket
    buckets_before = len(a._counts)
    a.merge(b)
    assert len(a._counts) > buckets_before
    assert a.count == 2
    assert a.max_seen == 250.0
    assert a.percentile(100) == 250.0
    assert a.percentile(99) == pytest.approx(250.0, rel=0.08)


def test_merge_parameter_mismatch_raises_both_ways():
    base = LogHistogram()
    for other in (LogHistogram(growth=1.5),
                  LogHistogram(min_value=1e-5)):
        with pytest.raises(ValueError):
            base.merge(other)
        with pytest.raises(ValueError):
            other.merge(base)
