"""Workload presets: validity, override plumbing, distinctness."""

import pytest

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.common.errors import ConfigError
from repro.workload.presets import WORKLOAD_PRESETS, preset


def test_every_preset_validates_against_default_cluster():
    cluster = ClusterConfig()
    for name, config in WORKLOAD_PRESETS.items():
        config.validate(cluster)  # must not raise


def test_preset_lookup_returns_config():
    config = preset("ycsb-b")
    assert isinstance(config, WorkloadConfig)
    assert config.kind == "mixed"
    assert config.read_ratio == 0.95


def test_preset_overrides_apply():
    config = preset("facebook-tao", clients_per_partition=16,
                    think_time_s=0.001)
    assert config.clients_per_partition == 16
    assert config.think_time_s == 0.001
    # The original is untouched (frozen dataclass + replace).
    assert WORKLOAD_PRESETS["facebook-tao"].clients_per_partition != 16


def test_unknown_preset_raises_with_choices():
    with pytest.raises(ConfigError, match="ycsb-a"):
        preset("nope")


def test_paper_presets_match_section_v():
    assert WORKLOAD_PRESETS["paper-32to1"].gets_per_put == 32
    assert WORKLOAD_PRESETS["paper-32to1"].think_time_s == 0.025
    assert WORKLOAD_PRESETS["paper-32to1"].zipf_theta == 0.99
    assert WORKLOAD_PRESETS["paper-tx"].kind == "ro_tx"


def test_read_heavy_presets_are_read_heavy():
    assert preset("facebook-tao").read_ratio > 0.99
    assert preset("memcache-etc").read_ratio >= 0.95


def test_session_store_exercises_locality():
    assert preset("session-store").rmw_locality > 0


def test_hotspot_preset_uses_hotspot_distribution():
    assert preset("hotspot-90-10").key_distribution == "hotspot"
