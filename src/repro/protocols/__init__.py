"""Causal-consistency protocols.

* :mod:`repro.protocols.pocc` — the paper's contribution (Algorithms 1-2).
* :mod:`repro.protocols.cure` — Cure*, the pessimistic baseline the paper
  evaluates against (stabilization protocol + Global Stable Snapshot).
* :mod:`repro.protocols.eventual` — an eventually consistent strawman used
  to demonstrate the independent consistency checker.
* :mod:`repro.protocols.ha` — HA-POCC: the availability fall-back of
  Sections III-B / IV-C.
* :mod:`repro.protocols.registry` — name -> (server, client) factory table.
"""

from repro.protocols.registry import PROTOCOLS, client_class, server_class

__all__ = ["PROTOCOLS", "client_class", "server_class"]
