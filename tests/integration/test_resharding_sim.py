"""Online resharding on the sim backend, end to end and deterministic.

A view change under live mixed traffic (GETs, PUTs and RO-TXs): the
reshard controller drives propose → migrate → drain → commit while
clients keep operating, and the run must stay causally clean, converge,
actually move ≈K/S keys, and surface the client-visible machinery
(NotOwner redirects, epoch bumps) the live chaos cells gate on.  Here,
unlike those cells, nothing dies — so RO-TXs are part of the traffic
and the slice-abort/regroup path gets exercised without POCC's
optimism-under-failure caveat muddying the checker.
"""

import dataclasses

from repro.cluster.reshard import start_sim_reshard
from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    MembershipConfig,
    WorkloadConfig,
)
from repro.harness.builders import build_cluster
from repro.harness.experiment import run_experiment

#: 4-slot address space; the epoch-0 ring holds a subset so there is a
#: booted-but-empty partition ready to join.
NUM_PARTITIONS = 4
KEYS_PER_PARTITION = 50


def _config(initial_members, seed: int, name: str) -> ExperimentConfig:
    cluster = ClusterConfig(
        num_dcs=2,
        num_partitions=NUM_PARTITIONS,
        keys_per_partition=KEYS_PER_PARTITION,
        protocol="pocc",
        membership=MembershipConfig(
            enabled=True,
            initial_members=tuple(initial_members),
            gossip_interval_s=0.3,
            handoff_chunk_versions=16,
            commit_delay_s=0.1,
            retry_interval_s=0.2,
        ),
    )
    return ExperimentConfig(
        cluster=cluster,
        workload=WorkloadConfig(kind="mixed", read_ratio=0.7, tx_ratio=0.15,
                                tx_partitions=2, clients_per_partition=2,
                                think_time_s=0.005),
        warmup_s=0.3,
        duration_s=3.0,
        seed=seed,
        verify=True,
        name=name,
    )


def _run_reshard(initial_members, target_members, seed, name):
    config = _config(initial_members, seed, name)
    built = build_cluster(config)
    results = []
    controller = start_sim_reshard(built, target_members, at_s=1.0,
                                   on_done=results.append)
    result = run_experiment(config, built=built)
    return built, controller, results, result


def test_join_under_live_traffic():
    """Epoch 0 = {0,1,2}; partition 3 joins mid-run."""
    built, controller, done, result = _run_reshard(
        (0, 1, 2), (0, 1, 2, 3), seed=7113, name="reshard-sim-join")
    assert controller.phase == "done"
    assert len(done) == 1
    reshard = done[0]
    assert reshard.epoch == 1
    assert reshard.members == (0, 1, 2, 3)
    # ≈K/S of the keyspace lands on the joiner, per DC.
    total_keys = 3 * KEYS_PER_PARTITION
    expected = built.config.cluster.num_dcs * total_keys / 4
    assert 0.2 * expected <= reshard.keys_moved <= 3.0 * expected
    assert reshard.bytes_moved > 0
    # Every donor total came from a partition that actually donated
    # toward partition 3 (the joiner never donates on a join).
    assert all(p != 3 for (_dc, p) in reshard.moved_by_server)
    # The run stayed clean end to end.
    assert result.verification["violations"] == 0
    assert result.divergences == 0
    # Client-visible machinery: the frozen-pool clients kept addressing
    # the old owners, so the cutover surfaced as NotOwner redirects.
    servers = built.servers.values()
    assert sum(s.not_owner_redirects for s in servers) > 0
    assert sum(s.keys_migrated for s in servers) == reshard.keys_moved
    assert sum(s.migration_bytes for s in servers) == reshard.bytes_moved
    assert {s.view_epoch for s in servers} == {1}


def test_removal_under_live_traffic():
    """Epoch 0 = all four partitions; partition 3 leaves mid-run.  Its
    chains must stream out before the commit purges them — an acked
    write on the leaver that vanished would surface as a causal
    violation or a divergence in the drain audit."""
    built, controller, done, result = _run_reshard(
        (0, 1, 2, 3), (0, 1, 2), seed=7114, name="reshard-sim-removal")
    assert controller.phase == "done"
    reshard = done[0]
    assert reshard.members == (0, 1, 2)
    # Only the leaver donates, in both DCs: everything it owned, which
    # is its whole pool plus whatever the ring had routed to it from
    # the shared keyspace.
    assert set(p for (_dc, p) in reshard.moved_by_server) == {3}
    assert reshard.keys_moved > 0
    assert result.verification["violations"] == 0
    assert result.divergences == 0
    servers = built.servers.values()
    assert {s.view_epoch for s in servers} == {1}


def test_removal_purges_the_leaver():
    built, controller, done, result = _run_reshard(
        (0, 1, 2, 3), (0, 1, 2), seed=7115, name="reshard-sim-purge")
    assert result.verification["violations"] == 0
    # The committed view lives on the servers (the topology keeps the
    # boot-time epoch-0 view for address-space bookkeeping).
    view = next(iter(built.servers.values()))._membership.view
    assert view.epoch == 1
    for address, server in built.servers.items():
        if server.n == 3:
            assert len(list(server.store.keys())) == 0
        else:
            for key in server.store.keys():
                assert view.owner_of(key) == server.n


def test_reshard_is_deterministic_per_seed():
    """Same seed, same reshard → byte-identical runs (the sim backend's
    reproducibility discipline extends to view changes)."""
    import json

    def run():
        built, _controller, done, result = _run_reshard(
            (0, 1, 2), (0, 1, 2, 3), seed=7116, name="reshard-sim-det")
        payload = dataclasses.asdict(result)
        payload.pop("config")
        return json.dumps(payload, sort_keys=True, default=repr), \
            done[0].keys_moved
    first = run()
    second = run()
    assert first == second
