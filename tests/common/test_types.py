"""Tests for core value types."""

from repro.common.types import (
    Address,
    NodeKind,
    client_address,
    server_address,
    version_order_key,
)


def test_server_address_str():
    assert str(server_address(1, 3)) == "s[1.3]"


def test_client_address_str():
    assert str(client_address(1, 3, 2)) == "c[1.3.2]"


def test_address_kind_predicates():
    assert server_address(0, 0).is_server
    assert not server_address(0, 0).is_client
    assert client_address(0, 0, 0).is_client


def test_addresses_hashable_and_distinct():
    addresses = {
        server_address(0, 0),
        server_address(0, 1),
        client_address(0, 0, 0),
        client_address(0, 0, 1),
    }
    assert len(addresses) == 4


def test_server_and_client_same_slot_differ():
    assert server_address(0, 0) != client_address(0, 0, 0)


def test_version_order_key_total_order():
    # Higher timestamp wins.
    assert version_order_key(11, 2) > version_order_key(10, 0)
    # Tie: lowest source replica wins.
    assert version_order_key(10, 0) > version_order_key(10, 1)
    # Reflexive equality.
    assert version_order_key(10, 1) == version_order_key(10, 1)


def test_node_kind_repr():
    assert "SERVER" in repr(NodeKind.SERVER)


def test_address_is_frozen():
    import dataclasses
    import pytest
    with pytest.raises(dataclasses.FrozenInstanceError):
        server_address(0, 0).dc = 5  # type: ignore[misc]
