"""One experiment definition per figure of the paper's evaluation.

Every public ``figure_*`` function runs the sweep behind the corresponding
figure of Section V and returns a :class:`FigureData` with the same series
the paper plots.  Absolute values are simulator-scale; EXPERIMENTS.md
records them next to the paper's numbers and compares shapes.

All figures share the Section V-A setup: 3 DCs, clients collocated with
servers in closed loop, zipf(0.99) keys, heartbeats after 1 ms, Cure*
stabilization every 5 ms, last-writer-wins, and POCC's PUT dependency wait
enabled.

Execution: each figure first *builds* its full grid of experiment
configurations, then runs them all through
:func:`repro.harness.parallel.run_experiments` (``parallelism=None`` uses
every core, ``1`` is the legacy serial path) and finally aggregates the
results in grid order — so the returned ``FigureData`` is byte-identical
at any parallelism.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable

from repro.common.config import ClusterConfig, ExperimentConfig, WorkloadConfig
from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import run_experiments
from repro.harness.scales import FigureScale, get_scale
from repro.metrics.collectors import (
    BLOCK_GET_VV,
    BLOCK_PUT_DEPS,
    BLOCK_SLICE_VV,
)

POCC = "pocc"
CURE = "cure"
OKAPI = "okapi"
_LABEL = {POCC: "POCC", CURE: "Cure*", OKAPI: "Okapi*",
          "gentlerain": "GentleRain*", "occ_scalar": "OCC-scalar",
          "cops": "COPS*", "ha_pocc": "HA-POCC", "eventual": "eventual"}

#: The paper's two systems — the default comparison every figure runs.
DEFAULT_PROTOCOLS = (CURE, POCC)


def _label(protocol: str) -> str:
    return _LABEL.get(protocol, protocol)


@dataclass(slots=True)
class FigureData:
    """The series behind one reproduced figure."""

    figure_id: str
    title: str
    x_label: str
    series: dict[str, list[tuple[float, float]]]
    notes: str = ""
    results: list[ExperimentResult] = field(default_factory=list)

    def add(self, series_name: str, x: float, y: float) -> None:
        self.series.setdefault(series_name, []).append((x, y))

    def ys(self, series_name: str) -> list[float]:
        return [y for _, y in self.series[series_name]]

    def xs(self, series_name: str) -> list[float]:
        return [x for x, _ in self.series[series_name]]

    def table_text(self) -> str:
        """A plain-text table: one row per x, one column per series."""
        names = list(self.series)
        xs = sorted({x for points in self.series.values() for x, _ in points})
        header = [self.x_label] + names
        widths = [max(12, len(h) + 2) for h in header]
        lines = [
            f"Figure {self.figure_id}: {self.title}",
            "".join(h.ljust(w) for h, w in zip(header, widths)),
        ]
        lookup = {
            name: dict(points) for name, points in self.series.items()
        }
        for x in xs:
            row = [f"{x:g}".ljust(widths[0])]
            for name, w in zip(names, widths[1:]):
                y = lookup[name].get(x)
                row.append(("-" if y is None else f"{y:.4g}").ljust(w))
            lines.append("".join(row))
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


ProgressFn = Callable[[str], None]


def _progress(verbose: bool) -> ProgressFn:
    if verbose:
        return lambda text: print(f"  [figures] {text}", file=sys.stderr)
    return lambda text: None


def _live_log(grid, log: ProgressFn, format_point) -> Callable:
    """A per-run progress callback that logs ``format_point(point, result)``.

    ``run_experiments`` invokes progress in input order on both paths —
    live after each run when serial, all at once (still in order) when
    parallel — so walking the grid alongside the callbacks is safe.
    """
    points = iter(grid)

    def on_run(config, result) -> None:
        log(format_point(next(points), result))

    return on_run


def _experiment(
    scale: FigureScale,
    protocol: str,
    workload: WorkloadConfig,
    partitions: int | None = None,
    name: str = "",
) -> ExperimentConfig:
    cluster = ClusterConfig(
        num_dcs=scale.num_dcs,
        num_partitions=partitions if partitions is not None else scale.partitions,
        keys_per_partition=scale.keys_per_partition,
        protocol=protocol,
    )
    return ExperimentConfig(
        cluster=cluster,
        workload=workload,
        warmup_s=scale.warmup_s,
        duration_s=scale.duration_s,
        seed=scale.seed,
        name=name,
    )


def _getput(scale: FigureScale, gets_per_put: int, clients: int) -> WorkloadConfig:
    return WorkloadConfig(
        kind="get_put",
        gets_per_put=gets_per_put,
        clients_per_partition=clients,
        think_time_s=scale.think_time_s,
    )


def _rotx(scale: FigureScale, tx_partitions: int, clients: int) -> WorkloadConfig:
    return WorkloadConfig(
        kind="ro_tx",
        tx_partitions=tx_partitions,
        clients_per_partition=clients,
        think_time_s=scale.think_time_s,
    )


# ----------------------------------------------------------------------
# Figure 1: GET/PUT workloads
# ----------------------------------------------------------------------


def figure_1a(scale: str = "bench", verbose: bool = False,
              protocols: tuple[str, ...] = DEFAULT_PROTOCOLS,
              parallelism: int | None = None) -> FigureData:
    """Throughput while varying the number of partitions (GET:PUT = p:1).

    Paper: POCC and Cure* achieve basically the same throughput at every
    deployment size — optimism costs no throughput.
    """
    s = get_scale(scale)
    log = _progress(verbose)
    data = FigureData(
        figure_id="1a",
        title="Throughput vs number of partitions (GET:PUT = p:1, saturated)",
        x_label="partitions",
        series={},
        notes="paper: the two systems overlap across all sizes",
    )
    grid = [(partitions, protocol)
            for partitions in s.partition_sweep
            for protocol in protocols]
    configs = [
        _experiment(s, protocol,
                    _getput(s, gets_per_put=partitions,
                            clients=s.saturating_clients),
                    partitions=partitions,
                    name=f"fig1a-{protocol}-p{partitions}")
        for partitions, protocol in grid
    ]
    results = run_experiments(
        configs, parallelism=parallelism,
        progress=_live_log(grid, log, lambda point, r: (
            f"1a p={point[0]} {point[1]}: {r.throughput_ops_s:,.0f} ops/s")))
    for (partitions, protocol), result in zip(grid, results):
        data.add(_label(protocol), partitions, result.throughput_ops_s)
        data.results.append(result)
    return data


def figure_1b(scale: str = "bench", verbose: bool = False,
              protocols: tuple[str, ...] = DEFAULT_PROTOCOLS,
              parallelism: int | None = None) -> FigureData:
    """Average response time vs throughput (client-count sweep).

    Paper: POCC is slightly faster below saturation (no stabilization, no
    chain traversal) and slightly slower at extreme load (blocking).
    """
    s = get_scale(scale)
    log = _progress(verbose)
    data = FigureData(
        figure_id="1b",
        title="Avg response time vs throughput "
              f"(GET:PUT = {s.getput_ratio}:1)",
        x_label="throughput (ops/s)",
        series={},
        notes="paper: POCC at or below Cure* until the saturation knee",
    )
    grid = [(clients, protocol)
            for clients in s.client_sweep
            for protocol in protocols]
    configs = [
        _experiment(s, protocol, _getput(s, s.getput_ratio, clients),
                    name=f"fig1b-{protocol}-c{clients}")
        for clients, protocol in grid
    ]
    results = run_experiments(
        configs, parallelism=parallelism,
        progress=_live_log(grid, log, lambda point, r: (
            f"1b c={point[0]} {point[1]}: {r.throughput_ops_s:,.0f} ops/s, "
            f"{r.mean_response_time_s * 1000:.3f} ms")))
    for (clients, protocol), result in zip(grid, results):
        data.add(_label(protocol), result.throughput_ops_s,
                 result.mean_response_time_s * 1000.0)
        data.results.append(result)
    return data


def figure_1c(scale: str = "bench", verbose: bool = False,
              protocols: tuple[str, ...] = DEFAULT_PROTOCOLS,
              parallelism: int | None = None) -> FigureData:
    """Throughput vs GET:PUT ratio at saturation.

    Paper: throughput decreases with write intensity for both systems;
    POCC degrades slightly more (max ~10% behind, at 2:1).
    """
    s = get_scale(scale)
    log = _progress(verbose)
    data = FigureData(
        figure_id="1c",
        title="Throughput vs GET:PUT ratio (saturated)",
        x_label="gets per put",
        series={},
        notes="paper: POCC within ~10% of Cure* even at write-heavy ratios",
    )
    grid = [(ratio, protocol)
            for ratio in s.ratio_sweep
            for protocol in protocols]
    configs = [
        _experiment(s, protocol, _getput(s, ratio, s.saturating_clients),
                    name=f"fig1c-{protocol}-r{ratio}")
        for ratio, protocol in grid
    ]
    results = run_experiments(
        configs, parallelism=parallelism,
        progress=_live_log(grid, log, lambda point, r: (
            f"1c {point[0]}:1 {point[1]}: {r.throughput_ops_s:,.0f} ops/s")))
    for (ratio, protocol), result in zip(grid, results):
        data.add(_label(protocol), ratio, result.throughput_ops_s)
        data.results.append(result)
    return data


# ----------------------------------------------------------------------
# Figure 2: blocking (POCC) vs staleness (Cure*)
# ----------------------------------------------------------------------


def figure_2a(scale: str = "bench", verbose: bool = False,
              parallelism: int | None = None) -> FigureData:
    """POCC blocking probability and blocking time vs throughput.

    Paper: blocking probability below 1e-3 until the saturation point; the
    blocking time is microseconds at moderate load and grows near
    saturation.
    """
    s = get_scale(scale)
    log = _progress(verbose)
    data = FigureData(
        figure_id="2a",
        title=f"POCC blocking behaviour (GET:PUT = {s.getput_ratio}:1)",
        x_label="throughput (ops/s)",
        series={},
        notes="paper: negligible blocking until the last ~10% of load",
    )
    configs = [
        _experiment(s, POCC, _getput(s, s.getput_ratio, clients),
                    name=f"fig2a-c{clients}")
        for clients in s.client_sweep
    ]
    results = run_experiments(
        configs, parallelism=parallelism,
        progress=_live_log(s.client_sweep, log, lambda clients, r: (
            f"2a c={clients}: thr={r.throughput_ops_s:,.0f}, "
            f"p={r.blocking_probability:.2e}, "
            f"t={r.mean_block_time_s * 1000:.4f} ms")))
    for result in results:
        data.add("blocking probability", result.throughput_ops_s,
                 result.blocking_probability)
        data.add("blocking time (ms)", result.throughput_ops_s,
                 result.mean_block_time_s * 1000.0)
        data.results.append(result)
    return data


def figure_2b(scale: str = "bench", verbose: bool = False,
              parallelism: int | None = None) -> FigureData:
    """Cure* data staleness vs throughput.

    Paper: % old and % unmerged GETs grow with load (towards ~15%/10% near
    saturation and ~30% overloaded), as do the numbers of fresher/unmerged
    versions behind a stale read.
    """
    s = get_scale(scale)
    log = _progress(verbose)
    data = FigureData(
        figure_id="2b",
        title=f"Cure* data staleness (GET:PUT = {s.getput_ratio}:1)",
        x_label="throughput (ops/s)",
        series={},
        notes="paper: staleness grows with load; stabilization slows "
              "under CPU contention",
    )
    configs = [
        _experiment(s, CURE, _getput(s, s.getput_ratio, clients),
                    name=f"fig2b-c{clients}")
        for clients in s.client_sweep
    ]
    results = run_experiments(
        configs, parallelism=parallelism,
        progress=_live_log(s.client_sweep, log, lambda clients, r: (
            f"2b c={clients}: thr={r.throughput_ops_s:,.0f}, "
            f"old={r.get_staleness['pct_old']:.2f}%, "
            f"unmerged={r.get_staleness['pct_unmerged']:.2f}%")))
    for result in results:
        stale = result.get_staleness
        thr = result.throughput_ops_s
        data.add("% old", thr, stale["pct_old"])
        data.add("% unmerged", thr, stale["pct_unmerged"])
        data.add("# fresher versions", thr, stale["avg_fresher_versions"])
        data.add("# unmerged versions", thr, stale["avg_unmerged_versions"])
        data.results.append(result)
    return data


# ----------------------------------------------------------------------
# Figure 3: transactional workloads
# ----------------------------------------------------------------------


def figure_3a(scale: str = "bench", verbose: bool = False,
              protocols: tuple[str, ...] = DEFAULT_PROTOCOLS,
              parallelism: int | None = None) -> FigureData:
    """Throughput vs partitions contacted per RO-TX.

    Paper: comparable at small transactions, POCC up to ~15% ahead when
    transactions span most partitions (resource efficiency).

    "Maximum achievable throughput" is the peak over client counts, not a
    single overload point: POCC's throughput *drops* past its peak
    (Figure 3b), so a fixed deep-overload client count would understate it.
    """
    s = get_scale(scale)
    log = _progress(verbose)
    data = FigureData(
        figure_id="3a",
        title="Throughput vs contacted partitions per RO-TX (saturated)",
        x_label="partitions per RO-TX",
        series={},
        notes="paper: POCC >= Cure*, gap widens with transaction size",
    )
    client_points = s.tx_client_sweep[-2:]
    grid = [(tx_partitions, protocol)
            for tx_partitions in s.tx_partition_sweep
            for protocol in protocols]
    configs = [
        _experiment(s, protocol, _rotx(s, tx_partitions, clients),
                    name=f"fig3a-{protocol}-p{tx_partitions}-c{clients}")
        for tx_partitions, protocol in grid
        for clients in client_points
    ]
    run_points = [(tx_partitions, protocol, clients)
                  for tx_partitions, protocol in grid
                  for clients in client_points]
    results = iter(run_experiments(
        configs, parallelism=parallelism,
        progress=_live_log(run_points, log, lambda point, r: (
            f"3a p={point[0]} {point[1]} c={point[2]}: "
            f"{r.throughput_ops_s:,.0f} ops/s"))))
    for tx_partitions, protocol in grid:
        best = 0.0
        for _clients in client_points:
            result = next(results)
            best = max(best, result.throughput_ops_s)
            data.results.append(result)
        data.add(_label(protocol), tx_partitions, best)
        log(f"3a p={tx_partitions} {protocol}: {best:,.0f} ops/s (max "
            f"over {list(client_points)} clients/partition)")
    return data


def _tx_partitions_for(s: FigureScale) -> int:
    """Figures 3b-3d read half of the partitions per transaction."""
    return max(1, s.partitions // 2)


def figure_3b(scale: str = "bench", verbose: bool = False,
              protocols: tuple[str, ...] = DEFAULT_PROTOCOLS,
              parallelism: int | None = None) -> FigureData:
    """Throughput and RO-TX response time vs clients per partition.

    Paper: both reach a similar maximum; POCC's throughput *drops* past its
    peak (blocking under overload) while Cure*'s plateaus.
    """
    s = get_scale(scale)
    log = _progress(verbose)
    half = _tx_partitions_for(s)
    data = FigureData(
        figure_id="3b",
        title=f"RO-TX workload over {half} partitions: load sweep",
        x_label="clients per partition",
        series={},
        notes="paper: POCC throughput peaks then drops; Cure* plateaus",
    )
    grid = [(clients, protocol)
            for clients in s.tx_client_sweep
            for protocol in protocols]
    configs = [
        _experiment(s, protocol, _rotx(s, half, clients),
                    name=f"fig3b-{protocol}-c{clients}")
        for clients, protocol in grid
    ]
    results = run_experiments(
        configs, parallelism=parallelism,
        progress=_live_log(grid, log, lambda point, r: (
            f"3b c={point[0]} {point[1]}: {r.throughput_ops_s:,.0f} ops/s, "
            f"{r.op_mean_s('ro_tx') * 1000:.2f} ms")))
    for (clients, protocol), result in zip(grid, results):
        label = _label(protocol)
        data.add(f"{label} throughput", clients,
                 result.throughput_ops_s)
        data.add(f"{label} RO-TX resp (ms)", clients,
                 result.op_mean_s("ro_tx") * 1000.0)
        data.results.append(result)
    return data


def figure_3c(scale: str = "bench", verbose: bool = False,
              parallelism: int | None = None) -> FigureData:
    """POCC blocking (PUT or transactional read) vs clients per partition.

    Paper: non-monotonic — blocking *time* is heartbeat-bound at low load,
    dips at the throughput peak, then explodes under overload; blocking
    probability peaks at the throughput peak.
    """
    s = get_scale(scale)
    log = _progress(verbose)
    half = _tx_partitions_for(s)
    data = FigureData(
        figure_id="3c",
        title=f"POCC blocking on RO-TX workload over {half} partitions",
        x_label="clients per partition",
        series={},
        notes="paper: blocking time high at low load (heartbeat waits), "
              "dips, then grows under overload",
    )
    configs = [
        _experiment(s, POCC, _rotx(s, half, clients),
                    name=f"fig3c-c{clients}")
        for clients in s.tx_client_sweep
    ]
    results = run_experiments(
        configs, parallelism=parallelism,
        progress=_live_log(s.tx_client_sweep, log, lambda clients, r: (
            "3c c={}: p={:.2e}, t={:.3f} ms".format(
                clients, *_combined_tx_blocking(r)))))
    for clients, result in zip(s.tx_client_sweep, results):
        probability, mean_ms = _combined_tx_blocking(result)
        data.add("blocking probability", clients, probability)
        data.add("blocking time (ms)", clients, mean_ms)
        data.results.append(result)
    return data


def _combined_tx_blocking(result: ExperimentResult) -> tuple[float, float]:
    """Blocking probability and mean time over the slice + PUT causes."""
    slice_block = result.blocking[BLOCK_SLICE_VV]
    put_block = result.blocking[BLOCK_PUT_DEPS]
    attempts = slice_block["attempts"] + put_block["attempts"]
    blocked = slice_block["blocked"] + put_block["blocked"]
    total_time = (
        slice_block["mean_block_time_s"] * slice_block["blocked"]
        + put_block["mean_block_time_s"] * put_block["blocked"]
    )
    probability = blocked / attempts if attempts else 0.0
    mean_ms = (total_time / blocked * 1000.0) if blocked else 0.0
    return probability, mean_ms


def figure_3d(scale: str = "bench", verbose: bool = False,
              protocols: tuple[str, ...] = DEFAULT_PROTOCOLS,
              parallelism: int | None = None) -> FigureData:
    """Staleness of transactional reads: POCC vs Cure*.

    Paper: POCC's % old items is about two orders of magnitude below
    Cure*'s (received-items snapshots vs stable-items snapshots); POCC has
    no separate unmerged series (old == unmerged for POCC).
    """
    s = get_scale(scale)
    log = _progress(verbose)
    half = _tx_partitions_for(s)
    data = FigureData(
        figure_id="3d",
        title=f"RO-TX staleness over {half} partitions",
        x_label="clients per partition",
        series={},
        notes="paper: POCC-Old roughly two orders of magnitude below "
              "Cure*-Old",
    )
    grid = [(clients, protocol)
            for clients in s.tx_client_sweep
            for protocol in protocols]
    configs = [
        _experiment(s, protocol, _rotx(s, half, clients),
                    name=f"fig3d-{protocol}-c{clients}")
        for clients, protocol in grid
    ]
    results = run_experiments(
        configs, parallelism=parallelism,
        progress=_live_log(grid, log, lambda point, r: (
            f"3d c={point[0]} {point[1]}: "
            f"old={r.tx_staleness['pct_old']:.4f}%")))
    for (clients, protocol), result in zip(grid, results):
        stale = result.tx_staleness
        label = _label(protocol)
        data.add(f"{label} % old", clients, stale["pct_old"])
        if protocol != POCC:
            # POCC has no separate unmerged series (old == unmerged).
            data.add(f"{label} % unmerged", clients,
                     stale["pct_unmerged"])
        data.results.append(result)
    return data


#: Figure id -> callable, in paper order.
FIGURES: dict[str, Callable[..., FigureData]] = {
    "1a": figure_1a,
    "1b": figure_1b,
    "1c": figure_1c,
    "2a": figure_2a,
    "2b": figure_2b,
    "3a": figure_3a,
    "3b": figure_3b,
    "3c": figure_3c,
    "3d": figure_3d,
}
