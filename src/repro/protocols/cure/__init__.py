"""Cure*: the pessimistic baseline of the paper's evaluation (Section V).

A reimplementation — per the paper's description — of Cure [ICDCS 2016]
augmented with simple GET/PUT operations.  Nodes within a DC periodically
exchange version vectors and compute the **Global Stable Snapshot** (GSS),
the aggregate minimum; a remote version becomes visible only once its
dependency cut is covered by the GSS (it is *stable*), while local versions
are immediately visible.  Reads therefore search the version chain for the
freshest *stable* version — the staleness and CPU cost the optimistic
protocol eliminates.
"""

from repro.protocols.cure.client import CureClient
from repro.protocols.cure.server import CureServer
from repro.protocols.cure.stabilization import StabilizationMixin

__all__ = ["CureClient", "CureServer", "StabilizationMixin"]
