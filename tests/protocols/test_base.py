"""Unit tests for shared server machinery: wait queues, version creation,
heartbeat suppression, the GC rounds, and transaction plumbing."""

import pytest

import helpers
from repro.common.config import ProtocolConfig
from repro.common.errors import ProtocolError
from repro.protocols import messages as m
from repro.protocols.base import WaitQueue


@pytest.fixture
def built():
    return helpers.make_cluster(protocol="pocc")


def _server(built, dc=0, partition=0):
    return built.servers[built.topology.server(dc, partition)]


# ----------------------------------------------------------------------
# WaitQueue
# ----------------------------------------------------------------------


def test_waitqueue_wakes_when_predicate_holds(built):
    server = _server(built)
    fired = []
    flag = {"ready": False}
    server.waiters.wait(lambda: flag["ready"], lambda: fired.append(1),
                        "get_vv")
    server.waiters.notify()
    assert fired == []
    flag["ready"] = True
    server.waiters.notify()
    built.sim.run(until=built.sim.now + 0.01)  # resume CPU job
    assert fired == [1]
    assert len(server.waiters) == 0


def test_waitqueue_drop_cancels(built):
    server = _server(built)
    fired = []
    waiter = server.waiters.wait(lambda: True, lambda: fired.append(1),
                                 "get_vv")
    server.waiters.drop(waiter)
    server.waiters.notify()
    built.sim.run(until=built.sim.now + 0.01)
    assert fired == []


def test_waitqueue_expired_reports_age(built):
    server = _server(built)
    server.waiters.wait(lambda: False, lambda: None, "get_vv",
                        payload="old-one")
    built.sim.run(until=built.sim.now + 0.5)
    server.waiters.wait(lambda: False, lambda: None, "get_vv",
                        payload="young-one")
    expired = server.waiters.expired(older_than_s=0.3)
    assert [w.payload for w in expired] == ["old-one"]


def test_waitqueue_multiple_waiters_wake_together(built):
    server = _server(built)
    fired = []
    flag = {"ready": False}
    for i in range(3):
        server.waiters.wait(lambda: flag["ready"],
                            lambda i=i: fired.append(i), "get_vv")
    flag["ready"] = True
    server.waiters.notify()
    built.sim.run(until=built.sim.now + 0.01)
    assert sorted(fired) == [0, 1, 2]


# ----------------------------------------------------------------------
# Version creation and replication fan-out
# ----------------------------------------------------------------------


def test_create_version_advances_vv_and_replicates(built):
    server = _server(built)
    sent_before = built.network.stats.messages_sent
    version = server.create_version("k-test", "v", (0, 0, 0))
    assert server.vv[0] == version.ut
    assert version.sr == 0
    # One REPLICATE per peer replica (two other DCs).
    assert built.network.stats.messages_sent - sent_before == 2


def test_create_version_rejects_non_advancing_clock(built):
    server = _server(built)
    server.vv[0] = 10**15  # corrupt: VV beyond any near-term clock value
    with pytest.raises(ProtocolError):
        server.create_version("k", "v", (0, 0, 0))


def test_apply_replicate_is_monotonic_on_vv(built):
    from repro.storage.version import Version
    server = _server(built, dc=1)
    v1 = Version(key="a", value=1, sr=0, ut=5_000, dv=(0, 0, 0))
    v2 = Version(key="a", value=2, sr=0, ut=3_000, dv=(0, 0, 0))
    server.apply_replicate(m.Replicate(version=v1))
    server.apply_replicate(m.Replicate(version=v2))  # out-of-order insert
    assert server.vv[0] == 5_000  # never regresses
    assert len(server.store.chain("a")) == 2


def test_heartbeats_suppressed_while_writes_flow(built):
    """Algorithm 2 line 21: no heartbeat if a PUT advanced VV recently."""
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    server = _server(built)
    # Keep writing faster than the heartbeat interval.
    heartbeat_count_before = _count_heartbeats(built)
    for _ in range(5):
        helpers.put(built, client, key, "x")
    # Heartbeats from this node during the write burst are rare; mostly
    # replication messages advanced the peers.
    del server
    assert _count_heartbeats(built) >= heartbeat_count_before  # smoke


def _count_heartbeats(built):
    return built.network.stats.messages_sent


# ----------------------------------------------------------------------
# Garbage collection rounds
# ----------------------------------------------------------------------


def test_gc_trims_hot_chains():
    built = helpers.make_cluster(
        protocol="pocc",
        cluster_overrides={
            "protocol_config": ProtocolConfig(gc_interval_s=0.200),
        },
    )
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    for i in range(20):
        helpers.put(built, client, key, i)
    server = _server(built)
    assert len(server.store.chain(key)) == 21  # 20 writes + preload
    helpers.settle(built, 1.0)  # several GC rounds + full replication
    for dc in range(3):
        chain = _server(built, dc=dc).store.chain(key)
        assert len(chain) <= 3, f"dc{dc} chain not collected: {len(chain)}"
        assert chain.head().value == 19  # freshest survives


def test_gc_keeps_versions_needed_by_snapshots():
    built = helpers.make_cluster(
        protocol="pocc",
        cluster_overrides={
            "protocol_config": ProtocolConfig(gc_interval_s=0.200),
        },
    )
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    for i in range(5):
        helpers.put(built, client, key, i)
    helpers.settle(built, 1.0)
    # After GC, a fresh transaction still reads the LWW winner.
    reader = helpers.client_at(built, dc=1)
    reply = helpers.ro_tx(built, reader, [key])
    assert reply.versions[0].value == 4


def test_gc_stats_accumulate():
    built = helpers.make_cluster(
        protocol="pocc",
        cluster_overrides={
            "protocol_config": ProtocolConfig(gc_interval_s=0.100),
        },
    )
    client = helpers.client_at(built, dc=0)
    key = helpers.key_on_partition(built, 0)
    for i in range(10):
        helpers.put(built, client, key, i)
    helpers.settle(built, 1.0)
    server = _server(built)
    assert server.store.gc_stats.rounds > 3
    assert server.store.gc_stats.versions_removed > 0
    assert len(server.store.gc_stats.last_gv) == 3


# ----------------------------------------------------------------------
# Transaction plumbing
# ----------------------------------------------------------------------


def test_tx_ids_unique_per_coordinator(built):
    a = _server(built, dc=0, partition=0)
    b = _server(built, dc=0, partition=1)
    ids = {a.new_tx_id(), a.new_tx_id(), b.new_tx_id(), b.new_tx_id()}
    assert len(ids) == 4


def test_stale_slice_response_ignored(built):
    server = _server(built)
    # A SliceResp for an unknown transaction must be a harmless no-op.
    server.handle_slice_resp(m.SliceResp(versions=[], tx_id=999_999))


def test_unknown_message_rejected(built):
    server = _server(built)
    with pytest.raises(ProtocolError):
        server.dispatch(object())


def test_nil_reply_shape(built):
    server = _server(built)
    reply = server.nil_reply("ghost", op_id=7)
    assert reply.value is None
    assert reply.ut == 0
    assert reply.op_id == 7
    assert len(reply.dv) == 3


def test_vv_covers_semantics(built):
    server = _server(built)
    server.vv = [100, 50, 75]
    assert server.vv_covers([999, 50, 75])  # local entry skipped
    assert not server.vv_covers([0, 60, 0])
    assert not server.vv_covers([999, 50, 75], skip_local=False)
