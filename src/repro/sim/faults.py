"""Fault injection: partitions, asymmetric cuts, slow/lossy links,
clock-skew spikes.

Section III-B of the paper discusses OCC's behaviour under network
partitions (blocking, recovery, fall-back to a pessimistic protocol).  The
injector cuts traffic between groups of DCs — in both directions — and heals
it later, either programmatically or on a schedule.  Messages sent across a
cut are *held*, not dropped, matching the lossless-channel system model: a
partition that heals delivers everything, a partition that never heals
models a full DC failure.

Beyond the paper's clean cuts, the injector drives the hostile-network
chaos matrix (``repro.runtime.chaos``):

* **asymmetric cuts** hold one direction of a DC pair only (a routing
  fault: A hears B but B no longer hears A);
* **slow links** stretch one directed link's base latency by a factor
  (pushed into :class:`~repro.sim.latency.GeoLatencyModel`; FIFO survives
  via the network's delivery clamp);
* **lossy links** *violate* the lossless model on purpose — probabilistic
  drops, counted in :class:`~repro.sim.network.NetworkStats`, which is
  what the anti-entropy backfill exists to survive;
* **clock-skew spikes** step a DC's physical clocks (NTP step), which
  also skews the hybrid logical clocks layered on them.

Loss decisions draw from a dedicated RNG stream
(:data:`repro.harness.seeds.FAULTS`); none of the knobs perturbs any
other stream, and untouched knobs cost zero extra draws or events — the
per-seed byte-identical guarantee.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.clocks.physical import PhysicalClock
from repro.common.errors import SimulationError
from repro.common.types import Address
from repro.sim.engine import Simulator
from repro.sim.latency import GeoLatencyModel
from repro.sim.network import Network


class FaultInjector:
    """Creates and heals network, latency, loss and clock faults."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        latency: GeoLatencyModel | None = None,
        clocks: dict[Address, PhysicalClock] | None = None,
        rng: random.Random | None = None,
    ):
        self._sim = sim
        self._network = network
        self._latency = latency
        self._clocks = clocks or {}
        self._rng = rng
        self._active_cuts: set[tuple[int, int]] = set()
        self._slow_links: set[tuple[int, int]] = set()
        self._lossy_links: set[tuple[int, int]] = set()
        self.partitions_started = 0
        self.partitions_healed = 0
        self.one_way_cuts_started = 0
        self.one_way_cuts_healed = 0
        self.slow_links_set = 0
        self.lossy_links_set = 0
        self.clock_steps = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True while at least one DC pair is cut."""
        return bool(self._active_cuts)

    @property
    def any_fault_active(self) -> bool:
        """True while any cut, slow link or lossy link is in force
        (clock steps are instantaneous, so they never count)."""
        return bool(self._active_cuts or self._slow_links
                    or self._lossy_links)

    def is_cut(self, dc_a: int, dc_b: int) -> bool:
        return (dc_a, dc_b) in self._active_cuts

    # ------------------------------------------------------------------
    # Symmetric partitions (held messages, the paper's model)
    # ------------------------------------------------------------------
    def partition_dcs(
        self, group_a: Iterable[int], group_b: Iterable[int]
    ) -> None:
        """Cut all traffic between every DC in ``group_a`` and ``group_b``."""
        group_a = list(group_a)
        group_b = list(group_b)
        if set(group_a) & set(group_b):
            raise SimulationError("partition groups must be disjoint")
        self.partitions_started += 1
        for a in group_a:
            for b in group_b:
                self._cut(a, b)
                self._cut(b, a)

    def isolate_dc(self, dc: int, all_dcs: Iterable[int]) -> None:
        """Cut ``dc`` off from every other DC (models a DC failure)."""
        others = [d for d in all_dcs if d != dc]
        self.partition_dcs([dc], others)

    def heal_all(self) -> None:
        """Heal every active cut; held messages flush in send order."""
        if self._active_cuts:
            self.partitions_healed += 1
        for a, b in list(self._active_cuts):
            self._heal(a, b)

    def schedule_partition(
        self,
        at: float,
        group_a: Iterable[int],
        group_b: Iterable[int],
        heal_after: float | None = None,
    ) -> None:
        """Schedule a partition at time ``at``; optionally heal it
        ``heal_after`` seconds later (never, if None)."""
        group_a = list(group_a)
        group_b = list(group_b)
        self._sim.schedule_at(at, self.partition_dcs, group_a, group_b)
        if heal_after is not None:
            self._sim.schedule_at(at + heal_after, self.heal_all)

    # ------------------------------------------------------------------
    # Asymmetric cuts (one direction held, the other flowing)
    # ------------------------------------------------------------------
    def cut_one_way(self, src_dc: int, dst_dc: int) -> None:
        """Hold traffic ``src_dc`` -> ``dst_dc`` only; the reverse
        direction keeps flowing (a routing fault, not a partition)."""
        if src_dc == dst_dc:
            raise SimulationError("cannot cut a DC off from itself")
        self.one_way_cuts_started += 1
        self._cut(src_dc, dst_dc)

    def heal_one_way(self, src_dc: int, dst_dc: int) -> None:
        """Heal one directed cut; its held messages flush in send order."""
        if (src_dc, dst_dc) in self._active_cuts:
            self.one_way_cuts_healed += 1
            self._heal(src_dc, dst_dc)

    def schedule_one_way_cut(
        self, at: float, src_dc: int, dst_dc: int,
        heal_after: float | None = None,
    ) -> None:
        self._sim.schedule_at(at, self.cut_one_way, src_dc, dst_dc)
        if heal_after is not None:
            self._sim.schedule_at(at + heal_after, self.heal_one_way,
                                  src_dc, dst_dc)

    # ------------------------------------------------------------------
    # Slow links (latency multipliers)
    # ------------------------------------------------------------------
    def slow_link(self, src_dc: int, dst_dc: int, factor: float) -> None:
        """Stretch the directed link ``src_dc`` -> ``dst_dc`` by
        ``factor`` (10.0 = a congested WAN path at 10x base latency)."""
        self._require_geo_latency().set_link_multiplier(src_dc, dst_dc,
                                                        factor)
        self.slow_links_set += 1
        self._slow_links.add((src_dc, dst_dc))

    def restore_link(self, src_dc: int, dst_dc: int) -> None:
        self._require_geo_latency().clear_link_multiplier(src_dc, dst_dc)
        self._slow_links.discard((src_dc, dst_dc))

    def restore_all_links(self) -> None:
        if self._latency is not None:
            self._latency.clear_link_multipliers()
        self._slow_links.clear()

    def schedule_slow_link(
        self, at: float, src_dc: int, dst_dc: int, factor: float,
        restore_after: float | None = None,
    ) -> None:
        self._sim.schedule_at(at, self.slow_link, src_dc, dst_dc, factor)
        if restore_after is not None:
            self._sim.schedule_at(at + restore_after, self.restore_link,
                                  src_dc, dst_dc)

    # ------------------------------------------------------------------
    # Lossy links (probabilistic drops — the anti-lossless fault)
    # ------------------------------------------------------------------
    def lose_messages(
        self,
        src_dc: int,
        dst_dc: int,
        probability: float,
        kinds: Iterable[str] | None = None,
    ) -> None:
        """Drop messages on ``src_dc`` -> ``dst_dc`` with ``probability``.

        ``kinds`` names the message types to drop (e.g. ``("Replicate",
        "ReplicateBatch")`` to lose replication traffic only); None drops
        indiscriminately.  Dropped messages are gone — unlike a cut, a
        healed lossy link delivers nothing retroactively.  That is the
        failure mode anti-entropy backfill repairs.
        """
        if self._rng is None:
            raise SimulationError(
                "lossy links need the injector's fault RNG stream "
                "(construct FaultInjector with rng=...)"
            )
        self._network.set_loss(src_dc, dst_dc, probability, self._rng,
                               kinds)
        self.lossy_links_set += 1
        self._lossy_links.add((src_dc, dst_dc))

    def stop_losing(self, src_dc: int, dst_dc: int) -> None:
        self._network.clear_loss(src_dc, dst_dc)
        self._lossy_links.discard((src_dc, dst_dc))

    def stop_all_loss(self) -> None:
        self._network.clear_all_loss()
        self._lossy_links.clear()

    def schedule_loss(
        self, at: float, src_dc: int, dst_dc: int, probability: float,
        kinds: Iterable[str] | None = None,
        stop_after: float | None = None,
    ) -> None:
        kinds = None if kinds is None else tuple(kinds)
        self._sim.schedule_at(at, self.lose_messages, src_dc, dst_dc,
                              probability, kinds)
        if stop_after is not None:
            self._sim.schedule_at(at + stop_after, self.stop_losing,
                                  src_dc, dst_dc)

    # ------------------------------------------------------------------
    # Clock-skew spikes (NTP steps)
    # ------------------------------------------------------------------
    def step_dc_clocks(self, dc: int, delta_us: int) -> None:
        """Step every clock of DC ``dc`` by ``delta_us`` micros.

        A positive step jumps the DC's notion of time forward; a negative
        one pulls it back (reads stay monotonic, scheduled clock waits
        re-arm via the step epoch).  Hybrid logical clocks layered on
        these physical clocks inherit the step.
        """
        stepped = False
        for address, clock in self._clocks.items():
            if address.dc == dc:
                clock.step(delta_us)
                stepped = True
        if not stepped:
            raise SimulationError(f"no clocks registered for DC {dc}")
        self.clock_steps += 1

    def schedule_clock_step(self, at: float, dc: int, delta_us: int) -> None:
        self._sim.schedule_at(at, self.step_dc_clocks, dc, delta_us)

    # ------------------------------------------------------------------
    # Global cleanup
    # ------------------------------------------------------------------
    def clear_all_faults(self) -> None:
        """Heal every cut, restore every link, stop all loss.  (Clock
        steps are permanent by nature — a step is a new reality, not an
        ongoing fault.)"""
        self.heal_all()
        self.restore_all_links()
        self.stop_all_loss()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_geo_latency(self) -> GeoLatencyModel:
        if self._latency is None:
            raise SimulationError(
                "slow links need the cluster's GeoLatencyModel "
                "(construct FaultInjector with latency=...)"
            )
        return self._latency

    def _cut(self, src_dc: int, dst_dc: int) -> None:
        self._active_cuts.add((src_dc, dst_dc))
        self._network.block_dc_pair(src_dc, dst_dc)

    def _heal(self, src_dc: int, dst_dc: int) -> None:
        self._active_cuts.discard((src_dc, dst_dc))
        self._network.unblock_dc_pair(src_dc, dst_dc)
