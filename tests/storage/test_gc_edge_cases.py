"""Storage edge cases: whole-chain GC, no-visible-version fallbacks, and
garbage collection racing a pending transactional slice."""

import helpers
from repro.clocks.vector import vec_min
from repro.protocols import messages as m
from repro.storage.chain import VersionChain
from repro.storage.gc import collect_chain, collect_chain_by
from repro.storage.version import Version


def _version(key, ut, dv, sr=0):
    return Version(key=key, value=ut, sr=sr, ut=ut, dv=dv)


def _chain(*versions):
    chain = VersionChain()
    for version in versions:
        chain.insert(version)
    return chain


# ----------------------------------------------------------------------
# GC of the entire chain
# ----------------------------------------------------------------------

def test_gc_with_everything_covered_never_empties_the_chain():
    chain = _chain(
        _version("k", 40, (0, 0, 0)),
        _version("k", 30, (0, 0, 0)),
        _version("k", 20, (0, 0, 0)),
        _version("k", 10, (0, 0, 0)),
    )
    removed = collect_chain(chain, gv=[1000, 1000, 1000])
    assert removed == 3
    assert len(chain) == 1  # the head survives, always
    assert chain.head().ut == 40


def test_gc_single_version_chain_is_a_noop():
    chain = _chain(_version("k", 10, (0, 0, 0)))
    assert collect_chain(chain, gv=[1000, 1000, 1000]) == 0
    assert chain.head().ut == 10


def test_gc_by_predicate_covering_nothing_keeps_all():
    chain = _chain(
        _version("k", 40, (0, 0, 0)),
        _version("k", 30, (0, 0, 0)),
    )
    assert collect_chain_by(chain, lambda v: False) == 0
    assert len(chain) == 2


def test_repeated_gc_rounds_are_idempotent():
    chain = _chain(
        _version("k", 40, (0, 0, 0)),
        _version("k", 30, (0, 0, 0)),
        _version("k", 20, (0, 0, 0)),
    )
    assert collect_chain(chain, gv=[50, 50, 50]) == 2
    assert collect_chain(chain, gv=[50, 50, 50]) == 0
    assert [v.ut for v in chain] == [40]


# ----------------------------------------------------------------------
# find_freshest with no visible version
# ----------------------------------------------------------------------

def test_find_freshest_nothing_visible_reports_full_scan():
    chain = _chain(
        _version("k", 40, (0, 0, 0)),
        _version("k", 30, (0, 0, 0)),
    )
    version, scanned = chain.find_freshest(lambda v: False)
    assert version is None
    assert scanned == 2  # the pessimistic read paid for the whole walk


def test_find_freshest_on_empty_chain():
    chain = VersionChain()
    version, scanned = chain.find_freshest(lambda v: True)
    assert version is None
    assert scanned == 0


def test_pocc_slice_falls_back_to_oldest_when_nothing_visible():
    """The fallback path in ``PoccServer._serve_slice``: a snapshot vector
    below every version's dependency cut returns the oldest version rather
    than blocking or crashing (only reachable when preloading is bypassed,
    e.g. after an aggressive GC)."""
    built = helpers.make_cluster(protocol="pocc")
    server = built.servers[built.topology.server(0, 0)]
    key = helpers.key_on_partition(built, 0)
    # Rebuild the chain so even its oldest version has a non-zero cut.
    chain = server.store.chain(key)
    chain.truncate_to([
        _version(key, 90_000, (80_000, 0, 0)),
        _version(key, 50_000, (40_000, 0, 0)),
    ])
    replies = {}
    server._serve_slice(m.SliceReq(keys=(key,), tv=[0, 0, 0],
                                   coordinator=server.address, tx_id=1))
    # The slice response is handled locally: the coordinator state is not
    # registered, so serving must simply not crash and pick the oldest.
    built.sim.run(until=built.sim.now + 0.1)
    version, scanned = chain.find_freshest(lambda v: False)
    assert version is None and scanned == 2  # fallback condition held


# ----------------------------------------------------------------------
# GC racing a pending slice
# ----------------------------------------------------------------------

def test_gc_report_capped_by_active_transaction_snapshot():
    """While a RO-TX is in flight its snapshot vector caps the
    coordinator's GC report, so versions the transaction may still read
    cannot be collected mid-flight."""
    built = helpers.make_cluster(protocol="pocc")
    helpers.settle(built, 0.3)
    client = helpers.client_at(built, dc=0)
    coordinator = built.servers[built.topology.server(0, 0)]
    keys = [helpers.key_on_partition(built, 0),
            helpers.key_on_partition(built, 1)]
    # Freeze a snapshot far in the transaction's past: deps ahead of the
    # VV park the slice, keeping the transaction active across GC rounds.
    client.rdv[1] = coordinator.vv[1] + 500_000
    result = helpers.OpResult()
    client.ro_tx(keys, result)
    built.sim.run(until=built.sim.now + 0.05)
    assert coordinator._active_tx, "transaction should be in flight"
    tv = next(iter(coordinator._active_tx.values()))["tv"]
    report = coordinator._gc_report_vector()
    assert report == vec_min(list(coordinator.vv), tv)
    # A full GC round while the slice is parked must not disturb it.
    gv = coordinator._gc_report_vector()
    coordinator._apply_gc(gv)
    assert coordinator._active_tx
    # Heartbeats eventually cover the inflated dependency; the transaction
    # completes and reads a consistent snapshot despite the GC round.
    built.sim.run(until=built.sim.now + 2.0)
    assert result.done
    assert len(result.reply.versions) == 2


def test_gc_racing_pending_slice_retains_snapshot_versions():
    """Versions inside a parked slice's snapshot survive a GC round that
    would otherwise collect them (the Section IV-B retention rule applied
    with the transaction-capped GV)."""
    built = helpers.make_cluster(protocol="pocc")
    client = helpers.client_at(built, dc=0)
    writer = helpers.client_at(built, dc=0, partition=1)
    coordinator = built.servers[built.topology.server(0, 0)]
    slice_server = built.servers[built.topology.server(0, 1)]
    key = helpers.key_on_partition(built, 1)
    for i in range(4):
        helpers.put(built, writer, key, i)
    helpers.settle(built, 0.15)  # heartbeats, but before the first GC round
    chain = slice_server.store.chain(key)
    versions_before = len(chain)
    assert versions_before >= 4

    client.rdv[1] = coordinator.vv[1] + 500_000  # park the transaction
    result = helpers.OpResult()
    client.ro_tx([key], result)
    built.sim.run(until=built.sim.now + 0.05)
    assert coordinator._active_tx

    # Run the DC's real GC aggregation while the slice is parked.
    for server in built.servers.values():
        if server.address.dc == 0:
            server._gc_tick()
    built.sim.run(until=built.sim.now + 0.1)
    # The snapshot's freshest in-cut version must survive; the chain may
    # shrink but never below the retention rule's floor.
    tv = next(iter(coordinator._active_tx.values()))["tv"] \
        if coordinator._active_tx else list(coordinator.vv)
    survivors = [v for v in slice_server.store.chain(key)]
    assert survivors, "chain must never be emptied by GC"
    from repro.clocks.vector import vec_leq
    assert any(vec_leq(v.dv, tv) for v in survivors), (
        "GC dropped every version inside the pending snapshot"
    )
    built.sim.run(until=built.sim.now + 2.0)
    assert result.done
    assert result.reply.versions[0].value == 3  # the freshest write
