"""Shared primitives: typed identifiers, errors and configuration objects.

Everything in this package is dependency-free (only the standard library)
so that every other subsystem can import it without cycles.
"""

from repro.common.errors import (
    ConfigError,
    ProtocolError,
    ReproError,
    SessionClosedError,
    SimulationError,
)
from repro.common.types import (
    Address,
    Micros,
    NodeKind,
    OpType,
    PartitionId,
    ReplicaId,
    version_order_key,
)

__all__ = [
    "Address",
    "ConfigError",
    "Micros",
    "NodeKind",
    "OpType",
    "PartitionId",
    "ProtocolError",
    "ReplicaId",
    "ReproError",
    "SessionClosedError",
    "SimulationError",
    "version_order_key",
]
