"""A log-bucketed histogram for latency-like values.

HdrHistogram-flavoured: geometric buckets give a bounded relative error per
bucket (default ~7%) over many orders of magnitude, with O(1) recording —
exactly what is needed to track response times that span microsecond blocking
stalls to second-long overload queueing.
"""

from __future__ import annotations

import math
from typing import Iterable


class LogHistogram:
    """Geometric-bucket histogram over positive floats."""

    __slots__ = ("_min_value", "_log_growth", "_counts", "count",
                 "total", "min_seen", "max_seen")

    def __init__(self, min_value: float = 1e-7, growth: float = 1.07):
        if min_value <= 0 or growth <= 1.0:
            raise ValueError("need min_value > 0 and growth > 1")
        self._min_value = min_value
        self._log_growth = math.log(growth)
        self._counts: list[int] = []
        self.count = 0
        self.total = 0.0
        self.min_seen = math.inf
        self.max_seen = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Record one observation (values below min_value clamp to it)."""
        if value < 0:
            raise ValueError("histogram values must be >= 0")
        self.count += 1
        self.total += value
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value
        index = self._bucket_index(value)
        counts = self._counts
        if index >= len(counts):
            counts.extend([0] * (index + 1 - len(counts)))
        counts[index] += 1

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def _bucket_index(self, value: float) -> int:
        if value <= self._min_value:
            return 0
        return int(math.log(value / self._min_value) / self._log_growth) + 1

    def _bucket_upper_bound(self, index: int) -> float:
        if index == 0:
            return self._min_value
        return self._min_value * math.exp(index * self._log_growth)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (p in [0, 100])."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * p / 100.0)
        if target <= 0:
            return self.min_seen
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= target:
                return min(self._bucket_upper_bound(index), self.max_seen)
        return self.max_seen

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram (same parameters) into this one."""
        if (
            other._min_value != self._min_value
            or other._log_growth != self._log_growth
        ):
            raise ValueError("cannot merge histograms with different buckets")
        if len(other._counts) > len(self._counts):
            self._counts.extend([0] * (len(other._counts) - len(self._counts)))
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.min_seen = min(self.min_seen, other.min_seen)
        self.max_seen = max(self.max_seen, other.max_seen)

    def summary(self) -> dict[str, float]:
        """Mean and common percentiles as a plain dict."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max_seen,
        }

    def __repr__(self) -> str:
        return (
            f"LogHistogram(count={self.count}, mean={self.mean:.6g}, "
            f"max={self.max_seen:.6g})"
        )
