"""The intra-DC stabilization protocol computing the Global Stable Snapshot.

Every ``stabilization_interval_s`` each node pushes its version vector to a
per-DC aggregator (partition 0 — Cure uses a tree; with one level this is
the same O(N) message pattern).  When the aggregator holds a report from
every partition it broadcasts the entry-wise minimum.  ``GSS[i] = t`` means
every node of the DC has received all updates originated at DC *i* up to
timestamp ``t`` (Section IV-C).

The messages traverse the nodes' CPU queues like any other work, so the GSS
*lags more under load* — the mechanism behind the growing staleness the
paper measures in Figure 2b.
"""

from __future__ import annotations

from repro.clocks.vector import vec_aggregate_min
from repro.common.types import Micros
from repro.protocols import messages as m


class StabilizationMixin:
    """Adds GSS state + stabilization rounds to a ``CausalServer``.

    The mixin expects the host class to provide ``sim``, ``vv``, ``m``,
    ``n``, ``topology``, ``metrics``, ``clock``, ``send``,
    ``broadcast_dc`` and a ``gss_waiters`` wait queue to notify on GSS
    advance.
    """

    def init_stabilization(self, interval_s: float) -> None:
        self.gss: list[Micros] = [0] * self.topology.num_dcs
        self._stab_interval_s = interval_s
        self._stab_reports: dict[int, list[Micros]] = {}
        # Stagger the first round per partition to avoid a synchronized
        # message burst at t=interval.
        first = interval_s * (1.0 + 0.01 * self.n)
        self.rt.schedule(first, self._stabilization_tick)

    # ------------------------------------------------------------------
    # Periodic push
    # ------------------------------------------------------------------
    def _stabilization_tick(self) -> None:
        aggregator = self.topology.server(self.m, 0)
        report = m.StabPush(vv=list(self.vv), partition=self.n)
        if aggregator == self.address:
            self.receive_stab_push(report)
        else:
            self.send(aggregator, report)
        self.rt.schedule(self._stab_interval_s, self._stabilization_tick)

    # ------------------------------------------------------------------
    # Aggregator role (partition 0 of each DC)
    # ------------------------------------------------------------------
    def receive_stab_push(self, msg: m.StabPush) -> None:
        self._stab_reports[msg.partition] = msg.vv
        if not self._aggregation_complete(self._stab_reports):
            return
        gss = vec_aggregate_min(self._stab_reports.values())
        self._stab_reports.clear()
        self.broadcast_dc(m.StabBroadcast(gss=gss),
                          self.receive_stab_broadcast)

    # ------------------------------------------------------------------
    # All nodes
    # ------------------------------------------------------------------
    def receive_stab_broadcast(self, msg: m.StabBroadcast) -> None:
        advanced = False
        gss = self.gss
        for i, value in enumerate(msg.gss):
            if value > gss[i]:
                gss[i] = value
                advanced = True
        if advanced:
            self._record_gss_lag()
            self.gss_advanced()

    def _record_gss_lag(self) -> None:
        """Sample how far the GSS trails the local clock on remote entries
        (an upper bound on the staleness horizon of stable reads)."""
        now_us = self.clock.peek_micros()
        lag_us = max(
            now_us - ts for i, ts in enumerate(self.gss) if i != self.m
        )
        self.metrics.record_gss_lag(lag_us / 1_000_000.0)

    def gss_advanced(self) -> None:
        """Hook: wake operations blocked on the GSS."""
        raise NotImplementedError
