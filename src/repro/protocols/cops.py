"""COPS* — the explicit dependency-check baseline (paper reference [8]).

COPS (Lloyd, Freedman, Kaminsky, Andersen; SOSP 2011) is the canonical
member of the *dependency checking* family the OCC paper's introduction
contrasts itself against: clients attach an explicit list of **nearest
dependencies** — version ids ``(key, ut, sr)`` — to every write; when a
replicated write arrives at a remote DC, the receiving server issues one
``DepCheck`` query per dependency to the local partition responsible for
that key and makes the write **visible only after every check passes**.
Reads return the freshest *visible* version and never block.

This module exists so the benches can quantify the two costs Section I
attributes to this design and that OCC eliminates:

* **communication overhead** — dep-check / ack message pairs per
  replicated write (``bench_ablation_depcheck``), absent in POCC;
* **delayed visibility** — a write is hidden until its checks complete,
  so remote reads observe staler data than optimistic receipt-visibility
  (the visibility-lag histogram).

Nearest dependencies follow COPS exactly: a PUT's dependency list is the
client's reads since its last write plus that last write; the completed
PUT then *becomes* the context (transitivity makes checking nearest
sufficient for visibility: a version is made visible only after its
nearest dependencies are visible, which recursively covers the rest).

Scope note: real COPS supports only GET and PUT; causally consistent
read-only transactions require COPS-GT, which must store the *full*
dependency set with every version (one of its criticized overheads).  We
reproduce plain COPS, so ``RO-TX`` raises :class:`ProtocolError` — use
POCC/Cure*/GentleRain* for transactional workloads.

Convergence uses the same last-writer-wins order as the other protocols.
Versions created here are :class:`CopsVersion`: they carry the dependency
list (counted on the wire by ``messages.version_bytes``) and a local
``visible`` flag.  Replicated versions are **copied** on receipt — the
flag is per-DC state and the simulator passes objects by reference.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.clocks.vector import vec_zero
from repro.common.errors import ProtocolError
from repro.common.types import Micros, OpType, ReplicaId, version_order_key
from repro.metrics.collectors import BLOCK_DEP_CHECK, BLOCK_PUT_CLOCK
from repro.protocols import messages as m
from repro.protocols.base import CausalClient, CausalServer, WaitQueue
from repro.storage.version import Version

#: GC retention slack behind ``min(VV)``: versions younger than this are
#: never collected, keeping in-flight dependency targets available.
GC_GRACE_US = 2_000_000


class CopsVersion(Version):
    """A version with an explicit dependency list and a visibility flag."""

    __slots__ = ("deps", "visible")

    def __init__(
        self,
        key: Any,
        value: Any,
        sr: ReplicaId,
        ut: Micros,
        deps: Sequence[m.Dependency],
        num_dcs: int,
        visible: bool,
    ):
        # The vector slot is unused by this protocol; zeros keep the
        # shared storage machinery indifferent.
        super().__init__(key=key, value=value, sr=sr, ut=ut,
                         dv=vec_zero(num_dcs))
        self.deps = tuple(deps)
        self.visible = visible

    def local_copy(self, visible: bool) -> "CopsVersion":
        """A per-DC copy (the ``visible`` flag must not be shared)."""
        return CopsVersion(key=self.key, value=self.value, sr=self.sr,
                           ut=self.ut, deps=self.deps,
                           num_dcs=len(self.dv), visible=visible)


def _is_visible(version: Version) -> bool:
    """Preloaded versions are plain :class:`Version`: always visible."""
    return getattr(version, "visible", True)


class CopsServer(CausalServer):
    """Server running the explicit dependency-check protocol."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        #: Replicated versions awaiting dep-check acks: check target count.
        self._pending_writes: dict[int, dict] = {}
        self._next_check_id = (self.m << 20) | (self.n << 12)
        #: DepChecks (from peers) parked until the target version applies.
        self.dep_waiters = WaitQueue(self)

    # ------------------------------------------------------------------
    # GET: freshest visible version, never blocks
    # ------------------------------------------------------------------
    def handle_get(self, msg: m.GetReq) -> None:
        chain = self.store.chain(msg.key)
        if chain is None:
            self.send(msg.client, self.nil_reply(msg.key, msg.op_id))
            return
        version, scanned = chain.find_freshest(_is_visible)
        if version is None:
            version = next(reversed(list(chain)))
            scanned = len(chain)
        self.metrics.record_get_staleness(
            chain.versions_newer_than(version),
            chain.count_matching(lambda v: not _is_visible(v)),
        )
        reply = m.GetReply(key=version.key, value=version.value,
                           ut=version.ut, dv=(), sr=version.sr,
                           op_id=msg.op_id)
        scan_cost = self._service.chain_scan_per_version_s * scanned
        self.submit_local(scan_cost, self.send, msg.client, reply)

    def nil_reply(self, key: str, op_id: int) -> m.GetReply:
        return m.GetReply(key=key, value=None, ut=0, dv=(), sr=self.m,
                          op_id=op_id)

    # ------------------------------------------------------------------
    # PUT (put_after): stamp above the dependency list, apply, replicate
    # ------------------------------------------------------------------
    def handle_put_after(self, msg: m.CopsPutReq) -> None:
        # The client's nearest dependencies were read in this DC, so they
        # are locally present; only the timestamp discipline can wait.
        max_dep: Micros = max((dep.ut for dep in msg.deps), default=0)
        self.metrics.record_block_attempt(BLOCK_PUT_CLOCK)
        if self.clock.peek_micros() > max_dep:
            self._apply_put_after(msg)
            return
        blocked_at = self.rt.now

        def resume() -> None:
            self.metrics.record_block_started(BLOCK_PUT_CLOCK, blocked_at,
                                              self.rt.now - blocked_at)
            self.submit_local(self._service.resume_s,
                              self._apply_put_after, msg)

        self.wait_for_clock(max_dep, resume)

    def _apply_put_after(self, msg: m.CopsPutReq) -> None:
        ts = self.clock.micros()
        if ts <= self.vv[self.m]:
            raise ProtocolError(
                f"{self.address}: update timestamp {ts} not beyond "
                f"VV[m]={self.vv[self.m]}"
            )
        self.vv[self.m] = ts
        version = CopsVersion(key=msg.key, value=msg.value, sr=self.m,
                              ut=ts, deps=msg.deps,
                              num_dcs=self.topology.num_dcs, visible=True)
        self.store.insert(version)
        self.rt.persist(version)
        # A locally created (visible) version can satisfy parked checks.
        self.dep_waiters.notify()
        self.replicate(version)
        self.send(msg.client, m.PutReply(ut=version.ut, op_id=msg.op_id))

    # ------------------------------------------------------------------
    # Replication: install hidden, fan out dependency checks
    # ------------------------------------------------------------------
    def apply_replicate(self, msg: m.Replicate) -> None:
        self._install_replicated(msg.version)

    def _install_replicated(self, version: Version) -> None:
        # Also the per-version step of a ReplicateBatch (the base batch
        # apply loops through here, so a batch installs its versions in
        # order and launches each one's dependency checks; visibility
        # stays per-version — it is gated on the checks, not on VV).
        assert isinstance(version, CopsVersion)
        local = version.local_copy(visible=False)
        self.store.insert(local)
        if local.ut > self.vv[local.sr]:
            self.vv[local.sr] = local.ut
        self.rt.persist(local)
        self._launch_dep_checks(local)

    def _launch_dep_checks(self, version: CopsVersion) -> None:
        """Fan out one DepCheck per unsatisfied nearest dependency.

        Shared by replication receipt and crash recovery: a restart
        loses the in-flight check bookkeeping (``_pending_writes``), so
        recovered hidden versions re-run their checks from here.
        """
        checks = [dep for dep in version.deps if not self._satisfied(dep)]
        if not checks:
            self._mark_visible(version)
            return
        check_id = self._new_check_id()
        self._pending_writes[check_id] = {
            "version": version,
            "awaiting": len(checks),
        }
        for dep in checks:
            target = self.topology.server(
                self.m, self.topology.partition_of(dep.key)
            )
            query = m.DepCheck(key=dep.key, ut=dep.ut, sr=dep.sr,
                               requester=self.address, check_id=check_id)
            if target == self.address:
                self.on_message(query)
            else:
                self.send(target, query)

    def _satisfied(self, dep: m.Dependency) -> bool:
        """A dependency holds once *that exact version* is visible on the
        partition owning its key.

        Satisfying a check with any LWW-newer visible version (the laxer
        reading of COPS's "version or newer") breaks causality: a fresh
        local write to the dependency's key — concurrent with, and
        oblivious to, the dependency — would discharge the check and sever
        the transitive chain through the dependency's *own* nearest
        dependencies.  The randomized conformance suite catches exactly
        this: a reader then observes a version whose writer's causal past
        is not yet locally visible.  Exact-version matching restores the
        induction (a visible version implies its whole causal past is
        visible); it is safe against GC because dependency targets are
        what clients recently read and ``GC_GRACE_US`` retains them far
        longer than any check round trip.

        The fast path answers locally for keys this partition owns; other
        keys always go through a DepCheck round trip.
        """
        if self.topology.partition_of(dep.key) != self.n:
            return False
        return self._locally_satisfied(dep)

    def _locally_satisfied(self, dep: m.Dependency) -> bool:
        version = self.store.find_version(dep.key, dep.sr, dep.ut)
        return version is not None and _is_visible(version)

    def _mark_visible(self, version: CopsVersion) -> None:
        version.visible = True
        # Re-log the version with the flipped flag: the WAL's
        # later-record-wins merge then recovers it visible, instead of
        # re-running (already passed) dependency checks after a restart.
        self.rt.persist(version)
        self.metrics.record_visibility_lag(self.rt.now - version.ut / 1e6)
        self._trace_visible(version)
        # Newly visible versions can satisfy checks parked here and can
        # unblock nothing else: COPS reads never wait.
        self.dep_waiters.notify()

    # ------------------------------------------------------------------
    # Dependency checks
    # ------------------------------------------------------------------
    def handle_dep_check(self, msg: m.DepCheck) -> None:
        dep = msg.dependency()
        self.metrics.record_block_attempt(BLOCK_DEP_CHECK)
        if self._locally_satisfied(dep):
            self._ack_dep_check(msg)
        else:
            self.dep_waiters.wait(
                lambda: self._locally_satisfied(dep),
                lambda: self._ack_dep_check(msg),
                cause=BLOCK_DEP_CHECK,
                payload=msg,
            )

    def _ack_dep_check(self, msg: m.DepCheck) -> None:
        response = m.DepCheckResp(check_id=msg.check_id)
        if msg.requester == self.address:
            self.on_message(response)
        else:
            self.send(msg.requester, response)

    def handle_dep_check_resp(self, msg: m.DepCheckResp) -> None:
        state = self._pending_writes.get(msg.check_id)
        if state is None:
            return
        state["awaiting"] -= 1
        if state["awaiting"] == 0:
            del self._pending_writes[msg.check_id]
            self._mark_visible(state["version"])

    def _new_check_id(self) -> int:
        self._next_check_id += 1
        return self._next_check_id

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _merge_recovered(self, existing: Version, recovered: Version) -> None:
        # Later WAL records win: a version logged hidden and re-logged
        # visible (checks passed pre-crash) must not regress to hidden.
        if getattr(recovered, "visible", False) \
                and not getattr(existing, "visible", True):
            existing.visible = True

    def restore_durable_state(self, recovered) -> int:
        applied = super().restore_durable_state(recovered)
        # The in-flight check bookkeeping died with the process: restart
        # dependency checking for every version recovered hidden, or it
        # would stay invisible forever.
        for version in self.store.all_versions():
            if isinstance(version, CopsVersion) and not version.visible:
                self._launch_dep_checks(version)
        return applied

    # ------------------------------------------------------------------
    # Remote versions satisfying parked checks
    # ------------------------------------------------------------------
    def version_received(self, version: Version) -> None:
        # Visibility is recorded in _mark_visible, not at receipt; nothing
        # to do here (apply_replicate is fully overridden anyway).
        raise AssertionError("unreachable: COPS overrides apply_replicate")

    # ------------------------------------------------------------------
    # Transactions: COPS (without -GT) has none
    # ------------------------------------------------------------------
    def handle_ro_tx(self, msg: m.RoTxReq) -> None:
        raise ProtocolError(
            "COPS* supports only GET/PUT; causal read-only transactions "
            "require COPS-GT's full dependency metadata (see module doc)"
        )

    def handle_slice(self, msg: m.SliceReq) -> None:
        raise ProtocolError("COPS* does not serve transactional slices")

    # ------------------------------------------------------------------
    # Dispatch / costs
    # ------------------------------------------------------------------
    def dispatch(self, msg: Any) -> None:
        if isinstance(msg, m.CopsPutReq):
            # COPS handles its put before the base dispatch runs, so the
            # membership gate (seal / NotOwner redirect) applies here.
            mem = self._membership
            if mem is not None and mem.intercept(msg):
                return
            self.handle_put_after(msg)
        elif isinstance(msg, m.DepCheck):
            self.handle_dep_check(msg)
        elif isinstance(msg, m.DepCheckResp):
            self.handle_dep_check_resp(msg)
        else:
            super().dispatch(msg)

    def service_time(self, msg: Any) -> float:
        if isinstance(msg, m.CopsPutReq):
            return self._service.put_s
        if isinstance(msg, (m.DepCheck, m.DepCheckResp)):
            return self._service.dep_check_s
        return super().service_time(msg)

    def message_priority(self, msg: Any) -> int:
        from repro.protocols.core import BACKGROUND
        if isinstance(msg, (m.DepCheck, m.DepCheckResp)):
            return BACKGROUND  # dependency checking is apply-path work
        return super().message_priority(msg)

    # ------------------------------------------------------------------
    # Garbage collection: deep scalar horizon, visible retention cut
    # ------------------------------------------------------------------
    def _gc_report_vector(self) -> list[Micros]:
        return [max(min(self.vv) - GC_GRACE_US, 0)]

    def _apply_gc(self, gv: list[Micros]) -> None:
        horizon: Micros = gv[0]
        self.store.collect_by(
            lambda v: _is_visible(v) and v.ut <= horizon, [horizon]
        )


class CopsClient(CausalClient):
    """Client tracking nearest dependencies (the COPS context)."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        #: Nearest dependencies: key -> (ut, sr) of the newest version of
        #: that key read since the last write, plus the last write itself.
        self.nearest: dict[str, tuple[Micros, ReplicaId]] = {}
        self._put_keys: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def read_dependency_vector(self) -> list[Micros]:
        return []  # COPS reads carry no metadata at all

    def get(self, key: str, callback: Callable[[m.GetReply], None]) -> None:
        op_id = self._register(OpType.GET, callback)
        self.send(self._server_for(key),
                  m.GetReq(key=key, rdv=[], client=self.address,
                           op_id=op_id))

    def put(self, key: str, value: Any,
            callback: Callable[[m.PutReply], None]) -> None:
        op_id = self._register(OpType.PUT, callback)
        self._put_keys[op_id] = key
        deps = tuple(
            m.Dependency(key=dep_key, ut=ut, sr=sr)
            for dep_key, (ut, sr) in self.nearest.items()
        )
        req = m.CopsPutReq(key=key, value=value, deps=deps,
                           client=self.address, op_id=op_id)
        if self._inflight is not None:
            self._inflight[op_id] = req
        self.send(self._server_for(key), req)

    def ro_tx(self, keys, callback) -> None:
        raise ProtocolError(
            "COPS* does not support RO-TX (see repro.protocols.cops)"
        )

    # ------------------------------------------------------------------
    # Context maintenance
    # ------------------------------------------------------------------
    def absorb_read(self, reply: m.GetReply) -> None:
        if reply.ut == 0:
            return  # nil read: nothing to depend on
        order = version_order_key(reply.ut, reply.sr)
        current = self.nearest.get(reply.key)
        if current is None or version_order_key(*current) < order:
            self.nearest[reply.key] = (reply.ut, reply.sr)

    def _complete_put(self, reply: m.PutReply) -> None:
        op_type, started, callback = self._pending.pop(reply.op_id)
        key = self._put_keys.pop(reply.op_id)
        # The write subsumes the whole previous context (transitivity):
        # it becomes the only nearest dependency.
        self.nearest = {key: (reply.ut, self.m)}
        self._finish(op_type, started)
        callback(reply)

    def reset_session(self) -> None:
        super().reset_session()
        self.nearest = {}
        self._put_keys = {}
